package transport

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qens/internal/federation"
	"qens/internal/ml"
	"qens/internal/rng"
)

// startBoundedServer is startServer with an explicit train-concurrency
// bound on the node's engine.
func startBoundedServer(t *testing.T, seed uint64, conc int) (*Server, *Client) {
	t.Helper()
	node, err := federation.NewNode("node-B", lineDataset(400, 2, 1, 0, 20, seed), 5, rng.New(seed),
		federation.WithTrainConcurrency(conc))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(silent)
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(srv.Addr(), DialOptions{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

// TestServerHonorsEnvelopeDeadline verifies the daemon reconstructs
// the client's deadline from the wire envelope: a request arriving
// with an already-expired DeadlineUnixMS must be refused server-side
// without running the job, and the connection must survive.
func TestServerHonorsEnvelopeDeadline(t *testing.T) {
	_, client := startServer(t, 41, 2, 0, 20)
	resp, err := client.roundTrip(context.Background(), request{
		Type:           typeTrain,
		DeadlineUnixMS: time.Now().Add(-time.Second).UnixMilli(),
		Train:          &federation.TrainRequest{Spec: ml.PaperLR(1), LocalEpochs: 3},
	})
	if err == nil {
		t.Fatalf("expired envelope deadline accepted: %+v", resp)
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("error does not surface the deadline: %v", err)
	}
	// The protocol error is per-request: the connection stays usable.
	if _, err := client.Ping(); err != nil {
		t.Fatalf("connection unusable after deadline refusal: %v", err)
	}
}

// TestEvalResponseCarriesSummaryEpoch verifies evaluations double as
// drift signals over the wire: the typed Evaluate client lifts the
// envelope's SummaryEpoch into the EvalResponse, and a requantization
// on the daemon is visible on the very next evaluation.
func TestEvalResponseCarriesSummaryEpoch(t *testing.T) {
	srv, client := startServer(t, 42, 2, 0, 20)
	req := federation.EvalRequest{Spec: ml.PaperLR(1)}

	resp, err := client.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.SummaryEpoch != 1 {
		t.Fatalf("initial eval epoch %d, want 1", resp.SummaryEpoch)
	}
	if err := srv.Requantize(); err != nil {
		t.Fatal(err)
	}
	resp, err = client.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.SummaryEpoch != 2 {
		t.Fatalf("post-requantize eval epoch %d, want 2", resp.SummaryEpoch)
	}
}

// TestTrainConcurrencyBoundOverWire verifies the daemon honors the
// -train-concurrency bound end-to-end: with the engine capped at one
// slot, concurrent RPCs from independent connections queue, and the
// observed in-flight count never exceeds the bound.
func TestTrainConcurrencyBoundOverWire(t *testing.T) {
	srv, _ := startBoundedServer(t, 43, 1)
	if srv.TrainSlots() != 1 {
		t.Fatalf("train slots %d, want 1", srv.TrainSlots())
	}

	var maxSeen atomic.Int64
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := srv.TrainInflight(); n > maxSeen.Load() {
				maxSeen.Store(n)
			}
		}
	}()

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr(), DialOptions{Timeout: 30 * time.Second})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			_, err = c.Train(context.Background(), federation.TrainRequest{
				Spec: ml.PaperNN(1), LocalEpochs: 3,
			})
			if err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(stop)
	sampler.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := maxSeen.Load(); got > 1 {
		t.Fatalf("daemon ran %d concurrent jobs with train-concurrency=1", got)
	}
	if srv.TrainInflight() != 0 {
		t.Fatalf("in-flight %d after drain", srv.TrainInflight())
	}
}
