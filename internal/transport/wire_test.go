package transport

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"qens/internal/cluster"
	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/rng"
	"qens/internal/telemetry"
)

// fullRequest returns a request exercising every envelope field and
// every nested type the codec must carry.
func fullRequest() request {
	bounds := geometry.MustRect([]float64{-1.5, 0}, []float64{2.25, 7})
	return request{
		Type:           typeTrain,
		TraceID:        "trace-0ddba11",
		SpanID:         "span-5ca1ab1e",
		DeadlineUnixMS: 1754464000123,
		Train: &federation.TrainRequest{
			Spec: ml.Spec{
				Kind: ml.KindNN, InputDim: 3, Hidden: []int{16, 8},
				LearningRate: 0.015, Epochs: 100, BatchSize: 32,
				ValidationSplit: 0.2, Optimizer: "adam", Activation: "tanh",
				L2: 1e-4, LRDecay: 0.99, Patience: 5, Seed: 42,
			},
			Params: ml.Params{
				Kind: ml.KindNN, Dims: []int{3, 16, 8, 1},
				Values: []float64{0.1, -2.5, math.Pi, 1e-300, -0.0, math.MaxFloat64},
			},
			Clusters:    []int{0, 2, 4},
			LocalEpochs: 7,
			TraceID:     "trace-0ddba11",
			SpanID:      "span-5ca1ab1e",
		},
		Eval: &federation.EvalRequest{
			Spec:    ml.Spec{Kind: ml.KindLinear, InputDim: 2, LearningRate: 0.03},
			Params:  ml.Params{Kind: ml.KindLinear, Dims: []int{3}, Values: []float64{1, 2, 3}},
			Bounds:  &bounds,
			TraceID: "trace-0ddba11",
			SpanID:  "span-5ca1ab1e",
		},
	}
}

func fullResponse() response {
	return response{
		TraceID:      "trace-0ddba11",
		NodeID:       "node-A",
		SummaryEpoch: 9,
		Summary: &cluster.NodeSummary{
			NodeID:       "node-A",
			TotalSamples: 1200,
			Epoch:        9,
			Clusters: []cluster.Summary{
				{
					Bounds:   geometry.MustRect([]float64{0, 0}, []float64{1, 1}),
					Centroid: []float64{0.5, 0.5},
					Size:     600,
				},
				{
					Bounds:   geometry.MustRect([]float64{-3, 2}, []float64{-1, 8}),
					Centroid: []float64{-2, 5.5},
					Size:     600,
				},
			},
		},
		Train: &federation.TrainResponse{
			Params:       ml.Params{Kind: ml.KindLinear, Dims: []int{2}, Values: []float64{1.25, -0.5}},
			SamplesUsed:  512,
			TotalSamples: 1200,
			TrainTime:    437 * time.Millisecond,
			SummaryEpoch: 9,
			Spans: []federation.NodeSpan{
				{Name: "node.queue", StartUnixNS: 1754464000123000000, DurationNS: 1500},
				{Name: "node.stage", StartUnixNS: 1754464000123001500, DurationNS: 42000},
				{Name: "node.fit", StartUnixNS: 1754464000123043500, DurationNS: 437000000},
			},
		},
		Eval: &federation.EvalResponse{
			MSE: 0.03125, Samples: 640, SummaryEpoch: 9,
			Spans: []federation.NodeSpan{
				{Name: "node.eval", StartUnixNS: 1754464000999000000, DurationNS: 2750000},
			},
		},
	}
}

// TestWireV2RequestRoundTrip: decode(encode(x)) == x for a request
// touching every field, bit-exactly (including subnormal/-0/MaxFloat
// float payloads that JSON would re-parse through decimal text).
func TestWireV2RequestRoundTrip(t *testing.T) {
	in := fullRequest()
	frame, err := appendWireRequest(nil, 77, &in)
	if err != nil {
		t.Fatal(err)
	}
	var out request
	id, err := decodeWireRequest(frame[4:], &out)
	if err != nil {
		t.Fatal(err)
	}
	if id != 77 {
		t.Fatalf("request id %d, want 77", id)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	// Float payloads must be bit-identical, not merely equal.
	for i, v := range in.Train.Params.Values {
		if math.Float64bits(v) != math.Float64bits(out.Train.Params.Values[i]) {
			t.Fatalf("value %d: bits %x != %x", i, math.Float64bits(v), math.Float64bits(out.Train.Params.Values[i]))
		}
	}
}

func TestWireV2ResponseRoundTrip(t *testing.T) {
	in := fullResponse()
	frame, err := appendWireResponse(nil, 12345, &in)
	if err != nil {
		t.Fatal(err)
	}
	id, out, err := decodeWireResponse(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if id != 12345 {
		t.Fatalf("response id %d, want 12345", id)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

// TestWireV2ErrorRoundTrip covers the error envelope path.
func TestWireV2ErrorRoundTrip(t *testing.T) {
	in := response{Error: `unknown request type "compress"`, Code: CodeUnknownType}
	frame, err := appendWireResponse(nil, 3, &in)
	if err != nil {
		t.Fatal(err)
	}
	_, out, err := decodeWireResponse(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if out.Error != in.Error || out.Code != CodeUnknownType {
		t.Fatalf("error round trip = %+v", out)
	}
}

// TestWireV2NaNBitPatterns: v2 carries NaN and ±Inf bit-exactly —
// payloads the v1 JSON codec cannot represent at all.
func TestWireV2NaNBitPatterns(t *testing.T) {
	payload := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)}
	in := request{Type: typeTrain, Train: &federation.TrainRequest{
		Spec:   ml.Spec{Kind: ml.KindLinear, InputDim: 1},
		Params: ml.Params{Kind: ml.KindLinear, Dims: []int{len(payload)}, Values: payload},
	}}
	frame, err := appendWireRequest(nil, 1, &in)
	if err != nil {
		t.Fatal(err)
	}
	var out request
	if _, err := decodeWireRequest(frame[4:], &out); err != nil {
		t.Fatal(err)
	}
	for i, v := range payload {
		if math.Float64bits(v) != math.Float64bits(out.Train.Params.Values[i]) {
			t.Fatalf("value %d lost its bit pattern", i)
		}
	}
}

// TestWireV2UnknownSectionSkipped: a frame with an unrecognized
// section must decode cleanly (forward compatibility).
func TestWireV2UnknownSectionSkipped(t *testing.T) {
	in := request{Type: typePing}
	frame, err := appendWireRequest(nil, 9, &in)
	if err != nil {
		t.Fatal(err)
	}
	// Append a bogus section (tag 200, 3 payload bytes) and fix the
	// frame length prefix.
	body := append(append([]byte{}, frame[4:]...), 200, 3, 0, 0, 0, 0xAA, 0xBB, 0xCC)
	var out request
	if _, err := decodeWireRequest(body, &out); err != nil {
		t.Fatalf("unknown section not skipped: %v", err)
	}
	if out.Type != typePing {
		t.Fatalf("type = %q", out.Type)
	}
}

// TestWireV2SpanSectionSkippedByLength: the secSpans section is
// self-delimiting, so a peer that predates it (or postdates it with
// yet-newer tags) keeps decoding cleanly. Simulated both ways: an
// unknown future tag appended after the span sections must be skipped,
// and a frame whose span section is surgically removed must still
// yield the full typed bodies — exactly what an old decoder sees.
func TestWireV2SpanSectionSkippedByLength(t *testing.T) {
	in := fullResponse()
	frame, err := appendWireResponse(nil, 4, &in)
	if err != nil {
		t.Fatal(err)
	}
	// Future tag after the span sections.
	body := append(append([]byte{}, frame[4:]...), 213, 2, 0, 0, 0, 0x01, 0x02)
	_, out, err := decodeWireResponse(body)
	if err != nil {
		t.Fatalf("future tag after spans broke decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("payload corrupted around unknown tag:\n in: %+v\nout: %+v", in, out)
	}

	// Span-free encode of the same response must round-trip to the same
	// bodies minus spans — the v1-peer view of the world.
	bare := fullResponse()
	bare.Train.Spans = nil
	bare.Eval.Spans = nil
	bareFrame, err := appendWireResponse(nil, 5, &bare)
	if err != nil {
		t.Fatal(err)
	}
	if len(bareFrame) >= len(frame) {
		t.Fatalf("span sections added no bytes: %d vs %d", len(frame), len(bareFrame))
	}
	_, bareOut, err := decodeWireResponse(bareFrame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if bareOut.Train.Spans != nil || bareOut.Eval.Spans != nil {
		t.Fatalf("spans materialized from nothing: %+v", bareOut)
	}
}

// TestWireV2MalformedRejected: truncations and forged counts at every
// prefix length must error out without panicking or over-allocating.
func TestWireV2MalformedRejected(t *testing.T) {
	in := fullRequest()
	frame, err := appendWireRequest(nil, 5, &in)
	if err != nil {
		t.Fatal(err)
	}
	body := frame[4:]
	// Truncating exactly at a section boundary legitimately yields a
	// shorter frame with trailing optional sections absent — but the
	// mandatory type section must have survived, and there are only a
	// handful of boundaries. Everything else must be rejected.
	boundaries := 0
	for n := 0; n < len(body); n++ {
		var out request
		if _, err := decodeWireRequest(body[:n], &out); err == nil {
			if out.Type != in.Type {
				t.Fatalf("truncation at %d accepted with type %q", n, out.Type)
			}
			boundaries++
		}
	}
	if boundaries > 4 {
		t.Fatalf("%d truncation points accepted; only whole-section boundaries should decode", boundaries)
	}
	// Forged float count far beyond the body must be rejected before
	// any allocation.
	forged := append([]byte{}, body...)
	forged[len(forged)-1] = 0xFF
	var out request
	_, _ = decodeWireRequest(forged, &out) // must not panic
}

// TestWireV2ZeroAllocSteadyState is the pooled-buffer satellite's
// contract: once buffers and destination structs are warm, encoding
// and decoding a model-parameter train frame performs zero heap
// allocations per frame.
func TestWireV2ZeroAllocSteadyState(t *testing.T) {
	req := request{Type: typeTrain, Train: &federation.TrainRequest{
		Spec: ml.Spec{Kind: ml.KindLinear, InputDim: 8, LearningRate: 0.03, Epochs: 100},
		Params: ml.Params{Kind: ml.KindLinear, Dims: []int{9},
			Values: make([]float64, 4096)},
		LocalEpochs: 5,
	}}
	for i := range req.Train.Params.Values {
		req.Train.Params.Values[i] = float64(i) * 1.000001
	}

	var buf []byte
	var dst request
	// Warm the destination's nested allocations.
	b, err := appendWireRequest(buf[:0], 1, &req)
	if err != nil {
		t.Fatal(err)
	}
	buf = b
	if _, err := decodeWireRequest(buf[4:], &dst); err != nil {
		t.Fatal(err)
	}

	if allocs := testing.AllocsPerRun(200, func() {
		b, err := appendWireRequest(buf[:0], 2, &req)
		if err != nil {
			t.Fatal(err)
		}
		buf = b
	}); allocs != 0 {
		t.Fatalf("v2 encode allocates %.1f/op at steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := decodeWireRequest(buf[4:], &dst); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("v2 decode allocates %.1f/op at steady state, want 0", allocs)
	}
	if !reflect.DeepEqual(dst.Train.Params.Values, req.Train.Params.Values) {
		t.Fatal("steady-state decode corrupted the payload")
	}
}

// TestWireCodecFieldDriftGuard fails when a wire-crossing struct
// gains or loses fields without the binary codec being updated.
// Reflection is test-only; the codec itself stays reflection-free.
func TestWireCodecFieldDriftGuard(t *testing.T) {
	want := []struct {
		typ reflect.Type
		n   int
	}{
		{reflect.TypeOf(ml.Spec{}), 13},
		{reflect.TypeOf(ml.Params{}), 3},
		{reflect.TypeOf(geometry.Rect{}), 2},
		{reflect.TypeOf(cluster.Summary{}), 3},
		{reflect.TypeOf(cluster.NodeSummary{}), 4},
		{reflect.TypeOf(federation.TrainRequest{}), 6},
		{reflect.TypeOf(federation.TrainResponse{}), 6},
		{reflect.TypeOf(federation.EvalRequest{}), 5},
		{reflect.TypeOf(federation.EvalResponse{}), 4},
		{reflect.TypeOf(request{}), 11},
		{reflect.TypeOf(response{}), 15},
	}
	for _, w := range want {
		if got := w.typ.NumField(); got != w.n {
			t.Errorf("%s now has %d fields (codec written for %d) — update wire.go and this guard",
				w.typ, got, w.n)
		}
	}
}

// ---- version-skew interop ----

// startServerProto boots a daemon capped at serverMax and dials it
// with a client capped at clientMax.
func startServerProto(t *testing.T, seed uint64, serverMax, clientMax int) (*Server, *Client) {
	t.Helper()
	node, err := federation.NewNode("node-A", lineDataset(300, 2, 1, 0, 50, seed), 5, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(node, "127.0.0.1:0", WithMaxWireProto(serverMax))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(silent)
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(srv.Addr(), DialOptions{Timeout: 30 * time.Second, MaxProto: clientMax})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

// TestWireVersionSkew runs the full RPC surface across every protocol
// pairing: v2↔v2 negotiates the binary codec, while either side
// capped at v1 transparently falls back to JSON — and all pairings
// produce identical results.
func TestWireVersionSkew(t *testing.T) {
	cases := []struct {
		name                 string
		serverMax, clientMax int
		wantProto            int
	}{
		{"v2-client_v2-server", WireProtoV2, WireProtoV2, WireProtoV2},
		{"v2-client_v1-server", WireProtoV1, WireProtoV2, WireProtoV1},
		{"v1-client_v2-server", WireProtoV2, WireProtoV1, WireProtoV1},
		{"v1-client_v1-server", WireProtoV1, WireProtoV1, WireProtoV1},
	}
	var baseline *federation.TrainResponse
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, client := startServerProto(t, 7, tc.serverMax, tc.clientMax)
			if got := client.Proto(); got != tc.wantProto {
				t.Fatalf("negotiated proto %d, want %d", got, tc.wantProto)
			}
			v1Conns, v2Conns := srv.WireConns()
			if tc.wantProto == WireProtoV2 && v2Conns != 1 {
				t.Fatalf("server sees (v1=%d, v2=%d) conns, want one v2", v1Conns, v2Conns)
			}
			if tc.wantProto == WireProtoV1 && v1Conns != 1 {
				t.Fatalf("server sees (v1=%d, v2=%d) conns, want one v1", v1Conns, v2Conns)
			}

			sum, err := client.Summary(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if err := sum.Validate(); err != nil {
				t.Fatal(err)
			}
			if sum.NodeID != "node-A" || sum.K() != 5 || sum.TotalSamples != 300 || sum.Epoch != 1 {
				t.Fatalf("summary %+v", sum)
			}

			// Every pairing must produce the bit-identical training
			// result: node RNG and data are seeded the same, so only a
			// codec bug can make the pairings diverge. The request is
			// traced, so the node must piggyback its phase spans on the
			// response regardless of codec — secSpans on v2, the JSON
			// spans field on v1 — with zero decode errors either way.
			tr, err := client.Train(context.Background(), federation.TrainRequest{
				Spec: ml.PaperLR(1), LocalEpochs: 10, TraceID: "trace-skew",
			})
			if err != nil {
				t.Fatal(err)
			}
			if baseline == nil {
				baseline = &tr
			} else if !reflect.DeepEqual(baseline.Params, tr.Params) {
				t.Fatalf("params diverge from first pairing:\n%v\nvs\n%v", baseline.Params, tr.Params)
			}
			names := map[string]bool{}
			for _, s := range tr.Spans {
				if s.DurationNS < 0 || s.StartUnixNS <= 0 {
					t.Fatalf("span %+v has impossible timing", s)
				}
				names[s.Name] = true
			}
			if !names["node.fit"] {
				t.Fatalf("traced train response lost node spans over proto %d: %+v", tc.wantProto, tr.Spans)
			}

			// An untraced request must stay span-free on every pairing:
			// the node only measures phases when asked to.
			quiet, err := client.Train(context.Background(), federation.TrainRequest{
				Spec: ml.PaperLR(1), LocalEpochs: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(quiet.Spans) != 0 {
				t.Fatalf("untraced response carries %d spans", len(quiet.Spans))
			}

			ev, err := client.Evaluate(context.Background(), federation.EvalRequest{
				Spec: ml.PaperLR(1), Params: tr.Params,
				Bounds:  &geometry.Rect{Min: []float64{0, -100}, Max: []float64{50, 200}},
				TraceID: "trace-skew",
			})
			if err != nil {
				t.Fatal(err)
			}
			if ev.Samples == 0 || ev.SummaryEpoch != 1 {
				t.Fatalf("eval %+v", ev)
			}
			evNames := map[string]bool{}
			for _, s := range ev.Spans {
				evNames[s.Name] = true
			}
			if !evNames["node.eval"] {
				t.Fatalf("traced eval response lost node spans over proto %d: %+v", tc.wantProto, ev.Spans)
			}

			// Structured errors survive both codecs.
			if _, err := client.roundTrip(context.Background(), request{Type: "compress"}); !errors.Is(err, ErrUnknownType) {
				t.Fatalf("unknown type error = %v", err)
			}
		})
	}
}

// TestWireSkewTraceDeadlineEpoch runs the trace/deadline/epoch
// envelope assertions under both negotiated protocols.
func TestWireSkewTraceDeadlineEpoch(t *testing.T) {
	for _, clientMax := range []int{WireProtoV1, WireProtoV2} {
		name := map[int]string{WireProtoV1: "v1", WireProtoV2: "v2"}[clientMax]
		t.Run(name, func(t *testing.T) {
			srv, client := startServerProto(t, 11, WireProtoV2, clientMax)

			// Trace attribution end to end.
			var lc logCapture
			srv.SetLogger(lc.logf)
			resp, err := client.roundTrip(context.Background(), request{
				Type: typeTrain, TraceID: "trace-aa", SpanID: "span-bb",
				Train: &federation.TrainRequest{Spec: ml.PaperLR(1), LocalEpochs: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			if resp.TraceID != "trace-aa" {
				t.Fatalf("response trace %q", resp.TraceID)
			}
			if logs := lc.joined(); !strings.Contains(logs, "trace=trace-aa") || !strings.Contains(logs, "span=span-bb") {
				t.Fatalf("daemon log missing trace attribution:\n%s", logs)
			}

			// Expired envelope deadline refused server-side.
			if _, err := client.roundTrip(context.Background(), request{
				Type:           typeTrain,
				DeadlineUnixMS: time.Now().Add(-time.Second).UnixMilli(),
				Train:          &federation.TrainRequest{Spec: ml.PaperLR(1), LocalEpochs: 3},
			}); err == nil || !strings.Contains(err.Error(), "deadline") {
				t.Fatalf("expired deadline err = %v", err)
			}

			// Requantization drift visible on the next eval.
			if err := srv.Requantize(); err != nil {
				t.Fatal(err)
			}
			ev, err := client.Evaluate(context.Background(), federation.EvalRequest{Spec: ml.PaperLR(1)})
			if err != nil {
				t.Fatal(err)
			}
			if ev.SummaryEpoch != 2 {
				t.Fatalf("post-requantize epoch %d, want 2", ev.SummaryEpoch)
			}
		})
	}
}

// TestWireV2EquivalentToLocal drives two identically-seeded nodes —
// one in-process, one over a negotiated v2 TCP connection — through
// the same request sequence and demands bit-identical responses: the
// binary codec must be invisible to the learning pipeline.
func TestWireV2EquivalentToLocal(t *testing.T) {
	build := func() federation.Client {
		node, err := federation.NewNode("twin", lineDataset(250, 1.5, 2, 0, 40, 77), 5, rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		return federation.LocalClient{Node: node}
	}
	local := build()

	node, err := federation.NewNode("twin", lineDataset(250, 1.5, 2, 0, 40, 77), 5, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(silent)
	t.Cleanup(func() { srv.Close() })
	remote, err := Dial(srv.Addr(), DialOptions{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	if remote.Proto() != WireProtoV2 {
		t.Fatalf("negotiated %d, want v2", remote.Proto())
	}

	ctx := context.Background()
	sumL, err := local.Summary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sumR, err := remote.Summary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sumL, sumR) {
		t.Fatalf("summaries diverge:\nlocal:  %+v\nremote: %+v", sumL, sumR)
	}

	var params ml.Params
	for round := 0; round < 3; round++ {
		reqT := federation.TrainRequest{Spec: ml.PaperLR(1), Params: params, LocalEpochs: 5, Clusters: []int{0, 1}}
		trL, err := local.Train(ctx, reqT)
		if err != nil {
			t.Fatal(err)
		}
		trR, err := remote.Train(ctx, reqT)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(trL.Params, trR.Params) || trL.SamplesUsed != trR.SamplesUsed {
			t.Fatalf("round %d: train diverges:\nlocal:  %+v\nremote: %+v", round, trL, trR)
		}
		params = trL.Params

		evL, err := local.Evaluate(ctx, federation.EvalRequest{Spec: ml.PaperLR(1), Params: params})
		if err != nil {
			t.Fatal(err)
		}
		evR, err := remote.Evaluate(ctx, federation.EvalRequest{Spec: ml.PaperLR(1), Params: params})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(evL.MSE) != math.Float64bits(evR.MSE) || evL.Samples != evR.Samples {
			t.Fatalf("round %d: eval diverges: %+v vs %+v", round, evL, evR)
		}
	}
}

// ---- multiplexing behaviour ----

// TestMuxPipelining proves true pipelining: with the node's engine held
// by a gate, several calls from one client must all be in flight on
// one connection simultaneously — impossible on the serialized v1
// path.
func TestMuxPipelining(t *testing.T) {
	srv, client := startServer(t, 21, 2, 0, 30)

	const calls = 6
	release := make(chan struct{})
	started := make(chan struct{}, calls)
	hold := func() {
		started <- struct{}{}
		<-release
	}
	srv.gate.Store(&hold)

	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Ping(); err != nil {
				errs <- err
			}
		}()
	}
	// All six dispatches must start concurrently over the single
	// connection while the gate pins them.
	deadline := time.After(5 * time.Second)
	for i := 0; i < calls; i++ {
		select {
		case <-started:
		case <-deadline:
			t.Fatalf("only %d/%d RPCs in flight on one connection", i, calls)
		}
	}
	if got := client.InflightRPCs(); got != calls {
		t.Fatalf("client reports %d in-flight, want %d", got, calls)
	}
	srv.gate.Store(nil)
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := client.InflightRPCs(); got != 0 {
		t.Fatalf("in-flight %d after drain", got)
	}
}

// TestMuxCancellationDoesNotPoisonConnection: canceling one pipelined
// call must not disturb its neighbours or the connection — the tagged
// response is simply dropped when it arrives.
func TestMuxCancellationDoesNotPoisonConnection(t *testing.T) {
	_, client := startServer(t, 22, 2, 0, 30)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := client.Train(ctx, federation.TrainRequest{Spec: ml.PaperNN(1), LocalEpochs: 400})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled call returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled call did not return")
	}
	// The same connection keeps serving without a reconnect.
	before, _ := client.BytesMoved()
	if _, err := client.Summary(context.Background()); err != nil {
		t.Fatalf("connection poisoned by cancellation: %v", err)
	}
	if after, _ := client.BytesMoved(); after <= before {
		t.Fatal("no bytes moved on the surviving connection")
	}
	if client.Proto() != WireProtoV2 {
		t.Fatal("client reconnected (or downgraded) after cancellation")
	}
}

// TestMuxConcurrentStress hammers one multiplexed connection with
// mixed Train/Evaluate/Summary/Ping traffic plus mid-flight
// cancellations, under -race in CI. Every non-canceled call must
// succeed and the connection must stay on v2 throughout.
func TestMuxConcurrentStress(t *testing.T) {
	_, client := startServer(t, 23, 2, 0, 30)
	spec := ml.PaperLR(1)

	const workers = 8
	const iters = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 4 {
				case 0:
					if _, err := client.Train(context.Background(), federation.TrainRequest{Spec: spec, LocalEpochs: 1}); err != nil {
						errs <- err
					}
				case 1:
					if _, err := client.Evaluate(context.Background(), federation.EvalRequest{Spec: spec}); err != nil {
						errs <- err
					}
				case 2:
					if _, err := client.Summary(context.Background()); err != nil {
						errs <- err
					}
				default:
					// Cancellation mid-flight: a tiny deadline races
					// the RPC; both outcomes are legal, crashes and
					// poisoned connections are not.
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i)*time.Millisecond)
					_, err := client.Train(ctx, federation.TrainRequest{Spec: spec, LocalEpochs: 3})
					cancel()
					// The envelope deadline is millisecond-truncated,
					// so the daemon can refuse a hair before the local
					// ctx expires; that surfaces as a stringified
					// remote deadline error. All three are legal.
					if err != nil && !errors.Is(err, context.DeadlineExceeded) &&
						!errors.Is(err, context.Canceled) &&
						!strings.Contains(err.Error(), "deadline exceeded") {
						errs <- err
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if client.Proto() != WireProtoV2 {
		t.Fatalf("connection degraded to proto %d under stress", client.Proto())
	}
	if got := client.InflightRPCs(); got != 0 {
		t.Fatalf("in-flight %d after stress drain", got)
	}
}

// TestWireMetricsByCodec: the per-codec byte counters and encode
// histograms must advance for the codec actually in use.
func TestWireMetricsByCodec(t *testing.T) {
	reg := telemetry.Default()
	v2In := reg.Counter("qens_wire_bytes_total", telemetry.L("node", "node-A", "codec", "v2", "dir", "in")...)
	v2Enc := reg.Histogram("qens_wire_encode_us", telemetry.L("node", "node-A", "codec", "v2")...)
	in0, enc0 := v2In.Value(), v2Enc.Count()

	_, client := startServer(t, 24, 2, 0, 30)
	if _, err := client.Train(context.Background(), federation.TrainRequest{Spec: ml.PaperLR(1), LocalEpochs: 1}); err != nil {
		t.Fatal(err)
	}
	if got := v2In.Value(); got <= in0 {
		t.Fatalf("v2 byte counter did not advance: %v -> %v", in0, got)
	}
	if got := v2Enc.Count(); got <= enc0 {
		t.Fatalf("v2 encode histogram did not advance: %d -> %d", enc0, got)
	}
}
