package transport

import (
	"testing"

	"qens/internal/cluster"
	"qens/internal/geometry"
)

// BenchmarkSummaryFreshnessBytes compares the wire cost of propagating
// one advertisement-epoch bump to the leader at equal staleness. Push
// mode pays a single unsolicited push frame; pull mode pays a summary
// request plus the response carrying the same body — the floor for any
// TTL poll that happens to land right after the bump (a real TTL loop
// also polls nodes that have not changed). scripts/bench_ingest.sh
// gates CI on push staying strictly below pull.
func BenchmarkSummaryFreshnessBytes(b *testing.B) {
	sum := cluster.NodeSummary{
		NodeID:       "node-7",
		TotalSamples: 10_000,
		Epoch:        42,
	}
	for i := 0; i < 5; i++ {
		lo := float64(i) * 20
		sum.Clusters = append(sum.Clusters, cluster.Summary{
			Bounds:   geometry.MustRect([]float64{lo, -lo - 5}, []float64{lo + 6, -lo + 5}),
			Centroid: []float64{lo + 3, -lo},
			Size:     2_000,
		})
	}

	b.Run("mode=push", func(b *testing.B) {
		var buf []byte
		var err error
		for i := 0; i < b.N; i++ {
			buf, err = appendWirePush(buf[:0], uint64(i), &sum)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(buf)), "wire_bytes")
	})

	b.Run("mode=pull", func(b *testing.B) {
		req := request{Type: typeSummary, KnownSummaryEpoch: sum.Epoch - 1}
		resp := response{NodeID: sum.NodeID, SummaryEpoch: sum.Epoch, Summary: &sum}
		var reqBuf, respBuf []byte
		var err error
		for i := 0; i < b.N; i++ {
			reqBuf, err = appendWireRequest(reqBuf[:0], uint64(i), &req)
			if err != nil {
				b.Fatal(err)
			}
			respBuf, err = appendWireResponse(respBuf[:0], uint64(i), &resp)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(reqBuf)+len(respBuf)), "wire_bytes")
	})
}
