package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
	"qens/internal/telemetry"
)

func silent(string, ...any) {}

func lineDataset(n int, slope, intercept, lo, hi float64, seed uint64) *dataset.Dataset {
	src := rng.New(seed)
	d := dataset.MustNew([]string{"x", "y"}, "y")
	for i := 0; i < n; i++ {
		x := src.Uniform(lo, hi)
		d.MustAppend([]float64{x, slope*x + intercept + src.Normal(0, 0.3)})
	}
	return d
}

func startServer(t *testing.T, seed uint64, slope, lo, hi float64) (*Server, *Client) {
	t.Helper()
	node, err := federation.NewNode("node-A", lineDataset(300, slope, 1, lo, hi, seed), 5, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(silent)
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(srv.Addr(), DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := map[string]any{"hello": "world", "n": 42.0}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out["hello"] != "world" || out["n"] != 42.0 {
		t.Fatalf("round trip = %v", out)
	}
}

func TestFrameEOF(t *testing.T) {
	var out map[string]any
	if err := readFrame(strings.NewReader(""), &out); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	// A forged header claiming a giant frame must be rejected.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	var out map[string]any
	if err := readFrame(&buf, &out); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	var out map[string]int
	if err := readFrame(bytes.NewReader(trunc), &out); err == nil {
		t.Fatal("accepted truncated body")
	}
}

func TestDialPing(t *testing.T) {
	_, client := startServer(t, 1, 2, 0, 50)
	if client.ID() != "node-A" {
		t.Fatalf("client id %s", client.ID())
	}
}

func TestDialRefused(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", DialOptions{Timeout: time.Second}); err == nil {
		t.Fatal("dialed a closed port")
	}
}

func TestRemoteSummary(t *testing.T) {
	_, client := startServer(t, 2, 2, 0, 50)
	sum, err := client.Summary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.Validate(); err != nil {
		t.Fatal(err)
	}
	if sum.NodeID != "node-A" || sum.K() != 5 || sum.TotalSamples != 300 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestRemoteTrainAndEvaluate(t *testing.T) {
	_, client := startServer(t, 3, 3, 0, 20)
	spec := ml.PaperLR(1)
	resp, err := client.Train(context.Background(), federation.TrainRequest{Spec: spec, LocalEpochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	if resp.SamplesUsed != 300 {
		t.Fatalf("trained on %d samples", resp.SamplesUsed)
	}
	m := spec.MustNew()
	if err := m.SetParams(resp.Params); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{10}); math.Abs(got-31) > 4 {
		t.Fatalf("remote-trained model predicts %v, want ~31", got)
	}
	ev, err := client.Evaluate(context.Background(), federation.EvalRequest{Spec: spec, Params: resp.Params})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Samples != 300 || ev.MSE > 2 {
		t.Fatalf("remote eval %+v", ev)
	}
}

func TestRemoteTrainError(t *testing.T) {
	_, client := startServer(t, 4, 1, 0, 10)
	_, err := client.Train(context.Background(), federation.TrainRequest{Spec: ml.PaperLR(1), LocalEpochs: 0})
	if err == nil || !strings.Contains(err.Error(), "local epochs") {
		t.Fatalf("err = %v", err)
	}
	// The connection must remain usable after a server-side error.
	if _, err := client.Summary(context.Background()); err != nil {
		t.Fatalf("connection unusable after error: %v", err)
	}
}

func TestClientReconnects(t *testing.T) {
	node, err := federation.NewNode("node-A", lineDataset(100, 1, 0, 0, 10, 5), 3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(silent)
	client, err := Dial(srv.Addr(), DialOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Force-close the client's connection; the next call must
	// transparently reconnect.
	client.mu.Lock()
	client.conn.Close()
	client.mu.Unlock()
	if _, err := client.Summary(context.Background()); err != nil {
		t.Fatalf("reconnect failed: %v", err)
	}
	srv.Close()
	// After server shutdown, calls must fail.
	if _, err := client.Summary(context.Background()); err == nil {
		t.Fatal("summary succeeded against a closed server")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t, 6, 1, 0, 10)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// End-to-end: a leader driving three real TCP participants through a
// query-driven federated round.
func TestFederationOverTCP(t *testing.T) {
	datasets := []*dataset.Dataset{
		lineDataset(300, 2, 1, 0, 30, 10),
		lineDataset(300, 2, 1, 20, 60, 11),
		lineDataset(300, -2, 400, 200, 300, 12),
	}
	var clients []federation.Client
	for i, d := range datasets {
		node, err := federation.NewNode(
			[]string{"alpha", "beta", "gamma"}[i], d, 5, rng.New(uint64(20+i)))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := Serve(node, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(silent)
		t.Cleanup(func() { srv.Close() })
		c, err := Dial(srv.Addr(), DialOptions{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients = append(clients, c)
	}

	cfg := federation.Config{Spec: ml.PaperLR(1), ClusterK: 5, LocalEpochs: 15, Seed: 9}
	leader, err := federation.NewLeader(cfg, datasets[0], clients)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.New("q-net", geometry.MustRect([]float64{5, -50}, []float64{40, 150}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := leader.Execute(q, selection.QueryDriven{Epsilon: 0.6, TopL: 2}, federation.WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Participants {
		if p.NodeID == "gamma" {
			t.Fatal("selected the disjoint node over TCP")
		}
	}
	if got := res.Ensemble.Predict([]float64{20}); math.Abs(got-41) > 8 {
		t.Fatalf("TCP ensemble predicts %v at x=20, want ~41", got)
	}
	// GT selection must also work over TCP (it exercises Evaluate).
	gt, err := leader.Execute(q, selection.GameTheory{L: 1}, federation.ModelAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Participants[0].NodeID != "gamma" {
		t.Fatalf("GT over TCP picked %s, want gamma", gt.Participants[0].NodeID)
	}
}

func TestClientPing(t *testing.T) {
	_, client := startServer(t, 7, 1, 0, 10)
	id, err := client.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if id != "node-A" {
		t.Fatalf("ping returned %q", id)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t, 8, 2, 0, 30)
	const workers = 6
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			c, err := Dial(srv.Addr(), DialOptions{Timeout: 30 * time.Second})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 5; i++ {
				if _, err := c.Summary(context.Background()); err != nil {
					errs <- err
					return
				}
				if _, err := c.Train(context.Background(), federation.TrainRequest{Spec: ml.PaperLR(1), LocalEpochs: 1}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// newFuzzNode builds a small node for the dispatch fuzz target.
func newFuzzNode() (*federation.Node, error) {
	return federation.NewNode("fuzz", lineDataset(60, 1, 0, 0, 10, 99), 3, rng.New(99))
}

func TestClientBytesMoved(t *testing.T) {
	_, client := startServer(t, 9, 1, 0, 20)
	out0, in0 := client.BytesMoved()
	if _, err := client.Summary(context.Background()); err != nil {
		t.Fatal(err)
	}
	out1, in1 := client.BytesMoved()
	if out1 <= out0 || in1 <= in0 {
		t.Fatalf("byte counters did not advance: out %d->%d in %d->%d", out0, out1, in0, in1)
	}
	// A summary response (5 clusters of rectangles) dwarfs the request.
	if in1-in0 < 100 {
		t.Fatalf("summary response only %d bytes", in1-in0)
	}
}

// ---- observability tests ----

// logCapture is a thread-safe log sink for asserting structured logs.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
}

func (lc *logCapture) joined() string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return strings.Join(lc.lines, "\n")
}

// TestUnknownTypeStructuredError verifies the server rejects an
// unimplemented message type with a structured code, names the
// offending type, increments the error metric, and keeps the
// connection usable.
func TestUnknownTypeStructuredError(t *testing.T) {
	_, client := startServer(t, 30, 1, 0, 10)
	errsBefore := telemetry.Default().Counter("qens_errors_total", telemetry.L("node", "node-A")...).Value()

	_, err := client.roundTrip(context.Background(), request{Type: "compress"})
	if err == nil {
		t.Fatal("unknown type accepted")
	}
	if !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
	if !strings.Contains(err.Error(), `"compress"`) {
		t.Fatalf("error does not name the offending type: %v", err)
	}
	errsAfter := telemetry.Default().Counter("qens_errors_total", telemetry.L("node", "node-A")...).Value()
	if errsAfter <= errsBefore {
		t.Fatalf("qens_errors_total did not advance: %d -> %d", errsBefore, errsAfter)
	}
	// The connection survives the protocol error.
	if _, err := client.Summary(context.Background()); err != nil {
		t.Fatalf("connection unusable after unknown type: %v", err)
	}
}

// TestTraceIDRoundTrip verifies trace/span IDs survive the wire in
// both directions: the daemon's structured log attributes the RPC to
// the trace and the response envelope echoes it.
func TestTraceIDRoundTrip(t *testing.T) {
	srv, client := startServer(t, 31, 2, 0, 40)
	var lc logCapture
	srv.SetLogger(lc.logf)

	resp, err := client.roundTrip(context.Background(), request{
		Type:    typeTrain,
		TraceID: "trace-cafe01",
		SpanID:  "span-beef02",
		Train:   &federation.TrainRequest{Spec: ml.PaperLR(1), LocalEpochs: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != "trace-cafe01" {
		t.Fatalf("response echoes trace %q, want trace-cafe01", resp.TraceID)
	}
	logs := lc.joined()
	if !strings.Contains(logs, "trace=trace-cafe01") || !strings.Contains(logs, "span=span-beef02") {
		t.Fatalf("daemon log not attributed to the trace:\n%s", logs)
	}
	if !strings.Contains(logs, "event=rpc") || !strings.Contains(logs, "type=train") {
		t.Fatalf("log not structured key=value:\n%s", logs)
	}

	// The typed client path lifts TrainRequest trace fields into the
	// envelope (asserted via the daemon log).
	lc2 := logCapture{}
	srv.SetLogger(lc2.logf)
	if _, err := client.Train(context.Background(), federation.TrainRequest{
		Spec: ml.PaperLR(1), LocalEpochs: 1, TraceID: "trace-feed03", SpanID: "span-dead04",
	}); err != nil {
		t.Fatal(err)
	}
	if logs := lc2.joined(); !strings.Contains(logs, "trace=trace-feed03") {
		t.Fatalf("Train() did not propagate trace id:\n%s", logs)
	}
}

// TestOversizedFrameWrite verifies a body above MaxFrameSize is
// refused on the write side before touching the socket.
func TestOversizedFrameWrite(t *testing.T) {
	var buf bytes.Buffer
	err := writeFrame(&buf, map[string]any{"v": strings.Repeat("a", MaxFrameSize)})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized frame leaked %d bytes onto the wire", buf.Len())
	}
}

// TestOversizedFrameServer verifies a peer announcing an oversized
// frame is dropped without killing the server.
func TestOversizedFrameServer(t *testing.T) {
	srv, _ := startServer(t, 32, 1, 0, 10)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Header claiming a 4 GiB frame.
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	// The server must drop the connection: the read returns EOF.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	onebyte := make([]byte, 1)
	if _, err := conn.Read(onebyte); err == nil {
		t.Fatal("server kept an oversized-frame connection alive")
	}
	// And stays healthy for well-behaved clients.
	c, err := Dial(srv.Addr(), DialOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("server unhealthy after oversized frame: %v", err)
	}
	defer c.Close()
	if _, err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestServerMetrics verifies the daemon-side Prometheus families
// advance: train rounds, round latency histogram and wire bytes.
func TestServerMetrics(t *testing.T) {
	reg := telemetry.Default()
	node := telemetry.L("node", "node-A")
	srv, client := startServer(t, 33, 2, 0, 30)

	rounds0 := reg.Counter("qens_train_rounds_total", node...).Value()
	in0 := reg.Counter("qens_bytes_received_total", node...).Value()
	out0 := reg.Counter("qens_bytes_sent_total", node...).Value()
	hist0 := reg.Histogram("qens_train_round_ms", node...).Count()

	if _, err := client.Train(context.Background(), federation.TrainRequest{Spec: ml.PaperLR(1), LocalEpochs: 2}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("qens_train_rounds_total", node...).Value(); got != rounds0+1 {
		t.Fatalf("qens_train_rounds_total %d -> %d, want +1", rounds0, got)
	}
	if got := reg.Histogram("qens_train_round_ms", node...).Count(); got != hist0+1 {
		t.Fatalf("qens_train_round_ms count %d -> %d, want +1", hist0, got)
	}
	if got := reg.Counter("qens_bytes_received_total", node...).Value(); got <= in0 {
		t.Fatalf("qens_bytes_received_total did not advance: %d -> %d", in0, got)
	}
	if got := reg.Counter("qens_bytes_sent_total", node...).Value(); got <= out0 {
		t.Fatalf("qens_bytes_sent_total did not advance: %d -> %d", out0, got)
	}
	if age, ok := srv.LastTrainAge(); !ok || age < 0 || age > time.Minute {
		t.Fatalf("LastTrainAge = %v, %v", age, ok)
	}
}
