package transport

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"qens/internal/federation"
	"qens/internal/ml"
)

// FuzzReadFrame hardens the wire decoder: arbitrary bytes must either
// decode into a request or be rejected — never panic, never
// over-allocate past the frame cap.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = writeFrame(&seed, request{Type: typePing})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req request
		_ = readFrame(bytes.NewReader(data), &req) // must not panic
	})
}

// FuzzWireV2 hardens the binary codec. Each input is interpreted two
// ways:
//
//  1. As a raw v2 frame body: decode must never panic and never
//     allocate past the section sizes actually present (the count
//     guards in wireDec enforce this; a panic or OOM fails the fuzz).
//  2. As fuzz-chosen field values for a request: encode → decode must
//     reproduce the request exactly, bit-for-bit on floats.
func FuzzWireV2(f *testing.F) {
	// Seed with a real encoded frame, its truncations, and junk.
	full := fullRequest()
	frame, err := appendWireRequest(nil, 7, &full)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame[4:], "train", int64(123), 0.5, uint64(3))
	f.Add(frame[4:len(frame)/2], "evaluate", int64(-1), -0.0, uint64(0))
	f.Add([]byte{wireMagic, frameRequest}, "ping", int64(0), 1e308, uint64(1))
	f.Add([]byte{}, "", int64(9), 0.0, uint64(2))
	f.Fuzz(func(t *testing.T, raw []byte, typ string, dl int64, v float64, n uint64) {
		// Property 1: arbitrary bytes never panic the decoder, and a
		// forged count can never make it allocate beyond the body.
		var junk request
		_, _ = decodeWireRequest(raw, &junk)
		_, _, _ = decodeWireResponse(raw)

		// Property 2: encode→decode round-trips fuzz-chosen values.
		vals := make([]float64, n%64)
		for i := range vals {
			vals[i] = v * float64(i+1)
		}
		in := request{
			Type:           typ,
			TraceID:        typ + "-trace",
			DeadlineUnixMS: dl,
		}
		if len(vals) > 0 {
			in.Train = &federation.TrainRequest{
				TraceID: in.TraceID,
				Params:  ml.Params{Kind: ml.KindLinear, Dims: []int{len(vals)}, Values: vals},
			}
		}
		enc, err := appendWireRequest(nil, n, &in)
		if err != nil {
			t.Fatalf("encode rejected a legal request: %v", err)
		}
		if in.Type == "" {
			// Typeless requests are not legal protocol messages; the
			// decoder must refuse what the encoder never sends alone.
			return
		}
		// The length prefix must match the body exactly.
		if got := binary.BigEndian.Uint32(enc[:4]); int(got) != len(enc)-4 {
			t.Fatalf("length prefix %d for %d-byte body", got, len(enc)-4)
		}
		var out request
		id, err := decodeWireRequest(enc[4:], &out)
		if err != nil {
			t.Fatalf("decode(encode(x)) failed: %v", err)
		}
		if id != n {
			t.Fatalf("request id %d round-tripped as %d", n, id)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round-trip mismatch:\n in=%+v\nout=%+v", in, out)
		}
	})
}

// FuzzDispatch drives the server's request dispatcher with decoded
// fuzz inputs; every outcome must be a well-formed response.
func FuzzDispatch(f *testing.F) {
	f.Add(typePing)
	f.Add(typeSummary)
	f.Add(typeTrain)
	f.Add(typeEvaluate)
	f.Add("bogus")
	node, err := newFuzzNode()
	if err != nil {
		f.Fatal(err)
	}
	srv := &Server{node: node}
	srv.SetLogger(silent)
	f.Fuzz(func(t *testing.T, reqType string) {
		resp := srv.dispatch(request{Type: reqType})
		if resp.Error == "" && resp.NodeID == "" {
			t.Fatalf("dispatch(%q) returned neither result nor error", reqType)
		}
	})
}
