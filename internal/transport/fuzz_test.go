package transport

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hardens the wire decoder: arbitrary bytes must either
// decode into a request or be rejected — never panic, never
// over-allocate past the frame cap.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = writeFrame(&seed, request{Type: typePing})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req request
		_ = readFrame(bytes.NewReader(data), &req) // must not panic
	})
}

// FuzzDispatch drives the server's request dispatcher with decoded
// fuzz inputs; every outcome must be a well-formed response.
func FuzzDispatch(f *testing.F) {
	f.Add(typePing)
	f.Add(typeSummary)
	f.Add(typeTrain)
	f.Add(typeEvaluate)
	f.Add("bogus")
	node, err := newFuzzNode()
	if err != nil {
		f.Fatal(err)
	}
	srv := &Server{node: node, logf: silent}
	f.Fuzz(func(t *testing.T, reqType string) {
		resp := srv.dispatch(request{Type: reqType})
		if resp.Error == "" && resp.NodeID == "" {
			t.Fatalf("dispatch(%q) returned neither result nor error", reqType)
		}
	})
}
