package transport

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"qens/internal/cluster"
	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
)

// FuzzReadFrame hardens the wire decoder: arbitrary bytes must either
// decode into a request or be rejected — never panic, never
// over-allocate past the frame cap.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = writeFrame(&seed, request{Type: typePing})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req request
		_ = readFrame(bytes.NewReader(data), &req) // must not panic
	})
}

// FuzzWireV2 hardens the binary codec. Each input is interpreted two
// ways:
//
//  1. As a raw v2 frame body: decode must never panic and never
//     allocate past the section sizes actually present (the count
//     guards in wireDec enforce this; a panic or OOM fails the fuzz).
//  2. As fuzz-chosen field values for a request: encode → decode must
//     reproduce the request exactly, bit-for-bit on floats.
func FuzzWireV2(f *testing.F) {
	// Seed with a real encoded frame, its truncations, and junk.
	full := fullRequest()
	frame, err := appendWireRequest(nil, 7, &full)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame[4:], "train", int64(123), 0.5, uint64(3))
	f.Add(frame[4:len(frame)/2], "evaluate", int64(-1), -0.0, uint64(0))
	f.Add([]byte{wireMagic, frameRequest}, "ping", int64(0), 1e308, uint64(1))
	f.Add([]byte{}, "", int64(9), 0.0, uint64(2))
	f.Fuzz(func(t *testing.T, raw []byte, typ string, dl int64, v float64, n uint64) {
		// Property 1: arbitrary bytes never panic the decoders, and a
		// forged count can never make them allocate beyond the body.
		var junk request
		_, _ = decodeWireRequest(raw, &junk)
		_, _, _ = decodeWireResponse(raw)
		_, _, _ = decodeWirePush(raw)

		// Property 2: encode→decode round-trips fuzz-chosen values.
		// NaN is excluded: the codec moves raw float bits, but NaN != NaN
		// would fail the DeepEqual below despite a bit-exact trip.
		if v != v {
			v = 0
		}
		vals := make([]float64, n%64)
		for i := range vals {
			vals[i] = v * float64(i+1)
		}
		in := request{
			Type:           typ,
			TraceID:        typ + "-trace",
			DeadlineUnixMS: dl,
		}
		if len(vals) > 0 {
			in.Train = &federation.TrainRequest{
				TraceID: in.TraceID,
				Params:  ml.Params{Kind: ml.KindLinear, Dims: []int{len(vals)}, Values: vals},
			}
		}
		enc, err := appendWireRequest(nil, n, &in)
		if err != nil {
			t.Fatalf("encode rejected a legal request: %v", err)
		}
		if in.Type == "" {
			// Typeless requests are not legal protocol messages; the
			// decoder must refuse what the encoder never sends alone.
			return
		}
		// The length prefix must match the body exactly.
		if got := binary.BigEndian.Uint32(enc[:4]); int(got) != len(enc)-4 {
			t.Fatalf("length prefix %d for %d-byte body", got, len(enc)-4)
		}
		var out request
		id, err := decodeWireRequest(enc[4:], &out)
		if err != nil {
			t.Fatalf("decode(encode(x)) failed: %v", err)
		}
		if id != n {
			t.Fatalf("request id %d round-tripped as %d", n, id)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round-trip mismatch:\n in=%+v\nout=%+v", in, out)
		}
	})
}

// FuzzWirePush hardens the push-frame codec the server-push summary
// path rides on. Each input is interpreted three ways:
//
//  1. As a raw push-frame body: decodeWirePush must never panic, a
//     forged cluster count can never allocate past the bytes present,
//     and a push body must be rejected by the request and response
//     decoders (kind fencing keeps the client mux honest).
//  2. As fuzz-chosen advertisement fields: appendWirePush →
//     decodeWirePush must reproduce the summary exactly, every strict
//     prefix of the frame must be rejected as truncated, and a
//     one-byte corruption must at worst error — never panic.
//  3. As a request carrying the summary-push marker plus an unknown
//     trailing section: the decoder must take the marker and skip the
//     unknown tag by length — the same forward-compatibility contract
//     that lets pre-push peers ignore the marker itself.
func FuzzWirePush(f *testing.F) {
	seed := cluster.NodeSummary{
		NodeID: "node-A",
		Clusters: []cluster.Summary{{
			Bounds:   geometry.MustRect([]float64{0, 0}, []float64{1, 1}),
			Centroid: []float64{0.5, 0.5},
			Size:     10,
		}},
		TotalSamples: 10,
		Epoch:        3,
	}
	frame, err := appendWirePush(nil, 9, &seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame[4:], "node-A", uint64(3), uint64(2), 1.5)
	f.Add(frame[4:len(frame)-3], "", uint64(0), uint64(0), -0.0)
	f.Add([]byte{wireMagic, framePush}, "n", uint64(1), uint64(7), 1e308)
	f.Add([]byte{}, "x", uint64(2), uint64(9), 0.25)
	f.Fuzz(func(t *testing.T, raw []byte, nodeID string, epoch uint64, n uint64, v float64) {
		// Property 1: arbitrary bytes never panic, and a push body never
		// passes for a request or response.
		_, _, _ = decodeWirePush(raw)
		if len(raw) >= 2 && raw[0] == wireMagic && raw[1] == framePush {
			var junk request
			if _, err := decodeWireRequest(raw, &junk); err == nil {
				t.Fatal("push body accepted as a request")
			}
			if _, _, err := decodeWireResponse(raw); err == nil {
				t.Fatal("push body accepted as a response")
			}
		}

		// Property 2: encode→decode round-trips a fuzz-chosen summary.
		// NaN and ±Inf are excluded from the geometry (NewRect rejects
		// them and NaN != NaN breaks DeepEqual); raw-bit float handling
		// is already property 1's job.
		if v != v || math.IsInf(v, 0) {
			v = 1.25
		}
		span := math.Mod(math.Abs(v), 1000)
		in := cluster.NodeSummary{
			NodeID:       nodeID,
			Epoch:        epoch,
			TotalSamples: int(n % 1024),
		}
		for i := 0; i < int(n%6); i++ {
			lo := 3*float64(i) - span
			in.Clusters = append(in.Clusters, cluster.Summary{
				Bounds:   geometry.MustRect([]float64{lo, lo}, []float64{lo + 1 + span, lo + 2}),
				Centroid: []float64{v * float64(i+1), -v},
				Size:     i + 1,
			})
		}
		enc, err := appendWirePush(nil, n, &in)
		if err != nil {
			t.Fatalf("encode rejected a legal push: %v", err)
		}
		if got := binary.BigEndian.Uint32(enc[:4]); int(got) != len(enc)-4 {
			t.Fatalf("length prefix %d for %d-byte body", got, len(enc)-4)
		}
		id, out, err := decodeWirePush(enc[4:])
		if err != nil {
			t.Fatalf("decode(encode(x)) failed: %v", err)
		}
		if id != n {
			t.Fatalf("push id %d round-tripped as %d", n, id)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round-trip mismatch:\n in=%+v\nout=%+v", in, out)
		}
		// Every strict prefix is a truncation: the frame carries exactly
		// one section, so a cut anywhere must reject, not half-read.
		body := enc[4:]
		for cut := 0; cut < len(body); cut++ {
			if _, _, err := decodeWirePush(body[:cut]); err == nil {
				t.Fatalf("truncation at %d/%d bytes accepted", cut, len(body))
			}
		}
		// One-byte corruption — a forged count, flipped tag, bent
		// section length — must at worst error; over-allocation is
		// stopped by the count guards, a panic fails the fuzz itself.
		mut := append([]byte(nil), body...)
		mut[int(epoch%uint64(len(mut)))] ^= byte(n | 1)
		_, _, _ = decodeWirePush(mut)

		// Property 3: the summary-push marker survives an unknown
		// trailing section, which the decoder must skip by length.
		req := request{Type: typeSummary, SummaryPush: true}
		reqEnc, err := appendWireRequest(nil, 1, &req)
		if err != nil {
			t.Fatal(err)
		}
		spliced := append([]byte(nil), reqEnc[4:]...)
		junkLen := int(n % 32)
		spliced = append(spliced, 0xEE, byte(junkLen), 0, 0, 0)
		for i := 0; i < junkLen; i++ {
			spliced = append(spliced, byte(i)^byte(epoch))
		}
		var got request
		if _, err := decodeWireRequest(spliced, &got); err != nil {
			t.Fatalf("unknown trailing section not skipped: %v", err)
		}
		if !got.SummaryPush || got.Type != typeSummary {
			t.Fatalf("summary-push marker lost around unknown section: %+v", got)
		}
	})
}

// FuzzDispatch drives the server's request dispatcher with decoded
// fuzz inputs; every outcome must be a well-formed response.
func FuzzDispatch(f *testing.F) {
	f.Add(typePing)
	f.Add(typeSummary)
	f.Add(typeTrain)
	f.Add(typeEvaluate)
	f.Add("bogus")
	node, err := newFuzzNode()
	if err != nil {
		f.Fatal(err)
	}
	srv := &Server{node: node}
	srv.SetLogger(silent)
	f.Fuzz(func(t *testing.T, reqType string) {
		resp := srv.dispatch(request{Type: reqType})
		if resp.Error == "" && resp.NodeID == "" {
			t.Fatalf("dispatch(%q) returned neither result nor error", reqType)
		}
	})
}
