package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qens/internal/federation"
	"qens/internal/ml"
	"qens/internal/rng"
)

// benchTrainRequest builds the model-parameter frame the leader ships
// on every federation round: a realistic NN spec plus a dense
// parameter vector of n floats. This is the frame whose encode cost
// and wire size the v2 codec exists to shrink.
func benchTrainRequest(n int) request {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)*1.000001 - float64(n)/2
	}
	return request{
		Type:    typeTrain,
		TraceID: "trace-bench-0001",
		SpanID:  "span-bench-0001",
		Train: &federation.TrainRequest{
			TraceID: "trace-bench-0001",
			SpanID:  "span-bench-0001",
			Spec: ml.Spec{Kind: ml.KindNN, InputDim: 8, Hidden: []int{32, 16},
				LearningRate: 0.01, Epochs: 50, BatchSize: 32, Seed: 42},
			Params:      ml.Params{Kind: ml.KindNN, Dims: []int{n}, Values: vals},
			LocalEpochs: 5,
		},
	}
}

// BenchmarkWireEncode compares the two codecs on the leader->node
// model frame. frame_bytes makes the wire-size ratio a first-class
// benchmark metric alongside ns/op and allocs/op; the v2 case must
// stay at zero allocs/op (pooled buffers satellite).
func BenchmarkWireEncode(b *testing.B) {
	req := benchTrainRequest(4096)

	b.Run("codec=v1", func(b *testing.B) {
		// Pre-measure the frame size once.
		var buf bytes.Buffer
		if err := writeFrame(&buf, req); err != nil {
			b.Fatal(err)
		}
		size := buf.Len()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := writeFrame(io.Discard, req); err != nil {
				b.Fatal(err)
			}
		}
		// ResetTimer clears custom metrics, so report after the loop.
		b.ReportMetric(float64(size), "frame_bytes")
	})

	b.Run("codec=v2", func(b *testing.B) {
		frame, err := appendWireRequest(nil, 1, &req)
		if err != nil {
			b.Fatal(err)
		}
		size := len(frame)
		buf := frame
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf, err = appendWireRequest(buf[:0], uint64(i), &req)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Discard.Write(buf); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(size), "frame_bytes")
	})
}

// BenchmarkWireDecode compares decoding the same model frame. The v2
// case reuses the destination request's nested slices and must stay
// allocation-free at steady state.
func BenchmarkWireDecode(b *testing.B) {
	req := benchTrainRequest(4096)

	b.Run("codec=v1", func(b *testing.B) {
		var buf bytes.Buffer
		if err := writeFrame(&buf, req); err != nil {
			b.Fatal(err)
		}
		body := buf.Bytes()[4:]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var dst request
			if err := json.Unmarshal(body, &dst); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("codec=v2", func(b *testing.B) {
		frame, err := appendWireRequest(nil, 1, &req)
		if err != nil {
			b.Fatal(err)
		}
		body := frame[4:]
		var dst request
		if _, err := decodeWireRequest(body, &dst); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := decodeWireRequest(body, &dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchServer boots a daemon + client pair capped at proto for the
// end-to-end RPC benchmarks.
func benchServer(b *testing.B, proto int) *Client {
	b.Helper()
	node, err := federation.NewNode("node-A", lineDataset(400, 2, 1, 0, 50, 99), 5, rng.New(99))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := Serve(node, "127.0.0.1:0", WithMaxWireProto(proto))
	if err != nil {
		b.Fatal(err)
	}
	srv.SetLogger(silent)
	b.Cleanup(func() { srv.Close() })
	client, err := Dial(srv.Addr(), DialOptions{Timeout: 30 * time.Second, MaxProto: proto})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() })
	if got := client.Proto(); got != proto {
		b.Fatalf("negotiated proto %d, want %d", got, proto)
	}
	return client
}

// BenchmarkWireRPC measures end-to-end RPC throughput over loopback
// at 8 concurrent callers on ONE connection. Under v1 the calls
// serialize on the exchange lock; under v2 they pipeline through the
// multiplexer, which is where the wall-clock win on the leader->node
// fan-out path comes from.
func BenchmarkWireRPC(b *testing.B) {
	// An NN over the node's 1-D data gives a ~600-float parameter
	// vector; training once yields params guaranteed compatible with
	// the node's shard, which every Evaluate then carries.
	spec := ml.Spec{Kind: ml.KindNN, InputDim: 1, Hidden: []int{32, 16},
		LearningRate: 0.01, Epochs: 1, BatchSize: 32, Seed: 42}
	const workers = 8
	for _, proto := range []int{WireProtoV1, WireProtoV2} {
		b.Run(fmt.Sprintf("proto=v%d/concurrency=%d", proto, workers), func(b *testing.B) {
			client := benchServer(b, proto)
			ctx := context.Background()
			tr, err := client.Train(ctx, federation.TrainRequest{Spec: spec, LocalEpochs: 1})
			if err != nil {
				b.Fatal(err)
			}
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, err := client.Evaluate(ctx, federation.EvalRequest{
							Spec: spec, Params: tr.Params,
						}); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
