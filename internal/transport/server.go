package transport

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"qens/internal/cluster"
	"qens/internal/federation"
	"qens/internal/region"
	"qens/internal/telemetry"
)

// request is the wire envelope sent by the leader. TraceID and SpanID
// are optional (backward-compatible) observability fields: when the
// leader runs a traced query, they attribute the daemon-side work to
// the originating query's trace. DeadlineUnixMS (optional, epoch
// milliseconds) carries the caller's context deadline across the
// wire, so the daemon can stop training/evaluating — not just stop
// responding — once the query has expired. WireProto, stamped only on
// the ping handshake, advertises the highest wire protocol the client
// speaks (absent/0 means v1-only; see wire.go).
type request struct {
	Type           string `json:"type"`
	WireProto      int    `json:"wire_proto,omitempty"`
	TraceID        string `json:"trace_id,omitempty"`
	SpanID         string `json:"span_id,omitempty"`
	DeadlineUnixMS int64  `json:"deadline_unix_ms,omitempty"`
	// KnownSummaryEpoch (summary requests only) advertises the summary
	// epoch the caller already holds; a node whose advertisement still
	// carries that epoch answers summary_unchanged instead of the full
	// body. Zero means "send everything" (the pre-delta behavior).
	KnownSummaryEpoch uint64 `json:"known_summary_epoch,omitempty"`
	// SummaryPush, stamped only on the ping handshake, advertises that
	// the client can accept unsolicited summary-push frames once it
	// subscribes (see typeSubscribe). Pre-push peers ignore the field.
	SummaryPush bool                     `json:"summary_push,omitempty"`
	Train       *federation.TrainRequest `json:"train,omitempty"`
	Eval        *federation.EvalRequest  `json:"eval,omitempty"`
	RegionPlan  *region.PlanRequest      `json:"region_plan,omitempty"`
	RegionTrain *region.TrainRequest     `json:"region_train,omitempty"`
}

// response is the wire envelope returned by a participant. Code
// carries a structured error class (see Code* constants); TraceID
// echoes the request's trace for client-side correlation. SummaryEpoch
// is stamped on every successful response with the node's current
// advertisement version, so any RPC — not just summaries — doubles as
// a drift signal the leader's registry can act on. WireProto, stamped
// only on the ping-handshake response, confirms the negotiated
// protocol: after a response carrying wire_proto >= 2 both sides
// switch the connection to the binary v2 codec.
type response struct {
	Error        string               `json:"error,omitempty"`
	Code         string               `json:"code,omitempty"`
	WireProto    int                  `json:"wire_proto,omitempty"`
	TraceID      string               `json:"trace_id,omitempty"`
	NodeID       string               `json:"node_id,omitempty"`
	SummaryEpoch uint64               `json:"summary_epoch,omitempty"`
	Summary      *cluster.NodeSummary `json:"summary,omitempty"`
	// SummaryUnchanged confirms the requester's known_summary_epoch is
	// still current; the summary body is omitted.
	SummaryUnchanged bool `json:"summary_unchanged,omitempty"`
	// SummaryPush, stamped only on the ping-handshake response,
	// confirms the server will honor summary-push subscriptions on this
	// connection (v2 participant daemons answering a push-capable
	// hello). Absent on pre-push servers, so old peers degrade to pull.
	SummaryPush bool                      `json:"summary_push,omitempty"`
	Train       *federation.TrainResponse `json:"train,omitempty"`
	Eval        *federation.EvalResponse  `json:"eval,omitempty"`
	RegionInfo  *region.Info              `json:"region_info,omitempty"`
	RegionPlan  *region.PlanResponse      `json:"region_plan,omitempty"`
	RegionTrain *region.TrainResponse     `json:"region_train,omitempty"`
	RegionStats *region.Stats             `json:"region_stats,omitempty"`
}

// codec labels for wire metrics.
var codecLabel = map[int]string{WireProtoV1: "v1", WireProtoV2: "v2"}

// serverMetrics holds the daemon-side metric handles, resolved once at
// Serve time so the per-RPC hot path is pure atomics.
type serverMetrics struct {
	trainRounds  *telemetry.Counter
	trainRoundMS *telemetry.Histogram
	rpcMS        *telemetry.Histogram
	rpcTotal     map[string]*telemetry.Counter
	errorsTotal  *telemetry.Counter
	bytesIn      *telemetry.Counter
	bytesOut     *telemetry.Counter

	// Per-codec wire accounting: frame bytes by direction and the
	// response encode latency (for v1 the encode and the frame write
	// are fused, so the v1 series includes the write syscall).
	wireBytesIn  map[int]*telemetry.Counter
	wireBytesOut map[int]*telemetry.Counter
	encodeUS     map[int]*telemetry.Histogram
}

func newServerMetrics(reg *telemetry.Registry, nodeID string) *serverMetrics {
	node := telemetry.L("node", nodeID)
	reg.SetHelp("qens_train_rounds_total", "Training rounds executed by this node.")
	reg.SetHelp("qens_train_round_ms", "Wall-clock latency of one local training round (ms).")
	reg.SetHelp("qens_wire_bytes_total", "Wire bytes by codec and direction.")
	reg.SetHelp("qens_wire_encode_us", "Response encode latency by codec (µs).")
	m := &serverMetrics{
		trainRounds:  reg.Counter("qens_train_rounds_total", node...),
		trainRoundMS: reg.Histogram("qens_train_round_ms", node...),
		rpcMS:        reg.Histogram("qens_rpc_ms", node...),
		rpcTotal:     map[string]*telemetry.Counter{},
		errorsTotal:  reg.Counter("qens_errors_total", node...),
		bytesIn:      reg.Counter("qens_bytes_received_total", node...),
		bytesOut:     reg.Counter("qens_bytes_sent_total", node...),
		wireBytesIn:  map[int]*telemetry.Counter{},
		wireBytesOut: map[int]*telemetry.Counter{},
		encodeUS:     map[int]*telemetry.Histogram{},
	}
	for _, t := range []string{typePing, typeSummary, typeTrain, typeEvaluate, typeSubscribe,
		typeRegionInfo, typeRegionPlan, typeRegionTrain, typeRegionStats, "unknown"} {
		m.rpcTotal[t] = reg.Counter("qens_rpc_total",
			telemetry.Label{Key: "node", Value: nodeID}, telemetry.Label{Key: "type", Value: t})
	}
	for proto, codec := range codecLabel {
		m.wireBytesIn[proto] = reg.Counter("qens_wire_bytes_total",
			telemetry.L("node", nodeID, "codec", codec, "dir", "in")...)
		m.wireBytesOut[proto] = reg.Counter("qens_wire_bytes_total",
			telemetry.L("node", nodeID, "codec", codec, "dir", "out")...)
		m.encodeUS[proto] = reg.Histogram("qens_wire_encode_us",
			telemetry.L("node", nodeID, "codec", codec)...)
	}
	return m
}

// observeRPC records one dispatched request (nil-safe so bare test
// servers work); it reports whether a training round completed.
func (m *serverMetrics) observeRPC(reqType string, elapsed time.Duration, errored bool) (trained bool) {
	if m == nil {
		return false
	}
	m.rpcMS.ObserveDuration(elapsed)
	if c, ok := m.rpcTotal[reqType]; ok {
		c.Inc()
	} else {
		m.rpcTotal["unknown"].Inc()
	}
	if errored {
		m.errorsTotal.Inc()
	}
	if reqType == typeTrain && !errored {
		m.trainRounds.Inc()
		m.trainRoundMS.ObserveDuration(elapsed)
		return true
	}
	return false
}

// addBytes tallies per-connection wire bytes under the connection's
// negotiated codec (nil-safe).
func (m *serverMetrics) addBytes(proto int, in, out int64) {
	if m == nil {
		return
	}
	if in > 0 {
		m.bytesIn.Add(in)
		if c, ok := m.wireBytesIn[proto]; ok {
			c.Add(in)
		}
	}
	if out > 0 {
		m.bytesOut.Add(out)
		if c, ok := m.wireBytesOut[proto]; ok {
			c.Add(out)
		}
	}
}

// observeEncode records one response-encode duration (nil-safe).
func (m *serverMetrics) observeEncode(proto int, elapsed time.Duration) {
	if m == nil {
		return
	}
	if h, ok := m.encodeUS[proto]; ok {
		h.Observe(float64(elapsed) / float64(time.Microsecond))
	}
}

// ServeOption customizes a Server.
type ServeOption func(*Server)

// WithMaxWireProto caps the wire protocol the server will negotiate.
// WireProtoV1 disables the binary codec entirely (every connection
// stays on length-prefixed JSON); the default is WireProtoV2.
func WithMaxWireProto(proto int) ServeOption {
	return func(s *Server) {
		if proto >= WireProtoV1 && proto <= WireProtoV2 {
			s.maxProto = proto
		}
	}
}

// Server exposes one federation.Node — or one regional leader (see
// ServeRegion) — over TCP. Each connection may issue any number of
// requests, and requests execute concurrently — across connections on
// both protocols, and within one connection on wire protocol v2
// (tagged frames, per-request dispatch goroutines, responses written
// as they finish in any order). The node's training engine bounds
// actual parallelism (see federation.WithTrainConcurrency), so the
// transport never serializes dispatch.
type Server struct {
	node     *federation.Node // nil on a region server
	region   region.Service   // nil on a participant server
	id       string           // node id or region id
	ln       net.Listener
	metrics  *serverMetrics
	maxProto int

	// baseCtx parents every per-request context; cancel fires when
	// the server force-closes so in-flight training aborts at the
	// next mini-batch boundary.
	baseCtx context.Context
	cancel  context.CancelFunc

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
	logf      atomic.Pointer[func(format string, args ...any)]

	active    atomic.Int64 // RPCs currently executing (for graceful drain)
	lastTrain atomic.Int64 // unix nanos of the last completed train round

	// gate, when set (tests only), is invoked by every dispatch before
	// it executes — the shutdown tests use it to pin an RPC in flight
	// now that dispatch no longer serializes on a lock.
	gate atomic.Pointer[func()]

	connMu sync.Mutex
	conns  map[net.Conn]int // live connections → negotiated proto

	// Push subscriptions: one pusher per subscribed v2 connection.
	// Node epoch bumps mark every pusher dirty; each pusher goroutine
	// coalesces marks and writes the freshest summary under its
	// connection's write lock. Pushers stop at the first drain signal
	// (s.closed) and are awaited by s.wg, so Shutdown/Close leave no
	// goroutine behind.
	pushMu   sync.Mutex
	pushers  map[*pusher]struct{}
	pushID   atomic.Uint64 // server-minted push-frame id space
	pushSent atomic.Int64

	// unwatch removes the engine epoch-bump watcher registered at Serve
	// time; called on stop so a Serve/Shutdown cycle on a long-lived
	// node does not leave a dead server's notifier firing forever.
	unwatch func()
}

// pushWriteTimeout bounds one push-frame write. The frame is small, so
// hitting the deadline means the subscriber stopped reading; erroring
// the pusher out releases the connection's write lock instead of
// wedging every RPC response multiplexed on it.
const pushWriteTimeout = 10 * time.Second

// pusher is one connection's push subscription.
type pusher struct {
	cc       *countingConn
	writeMu  *sync.Mutex
	dirty    chan struct{} // cap 1: coalesced "summary may have moved"
	done     chan struct{}
	stopOnce sync.Once
}

func (p *pusher) notify() {
	select {
	case p.dirty <- struct{}{}:
	default:
	}
}

func (p *pusher) stop() { p.stopOnce.Do(func() { close(p.done) }) }

// Serve starts a participant daemon for node on addr (e.g.
// "127.0.0.1:0") and begins accepting connections in the background.
// RPC metrics are registered in the process-default telemetry
// registry under the node's id label.
func Serve(node *federation.Node, addr string, opts ...ServeOption) (*Server, error) {
	if node == nil {
		return nil, errors.New("transport: nil node")
	}
	return serve(node, nil, node.ID(), addr, opts)
}

// ServeRegion starts a regional-leader daemon for svc on addr: the
// same listener, framing, protocol negotiation, metrics and drain
// semantics as a participant daemon, but serving the region.* RPC
// family instead of the node family. Ping answers with the region id,
// so DialContext's non-empty-id handshake check holds unchanged.
func ServeRegion(svc region.Service, addr string, opts ...ServeOption) (*Server, error) {
	if svc == nil {
		return nil, errors.New("transport: nil region service")
	}
	if svc.ID() == "" {
		return nil, errors.New("transport: region service with empty id")
	}
	return serve(nil, svc, svc.ID(), addr, opts)
}

func serve(node *federation.Node, svc region.Service, id, addr string, opts []ServeOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		node:     node,
		region:   svc,
		id:       id,
		ln:       ln,
		metrics:  newServerMetrics(telemetry.Default(), id),
		maxProto: WireProtoV2,
		baseCtx:  baseCtx,
		cancel:   cancel,
		closed:   make(chan struct{}),
		conns:    make(map[net.Conn]int),
		pushers:  make(map[*pusher]struct{}),
	}
	s.SetLogger(log.Printf)
	for _, opt := range opts {
		opt(s)
	}
	if node != nil {
		// Ingest-driven freshness: every advertisement-epoch bump marks
		// all subscribed connections dirty; the pushers read the summary
		// themselves, so this callback stays cheap on the mutating path.
		// The registration is removed on stop (see stopAccepting).
		s.unwatch = node.Engine().OnEpochBump(func(uint64) { s.notifyPushers() })
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// notifyPushers marks every push subscription dirty.
func (s *Server) notifyPushers() {
	s.pushMu.Lock()
	for p := range s.pushers {
		p.notify()
	}
	s.pushMu.Unlock()
}

// addPusher registers a subscription and starts its goroutine, priming
// it so the subscriber converges on the current summary immediately.
func (s *Server) addPusher(cc *countingConn, writeMu *sync.Mutex) *pusher {
	p := &pusher{cc: cc, writeMu: writeMu, dirty: make(chan struct{}, 1), done: make(chan struct{})}
	s.pushMu.Lock()
	s.pushers[p] = struct{}{}
	s.pushMu.Unlock()
	s.wg.Add(1)
	go s.runPusher(p)
	p.notify()
	return p
}

// removePusher tears a subscription down (connection teardown).
func (s *Server) removePusher(p *pusher) {
	s.pushMu.Lock()
	delete(s.pushers, p)
	s.pushMu.Unlock()
	p.stop()
}

// runPusher drains one subscription's dirty marks, writing a push
// frame per observed epoch step. It exits on connection teardown, on
// the server's drain signal, or on the first write error (the serve
// loop notices the broken conn on its own).
func (s *Server) runPusher(p *pusher) {
	defer s.wg.Done()
	var lastEpoch uint64
	for {
		select {
		case <-p.done:
			return
		case <-s.closed:
			return
		case <-p.dirty:
		}
		sum := s.node.Summary()
		if sum.Epoch == lastEpoch {
			continue
		}
		lastEpoch = sum.Epoch
		id := s.pushID.Add(1)
		p.writeMu.Lock()
		// Deadline-bound write: a subscriber that stopped reading must
		// error this pusher out, not hold writeMu (and with it every RPC
		// response on the connection) until the conn is force-closed.
		_ = p.cc.SetWriteDeadline(time.Now().Add(pushWriteTimeout))
		_, err := writeWirePush(p.cc, id, &sum)
		_ = p.cc.SetWriteDeadline(time.Time{})
		p.writeMu.Unlock()
		s.metrics.addBytes(WireProtoV2, p.cc.takeRead(), p.cc.takeWritten())
		if err != nil {
			s.logkv("event", "push_write_error", "err", err)
			return
		}
		s.pushSent.Add(1)
	}
}

// PushSubscribers reports how many connections hold live push
// subscriptions (surfaced by qensd /healthz).
func (s *Server) PushSubscribers() int {
	s.pushMu.Lock()
	defer s.pushMu.Unlock()
	return len(s.pushers)
}

// PushesSent reports how many summary push frames this server has
// written (surfaced by qensd /healthz).
func (s *Server) PushesSent() int64 { return s.pushSent.Load() }

// SetLogger replaces the server's log function (tests use a silent
// one). Safe to call while the server is accepting traffic.
func (s *Server) SetLogger(logf func(format string, args ...any)) {
	if logf != nil {
		s.logf.Store(&logf)
	}
}

// logkv emits one structured key=value log line through the server's
// log function.
func (s *Server) logkv(kvs ...any) {
	logf := log.Printf
	if p := s.logf.Load(); p != nil {
		logf = *p
	}
	logf("%s", telemetry.FormatKV(append([]any{"component", "transport", "node", s.id}, kvs...)...))
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// NodeID returns the served node's id (the region id on a region
// server — the handshake identity either way).
func (s *Server) NodeID() string { return s.id }

// MaxWireProto reports the highest wire protocol this server will
// negotiate (surfaced by the qensd /healthz endpoint).
func (s *Server) MaxWireProto() int { return s.maxProto }

// WireConns reports how many live connections are speaking each
// protocol right now.
func (s *Server) WireConns() (v1, v2 int) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	for _, proto := range s.conns {
		if proto >= WireProtoV2 {
			v2++
		} else {
			v1++
		}
	}
	return v1, v2
}

// LastTrainAge reports how long ago the last training round completed
// (ok is false when the daemon has never trained) — surfaced by the
// qensd /healthz endpoint.
func (s *Server) LastTrainAge() (time.Duration, bool) {
	ns := s.lastTrain.Load()
	if ns == 0 {
		return 0, false
	}
	return time.Since(time.Unix(0, ns)), true
}

// Close force-stops the server: it stops accepting, closes every live
// connection (aborting any in-flight RPC mid-read/-write) and waits for
// the handlers to unwind. Use Shutdown for a graceful drain.
func (s *Server) Close() error {
	err := s.stopAccepting()
	s.closeConns()
	s.wg.Wait()
	return err
}

// Shutdown drains the server gracefully: it stops accepting new
// connections, waits for every executing RPC to finish (idle
// connections parked between requests do not delay shutdown), then
// closes the remaining connections. If ctx expires first the drain is
// abandoned — connections are force-closed and ctx's error is returned
// without waiting for handlers to unwind (call Close to wait, as with
// net/http's Shutdown/Close pair). The drain is best-effort: a request
// that arrives on an already-accepted connection during the drain
// window still runs to completion.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.stopAccepting()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for s.active.Load() > 0 {
		select {
		case <-ctx.Done():
			s.closeConns()
			if err == nil {
				err = ctx.Err()
			}
			return err
		case <-tick.C:
		}
	}
	s.closeConns()
	s.wg.Wait()
	return err
}

// stopAccepting marks the server closed and shuts the listener so no
// new connections land; it also detaches the engine epoch-bump watcher
// so mutations on the node stop notifying this server. Safe to call
// more than once.
func (s *Server) stopAccepting() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		if s.unwatch != nil {
			s.unwatch()
		}
		err = s.ln.Close()
	})
	return err
}

// closeConns force-closes every tracked connection, kicking handlers
// out of blocking reads, and cancels the base context so in-flight
// node jobs abandon work at the next cancellation point.
func (s *Server) closeConns() {
	s.cancel()
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
}

// trackConn registers a live connection; it reports false when the
// server is already closing (the caller must drop the connection).
func (s *Server) trackConn(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	s.conns[conn] = WireProtoV1
	return true
}

// setConnProto records a connection's upgrade to a negotiated proto.
func (s *Server) setConnProto(conn net.Conn, proto int) {
	s.connMu.Lock()
	if _, ok := s.conns[conn]; ok {
		s.conns[conn] = proto
	}
	s.connMu.Unlock()
}

// untrackConn removes a finished connection.
func (s *Server) untrackConn(conn net.Conn) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	delete(s.conns, conn)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logkv("event", "accept_error", "err", err)
				return
			}
		}
		if !s.trackConn(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrackConn(conn)
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

// handleConn serves a connection. It starts in wire protocol v1
// (length-prefixed JSON, strict request/response) and upgrades to the
// v2 binary multiplexed codec when a ping handshake negotiates it.
func (s *Server) handleConn(conn net.Conn) {
	cc := &countingConn{Conn: conn}
	for {
		var req request
		if err := readFrame(cc, &req); err != nil {
			s.metrics.addBytes(WireProtoV1, cc.takeRead(), cc.takeWritten())
			return // EOF or a broken peer; either way, drop the conn
		}
		upgrade := req.Type == typePing && req.WireProto >= WireProtoV2 && s.maxProto >= WireProtoV2
		s.active.Add(1)
		resp := s.dispatch(req)
		if upgrade && resp.Error == "" {
			resp.WireProto = WireProtoV2
			// Negotiate the server-push capability alongside the codec:
			// only participant daemons push, and only to peers that
			// advertised they can receive unsolicited frames.
			if req.SummaryPush && s.node != nil {
				resp.SummaryPush = true
			}
		}
		start := time.Now()
		err := writeFrame(cc, resp)
		s.metrics.observeEncode(WireProtoV1, time.Since(start))
		s.active.Add(-1)
		s.metrics.addBytes(WireProtoV1, cc.takeRead(), cc.takeWritten())
		if err != nil {
			s.logkv("event", "write_error", "type", req.Type, "trace", req.TraceID, "err", err)
			return
		}
		if upgrade && resp.Error == "" {
			s.setConnProto(conn, WireProtoV2)
			s.logkv("event", "wire_upgrade", "proto", WireProtoV2)
			s.serveV2(cc)
			return
		}
	}
}

// serveV2 runs the multiplexed phase of a connection: tagged binary
// request frames dispatch concurrently, each response is written
// (under a write lock) as soon as its handler finishes — in whatever
// order that happens. A malformed frame drops the connection; every
// spawned handler is awaited before the connection handler returns,
// so server Close/Shutdown semantics are unchanged.
func (s *Server) serveV2(cc *countingConn) {
	var (
		writeMu sync.Mutex
		wg      sync.WaitGroup
		push    *pusher
	)
	defer wg.Wait()
	defer func() {
		if push != nil {
			s.removePusher(push)
		}
	}()
	for {
		buf, err := readFrameBody(cc)
		if err != nil {
			s.metrics.addBytes(WireProtoV2, cc.takeRead(), cc.takeWritten())
			return
		}
		var req request
		id, err := decodeWireRequest(*buf, &req)
		putFrameBuf(buf)
		if err != nil {
			s.logkv("event", "decode_error", "proto", 2, "err", err)
			s.metrics.addBytes(WireProtoV2, cc.takeRead(), cc.takeWritten())
			return
		}
		if req.Type == typeSubscribe {
			// Handled inline rather than in dispatch: the subscription is
			// per-connection state, so it needs this loop's write lock and
			// teardown scope. Region servers have no node summary to push.
			resp := response{NodeID: s.id}
			if s.node == nil {
				resp = response{Error: "push subscription on a region server", Code: CodeUnknownType}
			} else {
				if push == nil {
					push = s.addPusher(cc, &writeMu)
				}
				resp.SummaryPush = true
				resp.SummaryEpoch = s.node.SummaryEpoch()
			}
			s.metrics.observeRPC(req.Type, 0, resp.Error != "")
			buf := getFrameBuf()
			frame, err := appendWireResponse((*buf)[:0], id, &resp)
			if err == nil {
				*buf = frame
				writeMu.Lock()
				_, err = cc.Write(frame)
				writeMu.Unlock()
			}
			putFrameBuf(buf)
			s.metrics.addBytes(WireProtoV2, cc.takeRead(), cc.takeWritten())
			if err != nil {
				s.logkv("event", "write_error", "type", req.Type, "err", err)
				return
			}
			continue
		}
		s.active.Add(1)
		wg.Add(1)
		go func(id uint64, req request) {
			defer wg.Done()
			resp := s.dispatch(req)
			start := time.Now()
			buf := getFrameBuf()
			frame, err := appendWireResponse((*buf)[:0], id, &resp)
			s.metrics.observeEncode(WireProtoV2, time.Since(start))
			if err == nil {
				*buf = frame
				writeMu.Lock()
				_, err = cc.Write(frame)
				writeMu.Unlock()
			}
			putFrameBuf(buf)
			s.active.Add(-1)
			s.metrics.addBytes(WireProtoV2, cc.takeRead(), cc.takeWritten())
			if err != nil {
				s.logkv("event", "write_error", "type", req.Type, "trace", req.TraceID, "err", err)
			}
		}(id, req)
	}
}

// dispatch executes one request against the node, recording metrics
// and a structured per-RPC log line attributed to the request's
// trace. Dispatches run concurrently across connections (and within a
// v2 connection); the node's engine bounds how many actually execute
// at once.
func (s *Server) dispatch(req request) response {
	if g := s.gate.Load(); g != nil {
		(*g)()
	}
	ctx := s.baseCtx
	if req.DeadlineUnixMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.UnixMilli(req.DeadlineUnixMS))
		defer cancel()
	}
	start := time.Now()
	resp := s.handle(ctx, req)
	elapsed := time.Since(start)

	if s.metrics.observeRPC(req.Type, elapsed, resp.Error != "") {
		s.lastTrain.Store(time.Now().UnixNano())
	}

	kvs := []any{"event", "rpc", "type", req.Type,
		"dur_ms", fmt.Sprintf("%.3f", float64(elapsed)/float64(time.Millisecond))}
	if req.TraceID != "" {
		kvs = append(kvs, "trace", req.TraceID, "span", req.SpanID)
	}
	if resp.Error != "" {
		kvs = append(kvs, "err", resp.Error)
		if resp.Code != "" {
			kvs = append(kvs, "code", resp.Code)
		}
	}
	s.logkv(kvs...)

	resp.TraceID = req.TraceID
	if resp.Error == "" && s.node != nil {
		resp.SummaryEpoch = s.node.SummaryEpoch()
	}
	return resp
}

// Requantize re-runs the served node's quantization over its current
// local data, bumping the advertisement epoch. Node mutation is
// copy-on-write (see internal/engine), so it is safe to call while
// RPCs are in flight: running jobs keep their pinned snapshot and
// leaders learn of the new epoch from the next response envelope they
// receive. Exposed so qensd can requantize on demand (e.g. on SIGHUP)
// after local data collection.
func (s *Server) Requantize() error {
	if s.node == nil {
		return errors.New("transport: region server has no node to requantize")
	}
	return s.node.Requantize()
}

// SummaryEpoch reports the served node's current advertisement version
// (surfaced by the qensd /healthz endpoint; 0 on a region server).
func (s *Server) SummaryEpoch() uint64 {
	if s.node == nil {
		return 0
	}
	return s.node.SummaryEpoch()
}

// TrainSlots reports the node engine's concurrency bound (the
// -train-concurrency setting after defaulting; 0 on a region server).
func (s *Server) TrainSlots() int {
	if s.node == nil {
		return 0
	}
	return s.node.Engine().Parallelism()
}

// TrainInflight reports how many jobs are executing inside the node
// engine right now (always <= TrainSlots).
func (s *Server) TrainInflight() int64 {
	if s.node == nil {
		return 0
	}
	return s.node.Engine().Inflight()
}

// handle runs the per-type logic. ctx carries the server lifetime and
// any wire-propagated request deadline into the node's cancellation
// points (engine admission queue, cluster boundaries, mini-batches).
func (s *Server) handle(ctx context.Context, req request) response {
	if s.region != nil {
		return s.handleRegion(ctx, req)
	}
	switch req.Type {
	case typePing:
		return response{NodeID: s.node.ID()}
	case typeSummary:
		// Epoch-conditional fast path for delta refreshes: when the
		// caller already holds the current advertisement, confirm it in
		// a summary-free response. The epoch is re-read by dispatch
		// after this returns; a requantize racing in between flips the
		// stamped epoch past the confirmed one, which the registry
		// treats as a drift signal — never as silent staleness.
		if req.KnownSummaryEpoch != 0 && req.KnownSummaryEpoch == s.node.SummaryEpoch() {
			return response{NodeID: s.node.ID(), SummaryUnchanged: true}
		}
		sum := s.node.Summary()
		return response{NodeID: s.node.ID(), Summary: &sum}
	case typeTrain:
		if req.Train == nil {
			return response{Error: "train request missing body", Code: CodeBadRequest}
		}
		out, err := s.node.TrainContext(ctx, *req.Train)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{NodeID: s.node.ID(), Train: &out}
	case typeEvaluate:
		if req.Eval == nil {
			return response{Error: "evaluate request missing body", Code: CodeBadRequest}
		}
		out, err := s.node.EvaluateContext(ctx, *req.Eval)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{NodeID: s.node.ID(), Eval: &out}
	default:
		return response{
			Error: fmt.Sprintf("unknown request type %q", req.Type),
			Code:  CodeUnknownType,
		}
	}
}

// handleRegion runs the per-type logic of a regional-leader daemon.
// Ping identifies the daemon by its region id; the node RPC family
// (summary/train/evaluate) is rejected as unknown, so a root that
// mistakes a region daemon for a participant fails loudly.
func (s *Server) handleRegion(ctx context.Context, req request) response {
	switch req.Type {
	case typePing:
		return response{NodeID: s.region.ID()}
	case typeRegionInfo:
		info, err := s.region.Info(ctx)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{NodeID: s.region.ID(), RegionInfo: &info}
	case typeRegionPlan:
		if req.RegionPlan == nil {
			return response{Error: "region plan request missing body", Code: CodeBadRequest}
		}
		out, err := s.region.Plan(ctx, *req.RegionPlan)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{NodeID: s.region.ID(), RegionPlan: &out}
	case typeRegionTrain:
		if req.RegionTrain == nil {
			return response{Error: "region train request missing body", Code: CodeBadRequest}
		}
		out, err := s.region.Train(ctx, *req.RegionTrain)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{NodeID: s.region.ID(), RegionTrain: &out}
	case typeRegionStats:
		out, err := s.region.Stats(ctx)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{NodeID: s.region.ID(), RegionStats: &out}
	default:
		return response{
			Error: fmt.Sprintf("unknown request type %q", req.Type),
			Code:  CodeUnknownType,
		}
	}
}

// countingConn tallies bytes crossing a net.Conn with atomics (v2
// request handlers write concurrently); take* drains the tallies so
// callers can feed deltas into counters.
type countingConn struct {
	net.Conn
	written atomic.Int64
	read    atomic.Int64
}

func (cc *countingConn) Write(p []byte) (int, error) {
	n, err := cc.Conn.Write(p)
	cc.written.Add(int64(n))
	return n, err
}

func (cc *countingConn) Read(p []byte) (int, error) {
	n, err := cc.Conn.Read(p)
	cc.read.Add(int64(n))
	return n, err
}

func (cc *countingConn) takeRead() int64    { return cc.read.Swap(0) }
func (cc *countingConn) takeWritten() int64 { return cc.written.Swap(0) }
