package transport

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"qens/internal/cluster"
	"qens/internal/federation"
)

// request is the wire envelope sent by the leader.
type request struct {
	Type  string                   `json:"type"`
	Train *federation.TrainRequest `json:"train,omitempty"`
	Eval  *federation.EvalRequest  `json:"eval,omitempty"`
}

// response is the wire envelope returned by a participant.
type response struct {
	Error   string                    `json:"error,omitempty"`
	NodeID  string                    `json:"node_id,omitempty"`
	Summary *cluster.NodeSummary      `json:"summary,omitempty"`
	Train   *federation.TrainResponse `json:"train,omitempty"`
	Eval    *federation.EvalResponse  `json:"eval,omitempty"`
}

// Server exposes one federation.Node over TCP. Each connection may
// issue any number of requests; requests against the node are
// serialized because node training is stateful on its RNG.
type Server struct {
	node *federation.Node
	ln   net.Listener

	mu     sync.Mutex // serializes node access
	closed chan struct{}
	wg     sync.WaitGroup
	logf   func(format string, args ...any)

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// Serve starts a participant daemon for node on addr (e.g.
// "127.0.0.1:0") and begins accepting connections in the background.
func Serve(node *federation.Node, addr string) (*Server, error) {
	if node == nil {
		return nil, errors.New("transport: nil node")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{node: node, ln: ln, closed: make(chan struct{}), logf: log.Printf,
		conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetLogger replaces the server's log function (tests use a silent one).
func (s *Server) SetLogger(logf func(format string, args ...any)) {
	if logf != nil {
		s.logf = logf
	}
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// NodeID returns the served node's id.
func (s *Server) NodeID() string { return s.node.ID() }

// Close stops accepting and waits for in-flight handlers.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	err := s.ln.Close()
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

// trackConn registers a live connection; it reports false when the
// server is already closing (the caller must drop the connection).
func (s *Server) trackConn(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	s.conns[conn] = struct{}{}
	return true
}

// untrackConn removes a finished connection.
func (s *Server) untrackConn(conn net.Conn) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	delete(s.conns, conn)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logf("transport: accept: %v", err)
				return
			}
		}
		if !s.trackConn(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrackConn(conn)
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

// handleConn serves request/response pairs until the peer disconnects.
func (s *Server) handleConn(conn net.Conn) {
	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			return // EOF or a broken peer; either way, drop the conn
		}
		resp := s.dispatch(req)
		if err := writeFrame(conn, resp); err != nil {
			s.logf("transport: node %s: write response: %v", s.node.ID(), err)
			return
		}
	}
}

// dispatch executes one request against the node.
func (s *Server) dispatch(req request) response {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.Type {
	case typePing:
		return response{NodeID: s.node.ID()}
	case typeSummary:
		sum := s.node.Summary()
		return response{NodeID: s.node.ID(), Summary: &sum}
	case typeTrain:
		if req.Train == nil {
			return response{Error: "train request missing body"}
		}
		out, err := s.node.Train(*req.Train)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{NodeID: s.node.ID(), Train: &out}
	case typeEvaluate:
		if req.Eval == nil {
			return response{Error: "evaluate request missing body"}
		}
		out, err := s.node.Evaluate(*req.Eval)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{NodeID: s.node.ID(), Eval: &out}
	default:
		return response{Error: fmt.Sprintf("unknown request type %q", req.Type)}
	}
}
