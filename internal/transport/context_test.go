package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"qens/internal/federation"
	"qens/internal/ml"
)

// TestCanceledContextFailsFast: a pre-canceled context must short-
// circuit before any wire traffic and surface context.Canceled.
func TestCanceledContextFailsFast(t *testing.T) {
	_, client := startServer(t, 31, 2, 0, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := client.Summary(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled call took %v, want prompt return", elapsed)
	}
}

// TestExpiredDeadlineFailsFast: a deadline already in the past must
// return context.DeadlineExceeded without retry loops.
func TestExpiredDeadlineFailsFast(t *testing.T) {
	_, client := startServer(t, 32, 2, 0, 50)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := client.Train(ctx, federation.TrainRequest{Spec: ml.PaperLR(1), LocalEpochs: 5})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestContextDeadlinePropagatesToConn: a deadline shorter than the
// client timeout must bound the round-trip; we point the client at a
// listener that accepts but never responds, so only the context
// deadline can release the call.
func TestContextDeadlinePropagatesToConn(t *testing.T) {
	srv, _ := startServer(t, 33, 2, 0, 50)
	// Dial with a long client timeout; the per-call ctx must win.
	client, err := Dial(srv.Addr(), DialOptions{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Stop the daemon from answering further requests by closing it;
	// the next round-trip blocks on a dead conn until the deadline.
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Summary(ctx)
	if err == nil {
		t.Fatal("expected error after daemon close")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("ctx-bounded call took %v", elapsed)
	}
}

// TestCancelMidFlight: cancellation while a round-trip is blocked must
// abort the exchange promptly (the client slams the conn deadline).
func TestCancelMidFlight(t *testing.T) {
	srv, client := startServer(t, 34, 2, 0, 50)
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	// A long training request gives the cancel goroutine time to fire
	// while the client waits on the response frame.
	start := time.Now()
	_, err := client.Train(ctx, federation.TrainRequest{Spec: ml.PaperNN(1), LocalEpochs: 500})
	if err == nil {
		// Training may legitimately win the race on fast machines.
		t.Skip("training finished before cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled round-trip took %v", elapsed)
	}
}
