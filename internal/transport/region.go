package transport

import (
	"context"
	"errors"
	"fmt"

	"qens/internal/region"
)

// Region-tier RPCs: the root coordinator's handle on a remote regional
// leader (a ServeRegion daemon). They ride the same negotiated
// connection as the node family — multiplexed and pipelined on v2,
// serialized on v1 — so a root fanning one query out to N regions
// overlaps their plan and train rounds on one socket each.

// RegionInfo fetches the region's membership and covering rectangle.
func (c *Client) RegionInfo(ctx context.Context) (region.Info, error) {
	resp, err := c.roundTrip(ctx, request{Type: typeRegionInfo})
	if err != nil {
		return region.Info{}, err
	}
	if resp.RegionInfo == nil {
		return region.Info{}, errors.New("transport: daemon returned no region info")
	}
	return *resp.RegionInfo, nil
}

// RegionPlan asks the region to rank its shard for one query.
func (c *Client) RegionPlan(ctx context.Context, req region.PlanRequest) (region.PlanResponse, error) {
	resp, err := c.roundTrip(ctx, request{Type: typeRegionPlan, RegionPlan: &req})
	if err != nil {
		return region.PlanResponse{}, err
	}
	if resp.RegionPlan == nil {
		return region.PlanResponse{}, errors.New("transport: daemon returned no region plan")
	}
	return *resp.RegionPlan, nil
}

// RegionTrain runs one training round over shard members. The body's
// trace/span ids are lifted into the envelope so the daemon's RPC log
// attributes the round to the originating root query.
func (c *Client) RegionTrain(ctx context.Context, req region.TrainRequest) (region.TrainResponse, error) {
	resp, err := c.roundTrip(ctx, request{
		Type: typeRegionTrain, TraceID: req.TraceID, SpanID: req.SpanID, RegionTrain: &req})
	if err != nil {
		return region.TrainResponse{}, err
	}
	if resp.RegionTrain == nil {
		return region.TrainResponse{}, errors.New("transport: daemon returned no region train response")
	}
	return *resp.RegionTrain, nil
}

// RegionStats fetches the region's registry and fleet-health report.
func (c *Client) RegionStats(ctx context.Context) (region.Stats, error) {
	resp, err := c.roundTrip(ctx, request{Type: typeRegionStats})
	if err != nil {
		return region.Stats{}, err
	}
	if resp.RegionStats == nil {
		return region.Stats{}, errors.New("transport: daemon returned no region stats")
	}
	return *resp.RegionStats, nil
}

// RegionClient adapts a Client into a region.Service, so the root
// Router drives remote regional leaders exactly like in-process ones.
type RegionClient struct{ c *Client }

var _ region.Service = (*RegionClient)(nil)

// DialRegion connects to a regional-leader daemon and verifies it
// actually speaks the region RPC family (a participant daemon answers
// the handshake fine but rejects region.info — caught here, at dial
// time, instead of on the first query).
func DialRegion(ctx context.Context, addr string, opts DialOptions) (*RegionClient, error) {
	c, err := DialContext(ctx, addr, opts)
	if err != nil {
		return nil, err
	}
	if _, err := c.RegionInfo(ctx); err != nil {
		c.Close()
		if errors.Is(err, ErrUnknownType) {
			return nil, fmt.Errorf("transport: dial region %s: daemon %s is not a regional leader: %w",
				addr, c.ID(), err)
		}
		return nil, fmt.Errorf("transport: dial region %s: %w", addr, err)
	}
	return &RegionClient{c: c}, nil
}

// Client exposes the underlying transport client (byte accounting,
// negotiated protocol).
func (r *RegionClient) Client() *Client { return r.c }

// Close tears down the connection.
func (r *RegionClient) Close() error { return r.c.Close() }

// ID implements region.Service with the region id learned on the ping
// handshake.
func (r *RegionClient) ID() string { return r.c.ID() }

// Info implements region.Service.
func (r *RegionClient) Info(ctx context.Context) (region.Info, error) {
	return r.c.RegionInfo(ctx)
}

// Plan implements region.Service.
func (r *RegionClient) Plan(ctx context.Context, req region.PlanRequest) (region.PlanResponse, error) {
	return r.c.RegionPlan(ctx, req)
}

// Train implements region.Service.
func (r *RegionClient) Train(ctx context.Context, req region.TrainRequest) (region.TrainResponse, error) {
	return r.c.RegionTrain(ctx, req)
}

// Stats implements region.Service.
func (r *RegionClient) Stats(ctx context.Context) (region.Stats, error) {
	return r.c.RegionStats(ctx)
}
