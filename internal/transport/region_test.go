package transport

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"qens/internal/cluster"
	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/region"
	"qens/internal/rng"
	"qens/internal/selection"
)

// regionFleet builds a 4-node fleet as two spatial shards under
// regional leaders. Node seeds depend only on the index, so repeated
// builds are bit-identical (the remote-vs-local equivalence below
// depends on it).
func regionFleet(t *testing.T) []*region.Leader {
	t.Helper()
	slabs := [][2]float64{{0, 10}, {12, 22}, {40, 50}, {52, 62}}
	cfg := federation.Config{Spec: ml.PaperLR(1), ClusterK: 3, LocalEpochs: 2, Seed: 42}
	nodes := make([]*federation.Node, len(slabs))
	summaries := make([]cluster.NodeSummary, len(slabs))
	rosterIndex := make(map[string]int, len(slabs))
	for i, s := range slabs {
		n, err := federation.NewNode(fmt.Sprintf("node-%d", i),
			lineDataset(150, 2, 1, s[0], s[1], 10+uint64(i)), 3, rng.New(1000+uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		summaries[i] = n.Summary()
		rosterIndex[n.ID()] = i
	}
	shards, err := region.Partition(summaries, 2)
	if err != nil {
		t.Fatal(err)
	}
	leaders := make([]*region.Leader, 0, len(shards))
	for r, shard := range shards {
		clients := make([]federation.Client, 0, len(shard))
		for _, idx := range shard {
			clients = append(clients, federation.LocalClient{Node: nodes[idx]})
		}
		fed, err := federation.NewLeader(cfg, nil, clients)
		if err != nil {
			t.Fatal(err)
		}
		lead, err := region.NewLeader(fmt.Sprintf("region-%d", r), fed, rosterIndex)
		if err != nil {
			t.Fatal(err)
		}
		leaders = append(leaders, lead)
	}
	return leaders
}

func serveRegions(t *testing.T, leaders []*region.Leader, maxProto int) []region.Service {
	t.Helper()
	remotes := make([]region.Service, 0, len(leaders))
	for _, lead := range leaders {
		srv, err := ServeRegion(lead, "127.0.0.1:0", WithMaxWireProto(maxProto))
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(silent)
		t.Cleanup(func() { srv.Close() })
		rc, err := DialRegion(context.Background(), srv.Addr(),
			DialOptions{Timeout: 30 * time.Second, MaxProto: maxProto})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rc.Close() })
		if rc.ID() != lead.ID() {
			t.Fatalf("dialed region id %q, want %q", rc.ID(), lead.ID())
		}
		if got := rc.Client().Proto(); got != maxProto {
			t.Fatalf("negotiated proto %d, want %d", got, maxProto)
		}
		remotes = append(remotes, rc)
	}
	return remotes
}

// TestRegionRPCEquivalentToLocal runs the full region RPC surface over
// both wire protocols and requires every response — info, rankings,
// training params, stats — to match the in-process leader bit for bit.
func TestRegionRPCEquivalentToLocal(t *testing.T) {
	rcfg := region.Config{Spec: ml.PaperLR(1), LocalEpochs: 2, Seed: 42}
	sel := selection.QueryDriven{Epsilon: 1e-9, TopL: 2}
	q, err := query.New("remote-q", geometry.MustRect([]float64{1, -500}, []float64{60, 500}))
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []int{WireProtoV1, WireProtoV2} {
		t.Run(fmt.Sprintf("v%d", proto), func(t *testing.T) {
			localLeaders := regionFleet(t)
			locals := make([]region.Service, len(localLeaders))
			for i, l := range localLeaders {
				locals[i] = l
			}
			remotes := serveRegions(t, regionFleet(t), proto)

			localRouter, err := region.NewRouter(rcfg, locals)
			if err != nil {
				t.Fatal(err)
			}
			remoteRouter, err := region.NewRouter(rcfg, remotes)
			if err != nil {
				t.Fatal(err)
			}

			ctx := context.Background()
			want, _, err := localRouter.ExecuteQuery(ctx, q, sel, federation.WeightedAveraging)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := remoteRouter.ExecuteQuery(ctx, q, sel, federation.WeightedAveraging)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Participants) != len(got.Participants) {
				t.Fatalf("%d vs %d participants", len(want.Participants), len(got.Participants))
			}
			for i := range want.Participants {
				if want.Participants[i].NodeID != got.Participants[i].NodeID ||
					want.Participants[i].Rank != got.Participants[i].Rank {
					t.Fatalf("participant %d: %+v vs %+v", i, want.Participants[i], got.Participants[i])
				}
			}
			for i := range want.LocalParams {
				for j, v := range want.LocalParams[i].Values {
					if got.LocalParams[i].Values[j] != v {
						t.Fatalf("params %d value %d: %v vs %v (not bit-exact over the wire)",
							i, j, v, got.LocalParams[i].Values[j])
					}
				}
			}
			for _, x := range []float64{0, 15, 45, 61} {
				if a, b := want.Ensemble.Predict([]float64{x}), got.Ensemble.Predict([]float64{x}); a != b {
					t.Fatalf("ensemble(%v): %v vs %v", x, a, b)
				}
			}

			// Stats and fleet reports cross the wire intact.
			reports, err := remoteRouter.FleetReport(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(reports) != 2 {
				t.Fatalf("fleet report has %d regions, want 2", len(reports))
			}
			for _, rep := range reports {
				if rep.Info.Epoch == 0 || len(rep.Info.Nodes) != 2 || len(rep.Health) != 2 {
					t.Fatalf("region report %+v incomplete", rep.Info)
				}
			}
		})
	}
}

// TestDialRegionRejectsParticipantDaemon: pointing a root at a node
// daemon must fail at dial time with the unknown-type error, not on
// the first live query.
func TestDialRegionRejectsParticipantDaemon(t *testing.T) {
	srv, _ := startServer(t, 7, 2, 0, 50)
	_, err := DialRegion(context.Background(), srv.Addr(), DialOptions{Timeout: 10 * time.Second})
	if !errors.Is(err, ErrUnknownType) {
		t.Fatalf("dial region against participant daemon: err %v, want ErrUnknownType", err)
	}
}

// TestRegionServerRejectsNodeRPCs: the inverse mismatch — a leader
// treating a region daemon as a participant — also fails loudly.
func TestRegionServerRejectsNodeRPCs(t *testing.T) {
	leaders := regionFleet(t)
	srv, err := ServeRegion(leaders[0], "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(silent)
	t.Cleanup(func() { srv.Close() })
	if srv.NodeID() != leaders[0].ID() {
		t.Fatalf("region server id %q, want %q", srv.NodeID(), leaders[0].ID())
	}
	if srv.SummaryEpoch() != 0 || srv.TrainSlots() != 0 || srv.TrainInflight() != 0 {
		t.Fatal("region server leaked node-backed introspection values")
	}
	if err := srv.Requantize(); err == nil {
		t.Fatal("requantize on a region server should fail")
	}
	client, err := Dial(srv.Addr(), DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	if _, err := client.Summary(context.Background()); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("summary against region daemon: err %v, want ErrUnknownType", err)
	}
}
