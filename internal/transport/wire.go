// Wire protocol v2: a hand-rolled binary codec for the leader→node
// RPC envelopes. v1 frames a JSON body behind a 4-byte length prefix;
// v2 keeps the identical outer framing (so the size cap and the
// read-loop are shared) but replaces the body with typed binary
// sections:
//
//	body := magic(u8=0xC2) kind(u8) reqID(u64 LE) section*
//	section := tag(u8) len(u32 LE) payload
//
// Sections unknown to a decoder are skipped by length, so fields can
// be added without a version bump. Model parameters, summary
// rectangles and predictions — the dominant payloads — are raw
// little-endian []float64 (bit-exact round-trip via math.Float64bits,
// no decimal text, no reflection). The reqID makes frames
// self-describing for the multiplexed client: responses may return in
// any order and are matched to callers through it.
//
// Protocol selection is negotiated on the ping handshake (see
// client.go/server.go): a v2-capable client stamps wire_proto=2 on
// its v1 JSON ping, a v2-capable server echoes the negotiated version
// and both sides switch the connection to v2 framing; either side
// predating v2 simply never mentions wire_proto and the connection
// stays on v1 JSON. All encode paths borrow pooled buffers.
package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"qens/internal/cluster"
	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/region"
)

// Wire protocol versions. V1 is the length-prefixed JSON codec the
// seed shipped with; V2 is the binary codec in this file.
const (
	WireProtoV1 = 1
	WireProtoV2 = 2
)

// wireMagic is the first body byte of every v2 frame — a cheap guard
// against a v1 peer (JSON bodies start with '{' = 0x7B) or garbage.
const wireMagic = 0xC2

// Frame kinds. framePush is server-initiated: it carries no pending
// request id from the client's space — push ids live in their own
// monotonically increasing server-minted space, so a push can never be
// mistaken for (or collide with) an RPC response.
const (
	frameRequest  = 0
	frameResponse = 1
	framePush     = 2
)

// Section tags. Request-side and response-side tags share one
// namespace so a decoder can reject misplaced sections cheaply.
const (
	secType      byte = 1  // str rpc type
	secTrace     byte = 2  // str trace, str span
	secDeadline  byte = 3  // varint deadline_unix_ms
	secTrainReq  byte = 4  // spec, params, ints clusters, uvarint epochs
	secEvalReq   byte = 5  // spec, params, u8 hasBounds [+ rect]
	secError     byte = 6  // str code, str message
	secNodeID    byte = 7  // str node id
	secEpoch     byte = 8  // uvarint summary epoch
	secSummary   byte = 9  // node summary
	secTrainResp byte = 10 // params, uvarint used, uvarint total, varint ns, uvarint epoch
	secEvalResp  byte = 11 // f64 mse, uvarint samples, uvarint epoch
	secSpans     byte = 12 // u8 owner, uvarint count, {str name, varint start_unix_ns, varint dur_ns}*

	// Region-tier RPC bodies: u8 subtype followed by a JSON payload.
	// The region structs nest ranking rows, participants and health
	// reports whose wire volume is dwarfed by model parameters, so JSON
	// inside a skippable v2 section buys schema evolution for free while
	// the connection keeps the multiplexed binary framing. Pre-region
	// decoders skip both tags by length.
	secRegionReq  byte = 13 // u8 body kind, JSON body
	secRegionResp byte = 14 // u8 body kind, JSON body

	// Summary-delta refresh (registry delta fetch): a summary request
	// may advertise the epoch it already holds; a server whose summary
	// still carries that epoch answers with an "unchanged" marker
	// instead of the full summary body. Both sections are skipped by
	// length on pre-delta peers, which degrades to a full summary —
	// correct, just not byte-proportional to churn.
	secKnownEpoch       byte = 15 // uvarint known summary epoch (request)
	secSummaryUnchanged byte = 16 // u8 1 marker (response)

	// Summary-delta push (server→client, inside a framePush frame): the
	// node's fresh advertisement, self-delimiting like every section so
	// decoders predating it skip it by length. Peers that never
	// subscribe (v1, or old v2) simply never receive push frames and
	// keep pulling forever.
	secPushSummary byte = 17 // node summary (push)

	// Push capability marker: on a request it advertises the client can
	// receive push frames, on a response it confirms the server will
	// emit them. Negotiation normally rides the v1 JSON handshake, but
	// the marker keeps the binary codec lossless for both envelopes
	// (and pre-push decoders skip it by length).
	secSummaryPush byte = 18 // u8 1 marker (request and response)
)

// Body kinds inside secRegionReq/secRegionResp.
const (
	regionBodyPlan  byte = 0
	regionBodyTrain byte = 1
	regionBodyInfo  byte = 2
	regionBodyStats byte = 3
)

// Owner byte inside a secSpans section: which typed body the span
// list belongs to. The encoder always emits secSpans after the owning
// body's section, so the decoder can attach in one pass.
const (
	spanOwnerTrain byte = 0
	spanOwnerEval  byte = 1
)

// ErrMalformedFrame reports a v2 body that violates the wire grammar.
var ErrMalformedFrame = errors.New("transport: malformed v2 frame")

// internTable maps the handful of strings that cross the wire on
// every RPC to shared constants, so the steady-state decode path
// performs zero string allocations. Lookups with a []byte key compile
// to an allocation-free map access.
var internTable = map[string]string{
	typePing:        typePing,
	typeSummary:     typeSummary,
	typeTrain:       typeTrain,
	typeEvaluate:    typeEvaluate,
	typeSubscribe:   typeSubscribe,
	typeRegionInfo:  typeRegionInfo,
	typeRegionPlan:  typeRegionPlan,
	typeRegionTrain: typeRegionTrain,
	typeRegionStats: typeRegionStats,
	ml.KindLinear:   ml.KindLinear,
	ml.KindNN:       ml.KindNN,
	"sgd":           "sgd",
	"momentum":      "momentum",
	"adam":          "adam",
	"relu":          "relu",
	"tanh":          "tanh",
	"sigmoid":       "sigmoid",
	CodeUnknownType: CodeUnknownType,
	CodeBadRequest:  CodeBadRequest,
}

func internString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := internTable[string(b)]; ok {
		return s
	}
	return string(b)
}

// ---- encoder ----

// wireEnc appends the v2 grammar onto a byte slice. The slice is
// caller-owned (append semantics) so hot paths can reuse one buffer
// frame after frame.
type wireEnc struct{ b []byte }

func (e *wireEnc) u8(v byte)        { e.b = append(e.b, v) }
func (e *wireEnc) u64(v uint64)     { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *wireEnc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *wireEnc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *wireEnc) f64(v float64)    { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }

func (e *wireEnc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// floats is the payload that motivates v2: raw little-endian IEEE-754
// bits, 8 bytes per value, bit-exact and memcpy-fast.
func (e *wireEnc) floats(v []float64) {
	e.uvarint(uint64(len(v)))
	for _, f := range v {
		e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(f))
	}
}

func (e *wireEnc) ints(v []int) {
	e.uvarint(uint64(len(v)))
	for _, x := range v {
		e.b = binary.AppendVarint(e.b, int64(x))
	}
}

// beginSection writes the tag and reserves a fixed 4-byte length slot
// that endSection patches once the payload is known.
func (e *wireEnc) beginSection(tag byte) int {
	e.u8(tag)
	e.b = append(e.b, 0, 0, 0, 0)
	return len(e.b)
}

func (e *wireEnc) endSection(mark int) {
	binary.LittleEndian.PutUint32(e.b[mark-4:mark], uint32(len(e.b)-mark))
}

func (e *wireEnc) rect(r geometry.Rect) {
	e.floats(r.Min)
	e.floats(r.Max)
}

func (e *wireEnc) params(p ml.Params) {
	e.str(p.Kind)
	e.ints(p.Dims)
	e.floats(p.Values)
}

func (e *wireEnc) spec(s ml.Spec) {
	e.str(s.Kind)
	e.varint(int64(s.InputDim))
	e.ints(s.Hidden)
	e.f64(s.LearningRate)
	e.varint(int64(s.Epochs))
	e.varint(int64(s.BatchSize))
	e.f64(s.ValidationSplit)
	e.str(s.Optimizer)
	e.str(s.Activation)
	e.f64(s.L2)
	e.f64(s.LRDecay)
	e.varint(int64(s.Patience))
	e.uvarint(s.Seed)
}

func (e *wireEnc) summary(s *cluster.NodeSummary) {
	e.str(s.NodeID)
	e.uvarint(uint64(s.TotalSamples))
	e.uvarint(s.Epoch)
	e.uvarint(uint64(len(s.Clusters)))
	for i := range s.Clusters {
		c := &s.Clusters[i]
		e.rect(c.Bounds)
		e.floats(c.Centroid)
		e.uvarint(uint64(c.Size))
	}
}

// regionSection emits one secRegionReq/secRegionResp section: the body
// kind byte followed by the JSON-marshaled body.
func (e *wireEnc) regionSection(tag, kind byte, body any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("transport: encode region body: %w", err)
	}
	m := e.beginSection(tag)
	e.u8(kind)
	e.b = append(e.b, b...)
	e.endSection(m)
	return nil
}

// appendWireRequest appends one complete v2 request frame (4-byte BE
// length prefix included) for req tagged with id onto dst.
func appendWireRequest(dst []byte, id uint64, req *request) ([]byte, error) {
	e := wireEnc{b: dst}
	hdr := len(e.b)
	e.b = append(e.b, 0, 0, 0, 0) // frame length placeholder
	e.u8(wireMagic)
	e.u8(frameRequest)
	e.u64(id)

	m := e.beginSection(secType)
	e.str(req.Type)
	e.endSection(m)
	if req.TraceID != "" || req.SpanID != "" {
		m = e.beginSection(secTrace)
		e.str(req.TraceID)
		e.str(req.SpanID)
		e.endSection(m)
	}
	if req.DeadlineUnixMS != 0 {
		m = e.beginSection(secDeadline)
		e.varint(req.DeadlineUnixMS)
		e.endSection(m)
	}
	if req.Train != nil {
		m = e.beginSection(secTrainReq)
		e.spec(req.Train.Spec)
		e.params(req.Train.Params)
		e.ints(req.Train.Clusters)
		e.varint(int64(req.Train.LocalEpochs))
		e.endSection(m)
	}
	if req.Eval != nil {
		m = e.beginSection(secEvalReq)
		e.spec(req.Eval.Spec)
		e.params(req.Eval.Params)
		if req.Eval.Bounds != nil {
			e.u8(1)
			e.rect(*req.Eval.Bounds)
		} else {
			e.u8(0)
		}
		e.endSection(m)
	}
	if req.KnownSummaryEpoch != 0 {
		m = e.beginSection(secKnownEpoch)
		e.uvarint(req.KnownSummaryEpoch)
		e.endSection(m)
	}
	if req.SummaryPush {
		m = e.beginSection(secSummaryPush)
		e.u8(1)
		e.endSection(m)
	}
	if req.RegionPlan != nil {
		if err := e.regionSection(secRegionReq, regionBodyPlan, req.RegionPlan); err != nil {
			return e.b[:hdr], err
		}
	}
	if req.RegionTrain != nil {
		if err := e.regionSection(secRegionReq, regionBodyTrain, req.RegionTrain); err != nil {
			return e.b[:hdr], err
		}
	}
	return finishWireFrame(e.b, hdr)
}

// appendWireResponse appends one complete v2 response frame for resp
// tagged with id onto dst.
func appendWireResponse(dst []byte, id uint64, resp *response) ([]byte, error) {
	e := wireEnc{b: dst}
	hdr := len(e.b)
	e.b = append(e.b, 0, 0, 0, 0)
	e.u8(wireMagic)
	e.u8(frameResponse)
	e.u64(id)

	if resp.Error != "" {
		m := e.beginSection(secError)
		e.str(resp.Code)
		e.str(resp.Error)
		e.endSection(m)
	}
	if resp.TraceID != "" {
		m := e.beginSection(secTrace)
		e.str(resp.TraceID)
		e.str("")
		e.endSection(m)
	}
	if resp.NodeID != "" {
		m := e.beginSection(secNodeID)
		e.str(resp.NodeID)
		e.endSection(m)
	}
	if resp.SummaryEpoch != 0 {
		m := e.beginSection(secEpoch)
		e.uvarint(resp.SummaryEpoch)
		e.endSection(m)
	}
	if resp.Summary != nil {
		m := e.beginSection(secSummary)
		e.summary(resp.Summary)
		e.endSection(m)
	}
	if resp.SummaryUnchanged {
		m := e.beginSection(secSummaryUnchanged)
		e.u8(1)
		e.endSection(m)
	}
	if resp.SummaryPush {
		m := e.beginSection(secSummaryPush)
		e.u8(1)
		e.endSection(m)
	}
	if resp.Train != nil {
		m := e.beginSection(secTrainResp)
		e.params(resp.Train.Params)
		e.uvarint(uint64(resp.Train.SamplesUsed))
		e.uvarint(uint64(resp.Train.TotalSamples))
		e.varint(int64(resp.Train.TrainTime))
		e.uvarint(resp.Train.SummaryEpoch)
		e.endSection(m)
	}
	if resp.Eval != nil {
		m := e.beginSection(secEvalResp)
		e.f64(resp.Eval.MSE)
		e.uvarint(uint64(resp.Eval.Samples))
		e.uvarint(resp.Eval.SummaryEpoch)
		e.endSection(m)
	}
	// Piggybacked node-side phase spans ride in their own section so v1
	// of this codec (which stops at secEvalResp) skips them by length.
	// They are emitted after the owning body section — attachment during
	// the decoder's single pass relies on that order.
	if resp.Train != nil && len(resp.Train.Spans) > 0 {
		e.spanSection(spanOwnerTrain, resp.Train.Spans)
	}
	if resp.Eval != nil && len(resp.Eval.Spans) > 0 {
		e.spanSection(spanOwnerEval, resp.Eval.Spans)
	}
	for _, rb := range []struct {
		kind byte
		body any
	}{
		{regionBodyInfo, anyOrNil(resp.RegionInfo)},
		{regionBodyPlan, anyOrNil(resp.RegionPlan)},
		{regionBodyTrain, anyOrNil(resp.RegionTrain)},
		{regionBodyStats, anyOrNil(resp.RegionStats)},
	} {
		if rb.body == nil {
			continue
		}
		if err := e.regionSection(secRegionResp, rb.kind, rb.body); err != nil {
			return e.b[:hdr], err
		}
	}
	return finishWireFrame(e.b, hdr)
}

// appendWirePush appends one complete v2 push frame: the server's
// unsolicited summary-delta advertisement tagged with a server-minted
// push id.
func appendWirePush(dst []byte, pushID uint64, s *cluster.NodeSummary) ([]byte, error) {
	e := wireEnc{b: dst}
	hdr := len(e.b)
	e.b = append(e.b, 0, 0, 0, 0)
	e.u8(wireMagic)
	e.u8(framePush)
	e.u64(pushID)
	m := e.beginSection(secPushSummary)
	e.summary(s)
	e.endSection(m)
	return finishWireFrame(e.b, hdr)
}

// decodeWirePush parses a v2 push frame body. A push without a summary
// section (truncation or forgery) is malformed: unlike requests and
// responses, the summary is the frame's entire reason to exist.
func decodeWirePush(body []byte) (pushID uint64, s cluster.NodeSummary, err error) {
	d := wireDec{b: body}
	pushID = decodeWireHeader(&d, framePush)
	saw := false
	for {
		tag, p, ok := d.section()
		if !ok {
			break
		}
		if tag == secPushSummary {
			p.summary(&s)
			saw = true
		}
		if p.err != nil {
			return pushID, cluster.NodeSummary{}, p.err
		}
	}
	if d.err != nil {
		return pushID, cluster.NodeSummary{}, d.err
	}
	if !saw {
		return pushID, cluster.NodeSummary{}, fmt.Errorf("%w: push frame without summary section", ErrMalformedFrame)
	}
	return pushID, s, nil
}

// writeWirePush encodes one push frame through a pooled buffer.
func writeWirePush(w io.Writer, pushID uint64, s *cluster.NodeSummary) (int, error) {
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	b, err := appendWirePush((*buf)[:0], pushID, s)
	if err != nil {
		return 0, err
	}
	*buf = b
	return w.Write(b)
}

// anyOrNil collapses a typed nil pointer into an untyped nil so the
// encode loop's nil check works across the region body types.
func anyOrNil[T any](p *T) any {
	if p == nil {
		return nil
	}
	return p
}

// spanSection emits one secSpans section carrying a node-span list for
// the body identified by owner.
func (e *wireEnc) spanSection(owner byte, spans []federation.NodeSpan) {
	m := e.beginSection(secSpans)
	e.u8(owner)
	e.uvarint(uint64(len(spans)))
	for _, s := range spans {
		e.str(s.Name)
		e.varint(s.StartUnixNS)
		e.varint(s.DurationNS)
	}
	e.endSection(m)
}

// finishWireFrame patches the 4-byte big-endian length prefix at hdr
// and enforces the frame cap.
func finishWireFrame(b []byte, hdr int) ([]byte, error) {
	body := len(b) - hdr - 4
	if body > MaxFrameSize {
		return b[:hdr], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(b[hdr:hdr+4], uint32(body))
	return b, nil
}

// ---- decoder ----

// wireDec walks a v2 body with a sticky error: after the first
// malformed read every subsequent accessor is a no-op returning zero,
// so decode call-sites stay linear and a final err check suffices.
// All reads are bounds-checked; counts are validated against the
// bytes remaining before any allocation, so a forged header cannot
// force an over-allocation past the frame cap.
type wireDec struct {
	b   []byte
	off int
	err error
}

func (d *wireDec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrMalformedFrame, what, d.off)
	}
}

func (d *wireDec) remaining() int { return len(d.b) - d.off }

func (d *wireDec) u8() byte {
	if d.err != nil || d.remaining() < 1 {
		d.fail("u8")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *wireDec) u64() uint64 {
	if d.err != nil || d.remaining() < 8 {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *wireDec) u32() uint32 {
	if d.err != nil || d.remaining() < 4 {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *wireDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *wireDec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *wireDec) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a uvarint element count and rejects it unless at least
// elemSize*count bytes remain — the allocation guard.
func (d *wireDec) count(elemSize int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n > uint64(d.remaining()/elemSize) {
		d.fail("count exceeds frame")
		return 0
	}
	return int(n)
}

// rest consumes and returns every remaining byte of the (sub)decoder —
// the JSON payload of a region section.
func (d *wireDec) rest() []byte {
	if d.err != nil {
		return nil
	}
	b := d.b[d.off:]
	d.off = len(d.b)
	return b
}

func (d *wireDec) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	s := internString(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// floats decodes a raw []float64 run, reusing dst's backing array
// when its capacity suffices (the steady-state zero-alloc path).
func (d *wireDec) floats(dst []float64) []float64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]float64, n)
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off+8*i:]))
	}
	d.off += 8 * n
	return dst
}

func (d *wireDec) ints(dst []int) []int {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]int, n)
	}
	for i := range dst {
		dst[i] = int(d.varint())
	}
	if d.err != nil {
		return nil
	}
	return dst
}

func (d *wireDec) rect(dst *geometry.Rect) {
	dst.Min = d.floats(dst.Min)
	dst.Max = d.floats(dst.Max)
}

func (d *wireDec) params(dst *ml.Params) {
	dst.Kind = d.str()
	dst.Dims = d.ints(dst.Dims)
	dst.Values = d.floats(dst.Values)
}

func (d *wireDec) spec(dst *ml.Spec) {
	dst.Kind = d.str()
	dst.InputDim = int(d.varint())
	dst.Hidden = d.ints(dst.Hidden)
	dst.LearningRate = d.f64()
	dst.Epochs = int(d.varint())
	dst.BatchSize = int(d.varint())
	dst.ValidationSplit = d.f64()
	dst.Optimizer = d.str()
	dst.Activation = d.str()
	dst.L2 = d.f64()
	dst.LRDecay = d.f64()
	dst.Patience = int(d.varint())
	dst.Seed = d.uvarint()
}

func (d *wireDec) summary(dst *cluster.NodeSummary) {
	dst.NodeID = d.str()
	dst.TotalSamples = int(d.uvarint())
	dst.Epoch = d.uvarint()
	n := d.count(1)
	if d.err != nil {
		return
	}
	if cap(dst.Clusters) >= n {
		dst.Clusters = dst.Clusters[:n]
	} else {
		dst.Clusters = make([]cluster.Summary, n)
	}
	for i := range dst.Clusters {
		c := &dst.Clusters[i]
		d.rect(&c.Bounds)
		c.Centroid = d.floats(c.Centroid)
		c.Size = int(d.uvarint())
	}
}

// section reads the next section header, returning its tag and
// payload sub-decoder. ok is false at end-of-body or on error.
func (d *wireDec) section() (tag byte, payload wireDec, ok bool) {
	if d.err != nil || d.remaining() == 0 {
		return 0, wireDec{}, false
	}
	tag = d.u8()
	n := int(d.u32())
	if d.err != nil || n > d.remaining() {
		d.fail("section length exceeds frame")
		return 0, wireDec{}, false
	}
	payload = wireDec{b: d.b[d.off : d.off+n]}
	d.off += n
	return tag, payload, true
}

// decodeWireHeader validates the magic/kind preamble and returns the
// request id.
func decodeWireHeader(d *wireDec, wantKind byte) (id uint64) {
	if d.u8() != wireMagic {
		d.fail("bad magic")
		return 0
	}
	if d.u8() != wantKind {
		d.fail("bad frame kind")
		return 0
	}
	return d.u64()
}

// decodeWireRequest parses a v2 request body into req, reusing req's
// nested allocations where capacities allow.
func decodeWireRequest(body []byte, req *request) (id uint64, err error) {
	d := wireDec{b: body}
	id = decodeWireHeader(&d, frameRequest)
	*req = request{Train: req.Train, Eval: req.Eval}
	sawTrain, sawEval := false, false
	for {
		tag, p, ok := d.section()
		if !ok {
			break
		}
		switch tag {
		case secType:
			req.Type = p.str()
		case secTrace:
			req.TraceID = p.str()
			req.SpanID = p.str()
		case secDeadline:
			req.DeadlineUnixMS = p.varint()
		case secKnownEpoch:
			req.KnownSummaryEpoch = p.uvarint()
		case secSummaryPush:
			req.SummaryPush = p.u8() == 1
		case secTrainReq:
			if req.Train == nil {
				req.Train = &federation.TrainRequest{}
			}
			t := req.Train
			*t = federation.TrainRequest{Spec: ml.Spec{Hidden: t.Spec.Hidden},
				Params: ml.Params{Dims: t.Params.Dims, Values: t.Params.Values}, Clusters: t.Clusters}
			p.spec(&t.Spec)
			p.params(&t.Params)
			t.Clusters = p.ints(t.Clusters)
			t.LocalEpochs = int(p.varint())
			sawTrain = true
		case secEvalReq:
			if req.Eval == nil {
				req.Eval = &federation.EvalRequest{}
			}
			ev := req.Eval
			bounds := ev.Bounds
			*ev = federation.EvalRequest{Spec: ml.Spec{Hidden: ev.Spec.Hidden},
				Params: ml.Params{Dims: ev.Params.Dims, Values: ev.Params.Values}}
			p.spec(&ev.Spec)
			p.params(&ev.Params)
			if p.u8() == 1 {
				if bounds == nil {
					bounds = &geometry.Rect{}
				}
				p.rect(bounds)
				ev.Bounds = bounds
			}
			sawEval = true
		case secRegionReq:
			kind := p.u8()
			body := p.rest()
			if p.err != nil {
				return id, p.err
			}
			switch kind {
			case regionBodyPlan:
				req.RegionPlan = &region.PlanRequest{}
				if err := json.Unmarshal(body, req.RegionPlan); err != nil {
					return id, fmt.Errorf("%w: region plan body: %v", ErrMalformedFrame, err)
				}
			case regionBodyTrain:
				req.RegionTrain = &region.TrainRequest{}
				if err := json.Unmarshal(body, req.RegionTrain); err != nil {
					return id, fmt.Errorf("%w: region train body: %v", ErrMalformedFrame, err)
				}
			}
		}
		if p.err != nil {
			return id, p.err
		}
	}
	if !sawTrain {
		req.Train = nil
	}
	if !sawEval {
		req.Eval = nil
	}
	if d.err != nil {
		return id, d.err
	}
	if req.Type == "" {
		// Every request carries a type section; a typeless frame is a
		// truncation or a forgery, not a protocol message.
		return id, fmt.Errorf("%w: request without type section", ErrMalformedFrame)
	}
	// Trace ids ride the envelope only; mirror them into the typed
	// bodies exactly like the JSON codec's struct tags would.
	if req.Train != nil {
		req.Train.TraceID, req.Train.SpanID = req.TraceID, req.SpanID
	}
	if req.Eval != nil {
		req.Eval.TraceID, req.Eval.SpanID = req.TraceID, req.SpanID
	}
	return id, nil
}

// decodeWireResponse parses a v2 response body into resp. resp is
// reset first; nested slices are freshly allocated because responses
// escape to callers (the mux reader never reuses them).
func decodeWireResponse(body []byte) (id uint64, resp response, err error) {
	d := wireDec{b: body}
	id = decodeWireHeader(&d, frameResponse)
	for {
		tag, p, ok := d.section()
		if !ok {
			break
		}
		switch tag {
		case secError:
			resp.Code = p.str()
			resp.Error = p.str()
		case secTrace:
			resp.TraceID = p.str()
			p.str() // span slot, unused on responses
		case secNodeID:
			resp.NodeID = p.str()
		case secEpoch:
			resp.SummaryEpoch = p.uvarint()
		case secSummary:
			resp.Summary = &cluster.NodeSummary{}
			p.summary(resp.Summary)
		case secSummaryUnchanged:
			resp.SummaryUnchanged = p.u8() == 1
		case secSummaryPush:
			resp.SummaryPush = p.u8() == 1
		case secTrainResp:
			t := &federation.TrainResponse{}
			p.params(&t.Params)
			t.SamplesUsed = int(p.uvarint())
			t.TotalSamples = int(p.uvarint())
			t.TrainTime = time.Duration(p.varint())
			t.SummaryEpoch = p.uvarint()
			resp.Train = t
		case secEvalResp:
			ev := &federation.EvalResponse{}
			ev.MSE = p.f64()
			ev.Samples = int(p.uvarint())
			ev.SummaryEpoch = p.uvarint()
			resp.Eval = ev
		case secSpans:
			owner := p.u8()
			// Minimum 3 bytes per span: empty-name length byte plus one
			// varint byte each for start and duration.
			n := p.count(3)
			if p.err != nil {
				return id, response{}, p.err
			}
			spans := make([]federation.NodeSpan, n)
			for i := range spans {
				spans[i].Name = p.str()
				spans[i].StartUnixNS = p.varint()
				spans[i].DurationNS = p.varint()
			}
			// Attach to the owning body; a spans section arriving before
			// its body (a peer bug) is dropped rather than erroring.
			switch owner {
			case spanOwnerTrain:
				if resp.Train != nil {
					resp.Train.Spans = spans
				}
			case spanOwnerEval:
				if resp.Eval != nil {
					resp.Eval.Spans = spans
				}
			}
		case secRegionResp:
			kind := p.u8()
			body := p.rest()
			if p.err != nil {
				return id, response{}, p.err
			}
			var (
				dst any
			)
			switch kind {
			case regionBodyInfo:
				resp.RegionInfo = &region.Info{}
				dst = resp.RegionInfo
			case regionBodyPlan:
				resp.RegionPlan = &region.PlanResponse{}
				dst = resp.RegionPlan
			case regionBodyTrain:
				resp.RegionTrain = &region.TrainResponse{}
				dst = resp.RegionTrain
			case regionBodyStats:
				resp.RegionStats = &region.Stats{}
				dst = resp.RegionStats
			}
			if dst != nil {
				if err := json.Unmarshal(body, dst); err != nil {
					return id, response{}, fmt.Errorf("%w: region body %d: %v", ErrMalformedFrame, kind, err)
				}
			}
		}
		if p.err != nil {
			return id, response{}, p.err
		}
	}
	if d.err != nil {
		return id, response{}, d.err
	}
	return id, resp, nil
}

// ---- pooled frame I/O ----

// framePool recycles encode buffers for v2 frames and read buffers
// for both codecs. Buffers above poolMaxRetain are dropped on release
// so one giant model frame does not pin memory forever.
const poolMaxRetain = 1 << 20

var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

func putFrameBuf(b *[]byte) {
	if cap(*b) > poolMaxRetain {
		return
	}
	*b = (*b)[:0]
	framePool.Put(b)
}

// writeWireRequest encodes req as one v2 frame through a pooled
// buffer and writes it with a single Write call.
func writeWireRequest(w io.Writer, id uint64, req *request) (int, error) {
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	b, err := appendWireRequest((*buf)[:0], id, req)
	if err != nil {
		return 0, err
	}
	*buf = b
	return w.Write(b)
}

// writeWireResponse is writeWireRequest for the server side.
func writeWireResponse(w io.Writer, id uint64, resp *response) (int, error) {
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	b, err := appendWireResponse((*buf)[:0], id, resp)
	if err != nil {
		return 0, err
	}
	*buf = b
	return w.Write(b)
}
