package transport

import (
	"bytes"
	"testing"
	"time"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
	"qens/internal/telemetry"
)

// TestTraceEndToEndOverTCP is the acceptance test for the tracing
// tentpole: a federated query executed against real TCP daemons must
// emit a JSONL trace whose selection, per-node train, and aggregation
// spans all share one trace ID rooted at the query span.
func TestTraceEndToEndOverTCP(t *testing.T) {
	datasets := []*dataset.Dataset{
		lineDataset(300, 2, 1, 0, 30, 40),
		lineDataset(300, 2, 1, 10, 50, 41),
		lineDataset(300, 2, 1, 20, 60, 42),
	}
	names := []string{"edge-a", "edge-b", "edge-c"}
	var clients []federation.Client
	for i, d := range datasets {
		node, err := federation.NewNode(names[i], d, 5, rng.New(uint64(50+i)))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := Serve(node, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(silent)
		t.Cleanup(func() { srv.Close() })
		c, err := Dial(srv.Addr(), DialOptions{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients = append(clients, c)
	}

	var jsonl bytes.Buffer
	tracer := telemetry.NewTracer(&jsonl)

	cfg := federation.Config{Spec: ml.PaperLR(1), ClusterK: 5, LocalEpochs: 10, Seed: 7}
	leader, err := federation.NewLeader(cfg, datasets[0], clients)
	if err != nil {
		t.Fatal(err)
	}
	leader.SetTracer(tracer)

	q, err := query.New("q-trace", geometry.MustRect([]float64{10, -50}, []float64{40, 150}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := leader.Execute(q, selection.AllNodes{}, federation.ModelAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ensemble == nil || res.Ensemble.Size() != len(clients) {
		t.Fatalf("ensemble = %+v", res.Ensemble)
	}

	// The trace must have streamed as JSONL and parse back. Flush
	// first: the tracer sinks through a buffered encoder.
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	spans, err := telemetry.ReadJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatalf("parse JSONL trace: %v", err)
	}
	byName := map[string][]telemetry.Span{}
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	if len(byName["query"]) != 1 {
		t.Fatalf("query spans = %d, want 1 (spans: %+v)", len(byName["query"]), spans)
	}
	root := byName["query"][0]
	if root.TraceID == "" || root.SpanID == "" {
		t.Fatalf("root span missing ids: %+v", root)
	}
	if root.ParentID != "" {
		t.Fatalf("root span has a parent: %+v", root)
	}
	if got := root.Attrs["query"]; got != "q-trace" {
		t.Fatalf("root query attr = %q", got)
	}
	if len(byName["selection"]) != 1 {
		t.Fatalf("selection spans = %d, want 1", len(byName["selection"]))
	}
	if len(byName["aggregation"]) != 1 {
		t.Fatalf("aggregation spans = %d, want 1", len(byName["aggregation"]))
	}
	trains := byName["train"]
	if len(trains) != len(clients) {
		t.Fatalf("train spans = %d, want %d", len(trains), len(clients))
	}
	seenNodes := map[string]bool{}
	for _, sp := range trains {
		seenNodes[sp.Attrs["node"]] = true
	}
	for _, name := range names {
		if !seenNodes[name] {
			t.Fatalf("no train span for node %s (attrs seen: %v)", name, seenNodes)
		}
	}

	// Every span shares the root's trace ID; leader-side spans point
	// back at the root, node-side spans at the train RPC span that
	// solicited them.
	trainIDs := map[string]bool{}
	for _, sp := range trains {
		trainIDs[sp.SpanID] = true
	}
	for _, sp := range spans {
		if sp.TraceID != root.TraceID {
			t.Fatalf("span %s has trace %s, want %s", sp.Name, sp.TraceID, root.TraceID)
		}
		switch {
		case sp.Name == "query":
		case len(sp.Name) > 5 && sp.Name[:5] == "node.":
			if !trainIDs[sp.ParentID] {
				t.Fatalf("node span %s parent = %s, not a train span", sp.Name, sp.ParentID)
			}
		default:
			if sp.ParentID != root.SpanID {
				t.Fatalf("span %s parent = %s, want root %s", sp.Name, sp.ParentID, root.SpanID)
			}
		}
		if sp.DurationMS < 0 {
			t.Fatalf("span %s has negative duration %v", sp.Name, sp.DurationMS)
		}
	}

	// Cross-process assembly: the tree must contain spans from the
	// leader process plus every node engine, all under one trace ID.
	tree, err := telemetry.AssembleTrace(spans, root.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Orphans) != 0 {
		t.Fatalf("assembled trace has %d orphans", len(tree.Orphans))
	}
	if len(tree.Procs) < 2 {
		t.Fatalf("trace spans %d processes, want >= 2 (leader + node engines): %v", len(tree.Procs), tree.Procs)
	}
	procs := map[string]bool{}
	for _, p := range tree.Procs {
		procs[p] = true
	}
	if !procs["leader"] {
		t.Fatalf("no leader-process spans in %v", tree.Procs)
	}
	for _, name := range names {
		if !procs[name] {
			t.Fatalf("no spans from node process %s in %v", name, tree.Procs)
		}
	}
	if tree.Spans != len(spans) {
		t.Fatalf("assembled %d spans, recorded %d", tree.Spans, len(spans))
	}
	if len(byName["node.fit"]) == 0 {
		t.Fatal("assembled trace carries no node.fit span")
	}

	// Critical-path attribution must decompose the root span's wall
	// time: categories sum to the root duration within 5%.
	cp := tree.CriticalPath()
	if cp.TotalMS <= 0 {
		t.Fatalf("critical path total = %v", cp.TotalMS)
	}
	rootMS := tree.Root.DurationMS
	if diff := cp.TotalMS - rootMS; diff < -0.05*rootMS || diff > 0.05*rootMS {
		t.Fatalf("critical path total %.3fms vs root %.3fms (>5%% apart): %+v", cp.TotalMS, rootMS, cp.ByCategory)
	}
	for _, cat := range []string{"plan", "aggregate"} {
		if cp.ByCategory[cat] < 0 {
			t.Fatalf("category %s negative: %+v", cat, cp.ByCategory)
		}
	}

	// The leader-side result must carry per-node timings for every
	// participant that was dispatched over TCP.
	if len(res.NodeRounds) != len(clients) {
		t.Fatalf("NodeRounds = %d, want %d", len(res.NodeRounds), len(clients))
	}
	for _, nr := range res.NodeRounds {
		if nr.Failed() {
			t.Fatalf("unexpected failed round %+v", nr)
		}
		if nr.Elapsed <= 0 {
			t.Fatalf("round for %s has non-positive elapsed %v", nr.NodeID, nr.Elapsed)
		}
	}
}
