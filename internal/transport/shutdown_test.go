package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestServerShutdownIdle drains a server with no executing RPCs: the
// drain must finish promptly, kick parked connections, and refuse new
// dials.
func TestServerShutdownIdle(t *testing.T) {
	srv, client := startServer(t, 1, 2, 0, 10)
	if _, err := client.Ping(); err != nil {
		t.Fatalf("ping before shutdown: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("idle shutdown: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("idle shutdown did not complete")
	}

	if _, err := Dial(srv.Addr(), DialOptions{Timeout: time.Second}); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestServerShutdownWaitsForInFlight pins a ping inside dispatch via
// the server's test gate, then verifies Shutdown waits for it
// (graceful drain) instead of cutting the connection, and that the
// blocked client still receives its response.
func TestServerShutdownWaitsForInFlight(t *testing.T) {
	srv, _ := startServer(t, 2, 1.5, 0, 10)

	// Pin the next dispatch until we release it.
	release := make(chan struct{})
	hold := func() { <-release }
	srv.gate.Store(&hold)

	// Raw connection so we control framing directly.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := writeFrame(conn, request{Type: typePing}); err != nil {
		t.Fatal(err)
	}
	// Wait until the handler has read the frame and is executing
	// (active > 0), i.e. blocked on the gate.
	deadline := time.Now().Add(2 * time.Second)
	for srv.active.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler never started executing the RPC")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()

	// The drain must not finish while the RPC is executing.
	select {
	case err := <-done:
		t.Fatalf("shutdown returned %v while an RPC was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release) // let the RPC finish
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown after drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("shutdown did not complete after RPC finished")
	}

	// The in-flight RPC's response must have been written before the
	// connection was closed.
	var resp response
	if err := readFrame(conn, &resp); err != nil {
		t.Fatalf("in-flight response lost during drain: %v", err)
	}
	if resp.NodeID == "" || resp.Error != "" {
		t.Fatalf("unexpected ping response %+v", resp)
	}
}

// TestServerShutdownDeadline verifies an expiring drain budget falls
// back to a forced close and surfaces the context error.
func TestServerShutdownDeadline(t *testing.T) {
	srv, _ := startServer(t, 3, 1, 0, 10)

	release := make(chan struct{})
	hold := func() { <-release }
	srv.gate.Store(&hold)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := writeFrame(conn, request{Type: typePing}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.active.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler never started executing the RPC")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = srv.Shutdown(ctx)
	close(release)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	srv.wg.Wait() // handlers unwind once the gate is released
}
