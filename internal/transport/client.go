package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"qens/internal/cluster"
	"qens/internal/federation"
)

// Client is a TCP-backed federation.Client: the leader's handle on a
// remote participant daemon. It keeps one persistent connection,
// reconnecting on failure, and serializes requests (the protocol is
// strictly request/response per connection).
type Client struct {
	addr    string
	timeout time.Duration

	mu   sync.Mutex
	conn net.Conn
	id   string

	bytesOut int64
	bytesIn  int64
}

var _ federation.Client = (*Client)(nil)

// DialOptions configures a client.
type DialOptions struct {
	// Timeout bounds dialing and each request round-trip
	// (default 30s; training large nodes dominates it).
	Timeout time.Duration
}

// Dial connects to a participant daemon and learns its node id via a
// ping.
func Dial(addr string, opts DialOptions) (*Client, error) {
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	c := &Client{addr: addr, timeout: opts.Timeout}
	resp, err := c.roundTrip(request{Type: typePing})
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if resp.NodeID == "" {
		return nil, fmt.Errorf("transport: dial %s: daemon returned no node id", addr)
	}
	c.id = resp.NodeID
	return c, nil
}

// ID implements federation.Client.
func (c *Client) ID() string { return c.id }

// Addr returns the daemon address.
func (c *Client) Addr() string { return c.addr }

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// ensureConn dials if no live connection exists. Caller holds c.mu.
func (c *Client) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return err
	}
	c.conn = conn
	return nil
}

// roundTrip sends one request and reads its response, retrying once on
// a stale connection.
func (c *Client) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if err := c.ensureConn(); err != nil {
			lastErr = err
			continue
		}
		deadline := time.Now().Add(c.timeout)
		_ = c.conn.SetDeadline(deadline)
		out := &countingConn{Conn: c.conn}
		if err := writeFrame(out, req); err != nil {
			lastErr = err
			c.conn.Close()
			c.conn = nil
			continue
		}
		var resp response
		if err := readFrame(out, &resp); err != nil {
			lastErr = err
			c.conn.Close()
			c.conn = nil
			continue
		}
		c.bytesOut += out.written
		c.bytesIn += out.read
		if resp.Error != "" {
			if resp.Code == CodeUnknownType {
				return response{}, fmt.Errorf("%w: %s", ErrUnknownType, resp.Error)
			}
			return response{}, errors.New(resp.Error)
		}
		return resp, nil
	}
	return response{}, lastErr
}

// Ping verifies the daemon is reachable and returns its node id.
func (c *Client) Ping() (string, error) {
	resp, err := c.roundTrip(request{Type: typePing})
	if err != nil {
		return "", err
	}
	return resp.NodeID, nil
}

// BytesMoved reports the actual wire bytes this client has sent and
// received — ground truth for the communication accounting the
// experiments otherwise estimate from parameter sizes.
func (c *Client) BytesMoved() (out, in int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesOut, c.bytesIn
}

// Summary implements federation.Client.
func (c *Client) Summary() (cluster.NodeSummary, error) {
	resp, err := c.roundTrip(request{Type: typeSummary})
	if err != nil {
		return cluster.NodeSummary{}, err
	}
	if resp.Summary == nil {
		return cluster.NodeSummary{}, errors.New("transport: daemon returned no summary")
	}
	return *resp.Summary, nil
}

// Train implements federation.Client. The request's trace/span IDs
// (if any) are lifted into the wire envelope so the daemon can
// attribute its logs and timings to the originating query.
func (c *Client) Train(req federation.TrainRequest) (federation.TrainResponse, error) {
	resp, err := c.roundTrip(request{Type: typeTrain, TraceID: req.TraceID, SpanID: req.SpanID, Train: &req})
	if err != nil {
		return federation.TrainResponse{}, err
	}
	if resp.Train == nil {
		return federation.TrainResponse{}, errors.New("transport: daemon returned no train response")
	}
	return *resp.Train, nil
}

// Evaluate implements federation.Client.
func (c *Client) Evaluate(req federation.EvalRequest) (federation.EvalResponse, error) {
	resp, err := c.roundTrip(request{Type: typeEvaluate, TraceID: req.TraceID, SpanID: req.SpanID, Eval: &req})
	if err != nil {
		return federation.EvalResponse{}, err
	}
	if resp.Eval == nil {
		return federation.EvalResponse{}, errors.New("transport: daemon returned no eval response")
	}
	return *resp.Eval, nil
}
