package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"qens/internal/cluster"
	"qens/internal/federation"
)

// Client is a TCP-backed federation.Client: the leader's handle on a
// remote participant daemon. It keeps one persistent connection,
// reconnecting on failure, and serializes requests (the protocol is
// strictly request/response per connection).
//
// Every RPC takes a context.Context: the connection deadline is the
// earlier of the context deadline and the client's configured timeout,
// and an in-flight round-trip is aborted (by slamming the connection
// deadline) the moment the context is canceled — this is how a
// gateway query deadline propagates onto the wire.
type Client struct {
	addr    string
	timeout time.Duration

	mu   sync.Mutex
	conn net.Conn
	id   string

	bytesOut int64
	bytesIn  int64
}

var _ federation.Client = (*Client)(nil)

// DialOptions configures a client.
type DialOptions struct {
	// Timeout bounds dialing and each request round-trip
	// (default 30s; training large nodes dominates it).
	Timeout time.Duration
}

// Dial connects to a participant daemon and learns its node id via a
// ping.
func Dial(addr string, opts DialOptions) (*Client, error) {
	return DialContext(context.Background(), addr, opts)
}

// DialContext is Dial bounded by ctx.
func DialContext(ctx context.Context, addr string, opts DialOptions) (*Client, error) {
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	c := &Client{addr: addr, timeout: opts.Timeout}
	resp, err := c.roundTrip(ctx, request{Type: typePing})
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if resp.NodeID == "" {
		return nil, fmt.Errorf("transport: dial %s: daemon returned no node id", addr)
	}
	c.id = resp.NodeID
	return c, nil
}

// ID implements federation.Client.
func (c *Client) ID() string { return c.id }

// Addr returns the daemon address.
func (c *Client) Addr() string { return c.addr }

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// ensureConn dials if no live connection exists. Caller holds c.mu.
func (c *Client) ensureConn(ctx context.Context) error {
	if c.conn != nil {
		return nil
	}
	d := net.Dialer{Timeout: c.timeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	return nil
}

// deadlineFor merges the client timeout with the context deadline,
// returning whichever comes first.
func (c *Client) deadlineFor(ctx context.Context) time.Time {
	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	return deadline
}

// roundTrip sends one request and reads its response, retrying once on
// a stale connection. The context bounds the whole exchange:
// cancellation mid-flight closes out the blocked read by moving the
// connection deadline into the past.
func (c *Client) roundTrip(ctx context.Context, req request) (response, error) {
	if err := ctx.Err(); err != nil {
		return response{}, err
	}
	// Propagate the caller's deadline into the envelope so the daemon
	// can abandon work — not just the response — once it expires.
	if d, ok := ctx.Deadline(); ok {
		req.DeadlineUnixMS = d.UnixMilli()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return response{}, fmt.Errorf("%w (after %v)", err, lastErr)
			}
			return response{}, err
		}
		if err := c.ensureConn(ctx); err != nil {
			lastErr = err
			continue
		}
		conn := c.conn
		_ = conn.SetDeadline(c.deadlineFor(ctx))
		// Abort the in-flight exchange the moment ctx is canceled:
		// moving the deadline into the past unblocks any Read/Write.
		stop := context.AfterFunc(ctx, func() {
			_ = conn.SetDeadline(time.Unix(1, 0))
		})
		out := &countingConn{Conn: conn}
		if err := writeFrame(out, req); err != nil {
			stop()
			lastErr = wrapCtxErr(ctx, err)
			conn.Close()
			c.conn = nil
			continue
		}
		var resp response
		if err := readFrame(out, &resp); err != nil {
			stop()
			lastErr = wrapCtxErr(ctx, err)
			conn.Close()
			c.conn = nil
			continue
		}
		stop()
		c.bytesOut += out.written
		c.bytesIn += out.read
		if resp.Error != "" {
			if resp.Code == CodeUnknownType {
				return response{}, fmt.Errorf("%w: %s", ErrUnknownType, resp.Error)
			}
			return response{}, errors.New(resp.Error)
		}
		return resp, nil
	}
	return response{}, lastErr
}

// wrapCtxErr attributes an I/O failure to the context when the context
// is what killed the exchange, so callers can match context.Canceled /
// DeadlineExceeded with errors.Is.
func wrapCtxErr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("%w: %v", ctxErr, err)
	}
	return err
}

// Ping verifies the daemon is reachable and returns its node id.
func (c *Client) Ping() (string, error) {
	resp, err := c.roundTrip(context.Background(), request{Type: typePing})
	if err != nil {
		return "", err
	}
	return resp.NodeID, nil
}

// BytesMoved reports the actual wire bytes this client has sent and
// received — ground truth for the communication accounting the
// experiments otherwise estimate from parameter sizes.
func (c *Client) BytesMoved() (out, in int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesOut, c.bytesIn
}

// Summary implements federation.Client.
func (c *Client) Summary(ctx context.Context) (cluster.NodeSummary, error) {
	resp, err := c.roundTrip(ctx, request{Type: typeSummary})
	if err != nil {
		return cluster.NodeSummary{}, err
	}
	if resp.Summary == nil {
		return cluster.NodeSummary{}, errors.New("transport: daemon returned no summary")
	}
	sum := *resp.Summary
	if sum.Epoch == 0 {
		// Older daemons only stamp the envelope; lift it so the
		// leader's registry always sees a versioned advertisement.
		sum.Epoch = resp.SummaryEpoch
	}
	return sum, nil
}

// Train implements federation.Client. The request's trace/span IDs
// (if any) are lifted into the wire envelope so the daemon can
// attribute its logs and timings to the originating query.
func (c *Client) Train(ctx context.Context, req federation.TrainRequest) (federation.TrainResponse, error) {
	resp, err := c.roundTrip(ctx, request{Type: typeTrain, TraceID: req.TraceID, SpanID: req.SpanID, Train: &req})
	if err != nil {
		return federation.TrainResponse{}, err
	}
	if resp.Train == nil {
		return federation.TrainResponse{}, errors.New("transport: daemon returned no train response")
	}
	out := *resp.Train
	if out.SummaryEpoch == 0 {
		out.SummaryEpoch = resp.SummaryEpoch
	}
	return out, nil
}

// Evaluate implements federation.Client.
func (c *Client) Evaluate(ctx context.Context, req federation.EvalRequest) (federation.EvalResponse, error) {
	resp, err := c.roundTrip(ctx, request{Type: typeEvaluate, TraceID: req.TraceID, SpanID: req.SpanID, Eval: &req})
	if err != nil {
		return federation.EvalResponse{}, err
	}
	if resp.Eval == nil {
		return federation.EvalResponse{}, errors.New("transport: daemon returned no eval response")
	}
	out := *resp.Eval
	if out.SummaryEpoch == 0 {
		// Older daemons only stamp the envelope; lift it so
		// evaluations double as drift signals like train responses.
		out.SummaryEpoch = resp.SummaryEpoch
	}
	return out, nil
}
