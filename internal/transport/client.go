package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"qens/internal/cluster"
	"qens/internal/federation"
	"qens/internal/telemetry"
)

// Client is a TCP-backed federation.Client: the leader's handle on a
// remote participant daemon. It keeps one persistent connection,
// reconnecting on failure, and negotiates the wire protocol on the
// ping handshake:
//
//   - v2 (binary codec, default against a v2 daemon): the connection
//     is multiplexed. Every request frame carries a request id, one
//     reader goroutine routes responses to waiting callers through a
//     pending-call map, and writes interleave under a write lock — so
//     N concurrent RPCs to the same node pipeline on one connection
//     instead of queueing head-of-line. The server dispatches
//     concurrently (see Server), so in-flight calls genuinely overlap.
//   - v1 (JSON codec, against a pre-v2 daemon): strictly serialized
//     request/response round-trips, exactly the legacy behaviour.
//
// Every RPC takes a context.Context: the effective deadline is the
// earlier of the context deadline and the client's configured
// timeout. On v2 a canceled call simply abandons its pending slot —
// the tagged response is dropped on arrival and the connection stays
// healthy for the other in-flight calls; the deadline also crosses
// the wire (deadline_unix_ms) so the daemon abandons the work itself.
// On v1 cancellation slams the connection deadline, as before.
type Client struct {
	addr     string
	timeout  time.Duration
	maxProto int

	mu   sync.Mutex // guards conn replacement and dialing
	conn *wireConn
	id   string

	bytesOut atomic.Int64
	bytesIn  atomic.Int64
	inflight atomic.Int64

	inflightGauge *telemetry.Gauge

	// Push subscription state: the handler survives reconnects — every
	// fresh handshake against a push-capable daemon re-arms the
	// server-side subscription (see ensureConnLocked).
	pushMu         sync.Mutex
	pushHandler    func(cluster.NodeSummary)
	pushesReceived atomic.Int64
}

var _ federation.Client = (*Client)(nil)
var _ federation.DeltaSummaryClient = (*Client)(nil)

// DialOptions configures a client.
type DialOptions struct {
	// Timeout bounds dialing and each request round-trip
	// (default 30s; training large nodes dominates it).
	Timeout time.Duration
	// MaxProto caps the wire protocol the client will negotiate:
	// WireProtoV1 forces the legacy JSON codec (and serialized
	// round-trips), 0 defaults to WireProtoV2.
	MaxProto int
}

// Dial connects to a participant daemon and learns its node id via
// the ping handshake (which also negotiates the wire protocol).
func Dial(addr string, opts DialOptions) (*Client, error) {
	return DialContext(context.Background(), addr, opts)
}

// DialContext is Dial bounded by ctx.
func DialContext(ctx context.Context, addr string, opts DialOptions) (*Client, error) {
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.MaxProto == 0 {
		opts.MaxProto = WireProtoV2
	}
	if opts.MaxProto < WireProtoV1 || opts.MaxProto > WireProtoV2 {
		return nil, fmt.Errorf("transport: dial %s: unsupported wire protocol %d", addr, opts.MaxProto)
	}
	c := &Client{
		addr:          addr,
		timeout:       opts.Timeout,
		maxProto:      opts.MaxProto,
		inflightGauge: telemetry.Default().Gauge("qens_wire_inflight_rpcs", telemetry.L("peer", addr)...),
	}
	c.mu.Lock()
	conn, err := c.ensureConnLocked(ctx)
	c.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if conn.nodeID == "" {
		c.Close()
		return nil, fmt.Errorf("transport: dial %s: daemon returned no node id", addr)
	}
	c.id = conn.nodeID
	return c, nil
}

// ID implements federation.Client.
func (c *Client) ID() string { return c.id }

// Addr returns the daemon address.
func (c *Client) Addr() string { return c.addr }

// Proto reports the wire protocol negotiated on the current
// connection (0 when disconnected).
func (c *Client) Proto() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return 0
	}
	return c.conn.proto
}

// InflightRPCs reports how many RPCs this client has on the wire
// right now (pipelined on v2; at most 1 on v1).
func (c *Client) InflightRPCs() int64 { return c.inflight.Load() }

// Close tears down the connection, failing any in-flight calls.
func (c *Client) Close() error {
	c.mu.Lock()
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// ensureConnLocked dials and handshakes if no live connection exists.
// Caller holds c.mu.
func (c *Client) ensureConnLocked(ctx context.Context) (*wireConn, error) {
	if c.conn != nil {
		return c.conn, nil
	}
	d := net.Dialer{Timeout: c.timeout}
	nc, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, err
	}
	conn, err := handshake(ctx, nc, c)
	if err != nil {
		nc.Close()
		return nil, err
	}
	c.conn = conn
	// A registered push handler survives reconnects: re-arm the
	// server-side subscription on the fresh connection. The subscribe
	// round-trip runs on its own goroutine, off c.mu — a slow peer must
	// not block every other client call behind the connection lock for
	// the RPC's duration. Failure is non-fatal: the caller's pull path
	// still works and the next redial retries. Duplicate subscribes are
	// idempotent server-side, so racing SubscribeSummaries is harmless.
	if conn.pushOK && c.hasPushHandler() {
		go func() {
			subCtx, cancel := context.WithTimeout(context.Background(), c.timeout)
			defer cancel()
			if _, err := conn.do(subCtx, c, &request{Type: typeSubscribe}); err != nil {
				c.pushesDroppedNote()
			}
		}()
	}
	return conn, nil
}

// hasPushHandler reports whether SubscribeSummaries registered a
// handler.
func (c *Client) hasPushHandler() bool {
	c.pushMu.Lock()
	defer c.pushMu.Unlock()
	return c.pushHandler != nil
}

// pushesDroppedNote exists so a failed re-subscription is visible in
// byte counters at least; the TTL pull remains the safety net.
func (c *Client) pushesDroppedNote() {}

// dispatchPush routes one unsolicited summary push to the registered
// handler (dropped when none is registered — the server only pushes to
// subscribed connections, but a handler swap can race a frame).
func (c *Client) dispatchPush(s cluster.NodeSummary) {
	c.pushMu.Lock()
	h := c.pushHandler
	c.pushMu.Unlock()
	c.pushesReceived.Add(1)
	if h != nil {
		h(s)
	}
}

// SubscribeSummaries registers handler for server-pushed summary
// deltas and arms the subscription on the daemon. It returns ok=true
// when the peer accepted the subscription; ok=false (with nil error)
// when the peer cannot push — a v1 connection, or a pre-push daemon —
// in which case the caller keeps pulling forever. The handler runs on
// the connection's reader goroutine and must hand off quickly.
func (c *Client) SubscribeSummaries(ctx context.Context, handler func(cluster.NodeSummary)) (bool, error) {
	c.pushMu.Lock()
	c.pushHandler = handler
	c.pushMu.Unlock()
	c.mu.Lock()
	conn, err := c.ensureConnLocked(ctx)
	c.mu.Unlock()
	if err != nil {
		return false, err
	}
	if conn.proto < WireProtoV2 || !conn.pushOK {
		return false, nil
	}
	// ensureConnLocked only arms fresh connections; arm the current one
	// explicitly. Subscribing twice is idempotent server-side.
	resp, err := conn.do(ctx, c, &request{Type: typeSubscribe})
	if err != nil {
		if errors.Is(err, ErrUnknownType) {
			return false, nil
		}
		return false, err
	}
	if resp.Error != "" {
		if resp.Code == CodeUnknownType {
			return false, nil
		}
		return false, errors.New(resp.Error)
	}
	return true, nil
}

// PushesReceived reports how many summary push frames this client has
// dispatched (across all connections in its lifetime).
func (c *Client) PushesReceived() int64 { return c.pushesReceived.Load() }

// dropConn discards conn if it is still the client's current
// connection, so the next call redials.
func (c *Client) dropConn(conn *wireConn) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.mu.Unlock()
}

// deadlineFor merges the client timeout with the context deadline,
// returning whichever comes first.
func (c *Client) deadlineFor(ctx context.Context) time.Time {
	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	return deadline
}

// roundTrip sends one request and reads its response, retrying once
// on a stale connection. The context bounds the whole exchange.
func (c *Client) roundTrip(ctx context.Context, req request) (response, error) {
	if err := ctx.Err(); err != nil {
		return response{}, err
	}
	// Propagate the caller's deadline into the envelope so the daemon
	// can abandon work — not just the response — once it expires.
	if d, ok := ctx.Deadline(); ok {
		req.DeadlineUnixMS = d.UnixMilli()
	}
	c.inflight.Add(1)
	c.inflightGauge.Set(float64(c.inflight.Load()))
	defer func() {
		c.inflightGauge.Set(float64(c.inflight.Add(-1)))
	}()

	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return response{}, fmt.Errorf("%w (after %v)", err, lastErr)
			}
			return response{}, err
		}
		c.mu.Lock()
		conn, err := c.ensureConnLocked(ctx)
		c.mu.Unlock()
		if err != nil {
			lastErr = wrapCtxErr(ctx, err)
			continue
		}
		resp, err := conn.do(ctx, c, &req)
		if err != nil {
			if !isConnError(err) {
				// Server-side application error or caller
				// cancellation: the connection itself is fine.
				return response{}, err
			}
			lastErr = wrapCtxErr(ctx, err)
			c.dropConn(conn)
			continue
		}
		if resp.Error != "" {
			if resp.Code == CodeUnknownType {
				return response{}, fmt.Errorf("%w: %s", ErrUnknownType, resp.Error)
			}
			// If the caller's context has expired, the server-side
			// failure is almost certainly the propagated deadline
			// biting remotely; attribute it so errors.Is matches.
			if ctxErr := ctx.Err(); ctxErr != nil {
				return response{}, fmt.Errorf("%w: %s", ctxErr, resp.Error)
			}
			return response{}, errors.New(resp.Error)
		}
		return resp, nil
	}
	return response{}, lastErr
}

// connError marks transport-level failures that invalidate the
// connection (as opposed to per-call application or context errors).
type connError struct{ err error }

func (e connError) Error() string { return e.err.Error() }
func (e connError) Unwrap() error { return e.err }

func isConnError(err error) bool {
	var ce connError
	return errors.As(err, &ce)
}

// wrapCtxErr attributes an I/O failure to the context when the context
// is what killed the exchange, so callers can match context.Canceled /
// DeadlineExceeded with errors.Is.
func wrapCtxErr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil && !errors.Is(err, ctxErr) {
		return fmt.Errorf("%w: %v", ctxErr, err)
	}
	return err
}

// Ping verifies the daemon is reachable and returns its node id.
func (c *Client) Ping() (string, error) {
	resp, err := c.roundTrip(context.Background(), request{Type: typePing})
	if err != nil {
		return "", err
	}
	return resp.NodeID, nil
}

// BytesMoved reports the actual wire bytes this client has sent and
// received — ground truth for the communication accounting the
// experiments otherwise estimate from parameter sizes.
func (c *Client) BytesMoved() (out, in int64) {
	return c.bytesOut.Load(), c.bytesIn.Load()
}

// Summary implements federation.Client.
func (c *Client) Summary(ctx context.Context) (cluster.NodeSummary, error) {
	resp, err := c.roundTrip(ctx, request{Type: typeSummary})
	if err != nil {
		return cluster.NodeSummary{}, err
	}
	if resp.Summary == nil {
		return cluster.NodeSummary{}, errors.New("transport: daemon returned no summary")
	}
	sum := *resp.Summary
	if sum.Epoch == 0 {
		// Older daemons only stamp the envelope; lift it so the
		// leader's registry always sees a versioned advertisement.
		sum.Epoch = resp.SummaryEpoch
	}
	return sum, nil
}

// SummaryIfChanged implements the registry's delta-refresh probe: it
// advertises the summary epoch the caller already holds and returns
// unchanged=true (zero summary) when the daemon confirms it is still
// current, or the fresh summary otherwise. known == 0 always fetches.
// Daemons predating the epoch-conditional fast path skip the request
// section by length and answer with the full summary — the probe
// degrades to Summary, never to an error.
func (c *Client) SummaryIfChanged(ctx context.Context, known uint64) (cluster.NodeSummary, bool, error) {
	resp, err := c.roundTrip(ctx, request{Type: typeSummary, KnownSummaryEpoch: known})
	if err != nil {
		return cluster.NodeSummary{}, false, err
	}
	if resp.SummaryUnchanged {
		return cluster.NodeSummary{}, true, nil
	}
	if resp.Summary == nil {
		return cluster.NodeSummary{}, false, errors.New("transport: daemon returned no summary")
	}
	sum := *resp.Summary
	if sum.Epoch == 0 {
		sum.Epoch = resp.SummaryEpoch
	}
	return sum, false, nil
}

// Train implements federation.Client. The request's trace/span IDs
// (if any) are lifted into the wire envelope so the daemon can
// attribute its logs and timings to the originating query.
func (c *Client) Train(ctx context.Context, req federation.TrainRequest) (federation.TrainResponse, error) {
	resp, err := c.roundTrip(ctx, request{Type: typeTrain, TraceID: req.TraceID, SpanID: req.SpanID, Train: &req})
	if err != nil {
		return federation.TrainResponse{}, err
	}
	if resp.Train == nil {
		return federation.TrainResponse{}, errors.New("transport: daemon returned no train response")
	}
	out := *resp.Train
	if out.SummaryEpoch == 0 {
		out.SummaryEpoch = resp.SummaryEpoch
	}
	return out, nil
}

// Evaluate implements federation.Client.
func (c *Client) Evaluate(ctx context.Context, req federation.EvalRequest) (federation.EvalResponse, error) {
	resp, err := c.roundTrip(ctx, request{Type: typeEvaluate, TraceID: req.TraceID, SpanID: req.SpanID, Eval: &req})
	if err != nil {
		return federation.EvalResponse{}, err
	}
	if resp.Eval == nil {
		return federation.EvalResponse{}, errors.New("transport: daemon returned no eval response")
	}
	out := *resp.Eval
	if out.SummaryEpoch == 0 {
		// Older daemons only stamp the envelope; lift it so
		// evaluations double as drift signals like train responses.
		out.SummaryEpoch = resp.SummaryEpoch
	}
	return out, nil
}

// ---- connection state ----

// wireConn is one live negotiated connection. On v1 it serializes
// round-trips under callMu; on v2 it multiplexes: callers register in
// pending, write their tagged frame under writeMu, and the readLoop
// goroutine routes tagged responses back.
type wireConn struct {
	nc     net.Conn // raw conn: deadlines and Close
	ncIO   net.Conn // counted wrapper: all reads/writes
	proto  int
	nodeID string

	callMu sync.Mutex // v1: one round-trip at a time

	writeMu sync.Mutex // v2: interleaved frame writes
	nextID  atomic.Uint64
	pendMu  sync.Mutex
	pending map[uint64]chan response

	// pushOK records the handshake's summary-push capability; onPush
	// (armed before the readLoop starts, immutable afterwards) receives
	// unsolicited push frames instead of the pending-call map.
	pushOK bool
	onPush func(cluster.NodeSummary)

	closeOnce sync.Once
	closed    chan struct{}
	closeErr  atomic.Pointer[error]
}

// countedConn adapts a net.Conn so every read/write feeds the
// client's byte counters (atomics: the mux reader and concurrent
// writers race on them by design).
type countedConn struct {
	net.Conn
	out *atomic.Int64
	in  *atomic.Int64
}

func (c *countedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countedConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// handshake performs the version-negotiating ping on a fresh TCP
// connection: a v1 JSON ping advertising the client's maximum
// protocol, answered by a v1 JSON response carrying the server's
// pick. A pre-v2 daemon ignores the unknown field and answers a
// plain ping — the connection stays on v1.
func handshake(ctx context.Context, nc net.Conn, c *Client) (*wireConn, error) {
	counted := &countedConn{Conn: nc, out: &c.bytesOut, in: &c.bytesIn}
	conn := &wireConn{
		nc:     nc,
		ncIO:   counted,
		proto:  WireProtoV1,
		closed: make(chan struct{}),
	}

	hello := request{Type: typePing}
	if c.maxProto >= WireProtoV2 {
		hello.WireProto = c.maxProto
		// Advertise push support; pre-push daemons ignore the unknown
		// JSON field and leave the response's flag unset.
		hello.SummaryPush = true
	}
	_ = nc.SetDeadline(c.deadlineFor(ctx))
	if err := writeFrame(counted, hello); err != nil {
		return nil, err
	}
	var resp response
	if err := readFrame(counted, &resp); err != nil {
		return nil, err
	}
	_ = nc.SetDeadline(time.Time{})
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	conn.nodeID = resp.NodeID
	if resp.WireProto >= WireProtoV2 && c.maxProto >= WireProtoV2 {
		conn.proto = WireProtoV2
		conn.pending = make(map[uint64]chan response)
		conn.pushOK = resp.SummaryPush
		conn.onPush = c.dispatchPush
		go conn.readLoop()
	}
	return conn, nil
}

// Close tears the connection down and fails every pending call.
func (w *wireConn) Close() error {
	w.closeWithErr(errors.New("transport: connection closed"))
	return nil
}

func (w *wireConn) closeWithErr(err error) {
	w.closeOnce.Do(func() {
		w.closeErr.Store(&err)
		close(w.closed)
		w.nc.Close()
		if w.proto == WireProtoV2 {
			w.pendMu.Lock()
			pending := w.pending
			w.pending = nil
			w.pendMu.Unlock()
			for _, ch := range pending {
				close(ch)
			}
		}
	})
}

func (w *wireConn) err() error {
	if p := w.closeErr.Load(); p != nil {
		return *p
	}
	return errors.New("transport: connection closed")
}

// do executes one RPC over the connection using the negotiated codec.
func (w *wireConn) do(ctx context.Context, c *Client, req *request) (response, error) {
	if w.proto >= WireProtoV2 {
		return w.doV2(ctx, c, req)
	}
	return w.doV1(ctx, c, req)
}

// doV1 is the legacy serialized round-trip: one exchange at a time,
// connection deadline as the cancellation lever.
func (w *wireConn) doV1(ctx context.Context, c *Client, req *request) (response, error) {
	w.callMu.Lock()
	defer w.callMu.Unlock()
	select {
	case <-w.closed:
		return response{}, connError{w.err()}
	default:
	}
	_ = w.nc.SetDeadline(c.deadlineFor(ctx))
	// Abort the in-flight exchange the moment ctx is canceled:
	// moving the deadline into the past unblocks any Read/Write.
	stop := context.AfterFunc(ctx, func() {
		_ = w.nc.SetDeadline(time.Unix(1, 0))
	})
	defer stop()
	if err := writeFrame(w.ncIO, *req); err != nil {
		return response{}, connError{err}
	}
	var resp response
	if err := readFrame(w.ncIO, &resp); err != nil {
		return response{}, connError{err}
	}
	return resp, nil
}

// doV2 issues one multiplexed RPC: register a pending slot, write the
// tagged frame, then wait for the reader to deliver the matching
// response. Cancellation and per-call timeouts abandon the slot
// without poisoning the connection — the tagged response is dropped
// whenever it arrives.
func (w *wireConn) doV2(ctx context.Context, c *Client, req *request) (response, error) {
	id := w.nextID.Add(1)
	ch := make(chan response, 1)

	w.pendMu.Lock()
	if w.pending == nil {
		w.pendMu.Unlock()
		return response{}, connError{w.err()}
	}
	w.pending[id] = ch
	w.pendMu.Unlock()

	// Bail before touching the socket if the caller already gave up:
	// skipping the write keeps the shared stream pristine.
	if err := ctx.Err(); err != nil {
		w.forget(id)
		return response{}, err
	}

	// Writes interleave whole frames under the write lock. The write
	// deadline is the client timeout — never the per-call context —
	// because a deadline firing mid-write would leave half a frame on
	// the shared stream and desynchronize every other call on it.
	// Cancellation is instead handled below by abandoning the slot.
	w.writeMu.Lock()
	_ = w.nc.SetWriteDeadline(time.Now().Add(c.timeout))
	_, err := writeWireRequest(w.ncIO, id, req)
	w.writeMu.Unlock()
	if err != nil {
		// A failed write may have emitted a partial frame; the stream
		// is unrecoverable, so tear the connection down immediately
		// rather than letting other in-flight calls hang on it.
		w.forget(id)
		w.closeWithErr(connError{fmt.Errorf("transport: write frame: %w", err)})
		return response{}, connError{err}
	}

	// The timer enforces only the client-level timeout; the context
	// deadline already has its own select arm, so folding it into the
	// timer would just race ctx.Done() and misattribute the error.
	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			return response{}, connError{w.err()}
		}
		return resp, nil
	case <-ctx.Done():
		w.forget(id)
		return response{}, ctx.Err()
	case <-timer.C:
		w.forget(id)
		if err := ctx.Err(); err != nil {
			return response{}, err
		}
		return response{}, fmt.Errorf("transport: rpc %d timed out after %v", id, c.timeout)
	case <-w.closed:
		w.forget(id)
		return response{}, connError{w.err()}
	}
}

// forget abandons a pending call slot (cancellation, timeout, or
// write failure). A response arriving later finds no slot and is
// dropped by the readLoop.
func (w *wireConn) forget(id uint64) {
	w.pendMu.Lock()
	delete(w.pending, id)
	w.pendMu.Unlock()
}

// readLoop is the single reader goroutine of a v2 connection: it
// decodes tagged response frames and routes each to its pending
// caller. Unsolicited push frames (their own frame kind and request-id
// space) are dispatched to the subscriber instead of erroring. Any
// read or decode error tears the connection down, failing all
// in-flight calls.
func (w *wireConn) readLoop() {
	for {
		buf, err := readFrameBody(w.ncIO)
		if err != nil {
			w.closeWithErr(connError{fmt.Errorf("transport: read frame: %w", err)})
			return
		}
		if len(*buf) >= 2 && (*buf)[0] == wireMagic && (*buf)[1] == framePush {
			_, sum, perr := decodeWirePush(*buf)
			putFrameBuf(buf)
			if perr != nil {
				w.closeWithErr(connError{perr})
				return
			}
			if w.onPush != nil {
				w.onPush(sum)
			}
			continue
		}
		id, resp, err := decodeWireResponse(*buf)
		putFrameBuf(buf)
		if err != nil {
			w.closeWithErr(connError{err})
			return
		}
		w.pendMu.Lock()
		ch, ok := w.pending[id]
		if ok {
			delete(w.pending, id)
		}
		w.pendMu.Unlock()
		if ok {
			ch <- resp
		}
	}
}
