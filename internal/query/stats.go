package query

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"qens/internal/cluster"
	"qens/internal/geometry"
)

// Workload statistics and leader-side selectivity estimation. The
// leader never sees raw data, but the cluster summaries let it
// estimate how many samples a query will touch before committing to a
// selection — the estimate assumes samples are uniform within each
// cluster rectangle, the standard R-tree-style selectivity model.

// WorkloadStats summarizes a generated query stream.
type WorkloadStats struct {
	Count int
	// MeanWidthFraction is the average per-dimension width as a
	// fraction of the space width.
	MeanWidthFraction float64
	// MeanVolumeFraction is the average query volume over the space
	// volume.
	MeanVolumeFraction float64
	// CenterSpread is the mean pairwise distance between successive
	// query centers, normalized by the space diagonal — a drift
	// indicator (low = focused workload, high = jumpy).
	CenterSpread float64
}

// AnalyzeWorkload computes statistics of a query stream over its
// space.
func AnalyzeWorkload(queries []Query, space geometry.Rect) (WorkloadStats, error) {
	if len(queries) == 0 {
		return WorkloadStats{}, fmt.Errorf("query: empty workload")
	}
	if err := space.Validate(); err != nil {
		return WorkloadStats{}, err
	}
	dims := space.Dims()
	spaceVol := space.Volume()
	diag := 0.0
	for d := 0; d < dims; d++ {
		diag += space.Width(d) * space.Width(d)
	}
	diag = math.Sqrt(diag)

	var stats WorkloadStats
	stats.Count = len(queries)
	var widthSum, volSum, spreadSum float64
	spreadN := 0
	for i, q := range queries {
		if q.Dims() != dims {
			return WorkloadStats{}, fmt.Errorf("query %s: %d dims, space has %d", q.ID, q.Dims(), dims)
		}
		for d := 0; d < dims; d++ {
			if w := space.Width(d); w > 0 {
				widthSum += q.Bounds.Width(d) / w
			}
		}
		if spaceVol > 0 {
			volSum += q.Bounds.Volume() / spaceVol
		}
		if i > 0 && diag > 0 {
			a, b := queries[i-1].Bounds.Center(), q.Bounds.Center()
			dist := 0.0
			for d := range a {
				dist += (a[d] - b[d]) * (a[d] - b[d])
			}
			spreadSum += math.Sqrt(dist) / diag
			spreadN++
		}
	}
	stats.MeanWidthFraction = widthSum / float64(len(queries)*dims)
	stats.MeanVolumeFraction = volSum / float64(len(queries))
	if spreadN > 0 {
		stats.CenterSpread = spreadSum / float64(spreadN)
	}
	return stats, nil
}

// String renders the statistics.
func (s WorkloadStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload: %d queries, mean width %.1f%% of space, mean volume %.2f%%, center spread %.2f",
		s.Count, 100*s.MeanWidthFraction, 100*s.MeanVolumeFraction, s.CenterSpread)
	return b.String()
}

// SelectivityEstimate is the leader's pre-execution estimate for one
// query.
type SelectivityEstimate struct {
	// Samples is the estimated number of samples inside the query
	// across all advertised nodes.
	Samples float64
	// Fraction is Samples over the federation's total samples.
	Fraction float64
	// PerNode maps node id to its estimated in-query samples.
	PerNode map[string]float64
}

// EstimateSelectivity predicts how many samples fall inside the query
// from cluster summaries alone: each cluster contributes
// size × vol(query ∩ cluster)/vol(cluster), the uniform-density
// assumption. Degenerate clusters contribute their full size when they
// intersect the query.
func EstimateSelectivity(q Query, summaries []cluster.NodeSummary) (SelectivityEstimate, error) {
	est := SelectivityEstimate{PerNode: make(map[string]float64, len(summaries))}
	total := 0
	for _, s := range summaries {
		if err := s.Validate(); err != nil {
			return SelectivityEstimate{}, fmt.Errorf("query: node %s: %w", s.NodeID, err)
		}
		node := 0.0
		for i, c := range s.Clusters {
			if c.Bounds.Dims() != q.Dims() {
				return SelectivityEstimate{}, fmt.Errorf("query: node %s cluster %d dims %d != query %d",
					s.NodeID, i, c.Bounds.Dims(), q.Dims())
			}
			node += float64(c.Size) * geometry.CoveredFraction(q.Bounds, c.Bounds)
		}
		est.PerNode[s.NodeID] = node
		est.Samples += node
		total += s.TotalSamples
	}
	if total > 0 {
		est.Fraction = est.Samples / float64(total)
	}
	return est, nil
}

// TopNodes returns the node ids in descending order of estimated
// in-query samples (ties broken by id).
func (e SelectivityEstimate) TopNodes() []string {
	ids := make([]string, 0, len(e.PerNode))
	for id := range e.PerNode {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := e.PerNode[ids[i]], e.PerNode[ids[j]]
		if a != b {
			return a > b
		}
		return ids[i] < ids[j]
	})
	return ids
}
