package query

import (
	"bytes"
	"reflect"
	"testing"

	"qens/internal/geometry"
)

// FuzzReadWorkload throws arbitrary bytes at the workload parser and
// checks two properties on every accepted input:
//
//  1. the parser's documented invariants actually hold (non-empty,
//     unique non-empty ids, valid bounds, consistent dimensionality);
//  2. an accepted workload round-trips: WriteWorkload(ReadWorkload(x))
//     parses back to an identical query stream.
func FuzzReadWorkload(f *testing.F) {
	// A well-formed two-query workload, produced by the writer itself.
	valid := []Query{
		{ID: "q-0", Bounds: geometry.MustRect([]float64{0, 0}, []float64{1, 2})},
		{ID: "q-1", Bounds: geometry.MustRect([]float64{-3, 0.5}, []float64{-1, 0.5})},
	}
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	// Malformed and boundary-case seeds steering the fuzzer at the
	// validation branches.
	for _, seed := range []string{
		``,
		`{`,
		`not json`,
		`{"version":1,"queries":[]}`,
		`{"version":2,"queries":[{"id":"a","bounds":{"min":[0],"max":[1]}}]}`,
		`{"version":1,"queries":[{"id":"","bounds":{"min":[0],"max":[1]}}]}`,
		`{"version":1,"queries":[{"id":"a","bounds":{"min":[0],"max":[1]}},{"id":"a","bounds":{"min":[0],"max":[1]}}]}`,
		`{"version":1,"queries":[{"id":"a","bounds":{"min":[0],"max":[1]}},{"id":"b","bounds":{"min":[0,0],"max":[1,1]}}]}`,
		`{"version":1,"queries":[{"id":"a","bounds":{"min":[2],"max":[1]}}]}`,
		`{"version":1,"queries":[{"id":"a","bounds":{"min":[0,0],"max":[1]}}]}`,
		`{"version":1,"queries":[{"id":"a","bounds":{"min":[-0],"max":[0]}}]}`,
	} {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		queries, err := ReadWorkload(bytes.NewReader(data))
		if err != nil {
			return // rejected input; nothing more to check
		}

		// Invariant 1: the validation the parser promises.
		if len(queries) == 0 {
			t.Fatalf("accepted workload with no queries: %q", data)
		}
		dims := queries[0].Dims()
		seen := make(map[string]bool, len(queries))
		for i, q := range queries {
			if q.ID == "" {
				t.Fatalf("entry %d accepted with empty id", i)
			}
			if seen[q.ID] {
				t.Fatalf("duplicate id %q accepted", q.ID)
			}
			seen[q.ID] = true
			if err := q.Bounds.Validate(); err != nil {
				t.Fatalf("entry %s accepted with invalid bounds: %v", q.ID, err)
			}
			if q.Dims() != dims {
				t.Fatalf("entry %s has %d dims, workload started with %d", q.ID, q.Dims(), dims)
			}
		}

		// Invariant 2: accepted workloads round-trip losslessly.
		// (JSON cannot carry NaN/Inf, so every accepted float is
		// finite and re-encodes exactly.)
		var out bytes.Buffer
		if err := WriteWorkload(&out, queries); err != nil {
			t.Fatalf("rewrite of accepted workload failed: %v", err)
		}
		back, err := ReadWorkload(&out)
		if err != nil {
			t.Fatalf("reparse of rewritten workload failed: %v", err)
		}
		if !reflect.DeepEqual(back, queries) {
			t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", back, queries)
		}
	})
}
