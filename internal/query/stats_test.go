package query

import (
	"math"
	"strings"
	"testing"

	"qens/internal/cluster"
	"qens/internal/dataset"
	"qens/internal/geometry"
	"qens/internal/rng"
)

func TestAnalyzeWorkload(t *testing.T) {
	space := space2D()
	qs, err := Workload(WorkloadConfig{Space: space, Count: 100,
		MinWidthFraction: 0.2, MaxWidthFraction: 0.4}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := AnalyzeWorkload(qs, space)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Count != 100 {
		t.Fatalf("count %d", stats.Count)
	}
	// Mean width must land inside the configured band (clamping can
	// shrink it slightly below the minimum).
	if stats.MeanWidthFraction < 0.15 || stats.MeanWidthFraction > 0.4 {
		t.Fatalf("mean width fraction %v", stats.MeanWidthFraction)
	}
	if stats.MeanVolumeFraction <= 0 || stats.MeanVolumeFraction > 0.16+0.05 {
		t.Fatalf("mean volume fraction %v", stats.MeanVolumeFraction)
	}
	if stats.CenterSpread <= 0 {
		t.Fatalf("center spread %v", stats.CenterSpread)
	}
	if !strings.Contains(stats.String(), "queries") {
		t.Fatal("rendering broken")
	}
}

func TestAnalyzeWorkloadDriftLowersSpread(t *testing.T) {
	space := space2D()
	jumpy, _ := Workload(WorkloadConfig{Space: space, Count: 200}, rng.New(2))
	focused, _ := Workload(WorkloadConfig{Space: space, Count: 200,
		DriftPeriod: 100, FocusSpread: 0.02}, rng.New(2))
	js, err := AnalyzeWorkload(jumpy, space)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := AnalyzeWorkload(focused, space)
	if err != nil {
		t.Fatal(err)
	}
	if fs.CenterSpread >= js.CenterSpread {
		t.Fatalf("focused workload spread %v not below independent %v", fs.CenterSpread, js.CenterSpread)
	}
}

func TestAnalyzeWorkloadErrors(t *testing.T) {
	if _, err := AnalyzeWorkload(nil, space2D()); err == nil {
		t.Fatal("accepted empty workload")
	}
	q1, _ := New("q", geometry.MustRect([]float64{0}, []float64{1}))
	if _, err := AnalyzeWorkload([]Query{q1}, space2D()); err == nil {
		t.Fatal("accepted dimension mismatch")
	}
}

func TestEstimateSelectivityExact(t *testing.T) {
	// One node, one cluster [0,10]x[0,10] with 100 samples; query
	// covers the left half -> estimate 50.
	sums := []cluster.NodeSummary{{
		NodeID: "n",
		Clusters: []cluster.Summary{{
			Bounds: geometry.MustRect([]float64{0, 0}, []float64{10, 10}),
			Size:   100,
		}},
		TotalSamples: 100,
	}}
	q, _ := New("q", geometry.MustRect([]float64{0, 0}, []float64{5, 10}))
	est, err := EstimateSelectivity(q, sums)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Samples-50) > 1e-9 || math.Abs(est.Fraction-0.5) > 1e-9 {
		t.Fatalf("estimate %+v", est)
	}
	if est.PerNode["n"] != 50 {
		t.Fatalf("per-node estimate %v", est.PerNode)
	}
}

func TestEstimateSelectivityErrors(t *testing.T) {
	q, _ := New("q", geometry.MustRect([]float64{0}, []float64{1}))
	if _, err := EstimateSelectivity(q, []cluster.NodeSummary{{}}); err == nil {
		t.Fatal("accepted invalid summary")
	}
	sums := []cluster.NodeSummary{{
		NodeID: "n",
		Clusters: []cluster.Summary{{
			Bounds: geometry.MustRect([]float64{0, 0}, []float64{1, 1}),
			Size:   10,
		}},
		TotalSamples: 10,
	}}
	if _, err := EstimateSelectivity(q, sums); err == nil {
		t.Fatal("accepted dimension mismatch")
	}
}

// The estimate must approximate the true in-query sample count on real
// clustered data: uniform-density per cluster is only a model, so
// allow a factor-2 band.
func TestEstimateSelectivityApproximatesTruth(t *testing.T) {
	src := rng.New(7)
	d := dataset.MustNew([]string{"x", "y"}, "y")
	for i := 0; i < 1000; i++ {
		x := src.Uniform(0, 100)
		d.MustAppend([]float64{x, 2*x + src.Normal(0, 5)})
	}
	quant, err := cluster.Quantize(d, cluster.Config{K: 5}, src)
	if err != nil {
		t.Fatal(err)
	}
	sums := []cluster.NodeSummary{quant.Summarize("n")}
	q, _ := New("q", geometry.MustRect([]float64{20, -50}, []float64{60, 150}))
	est, err := EstimateSelectivity(q, sums)
	if err != nil {
		t.Fatal(err)
	}
	actual := d.FilterInRect(q.Bounds).Len()
	if actual == 0 {
		t.Fatal("query covers no data; bad test setup")
	}
	ratio := est.Samples / float64(actual)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("estimate %v vs actual %d (ratio %v)", est.Samples, actual, ratio)
	}
}

func TestTopNodes(t *testing.T) {
	est := SelectivityEstimate{PerNode: map[string]float64{"a": 5, "b": 50, "c": 5}}
	top := est.TopNodes()
	if top[0] != "b" || top[1] != "a" || top[2] != "c" {
		t.Fatalf("TopNodes = %v", top)
	}
}
