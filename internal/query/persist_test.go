package query

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"qens/internal/geometry"
	"qens/internal/rng"
)

func TestWorkloadPersistRoundTrip(t *testing.T) {
	qs, err := Workload(WorkloadConfig{Space: space2D(), Count: 25}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, qs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(qs) {
		t.Fatalf("%d queries back", len(back))
	}
	for i := range qs {
		if back[i].ID != qs[i].ID {
			t.Fatalf("id mismatch at %d", i)
		}
		for d := 0; d < qs[i].Dims(); d++ {
			if back[i].Bounds.Min[d] != qs[i].Bounds.Min[d] || back[i].Bounds.Max[d] != qs[i].Bounds.Max[d] {
				t.Fatalf("bounds changed at %d dim %d", i, d)
			}
		}
	}
}

func TestWorkloadPersistErrors(t *testing.T) {
	if err := WriteWorkload(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("wrote empty workload")
	}
	bad := []Query{{ID: "q", Bounds: geometry.Rect{Min: []float64{1}, Max: []float64{0}}}}
	if err := WriteWorkload(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("wrote invalid rect")
	}
	cases := map[string]string{
		"garbage":       "{nope",
		"bad version":   `{"version":99,"queries":[{"id":"a","bounds":{"min":[0],"max":[1]}}]}`,
		"empty queries": `{"version":1,"queries":[]}`,
		"missing id":    `{"version":1,"queries":[{"id":"","bounds":{"min":[0],"max":[1]}}]}`,
		"dup ids":       `{"version":1,"queries":[{"id":"a","bounds":{"min":[0],"max":[1]}},{"id":"a","bounds":{"min":[0],"max":[1]}}]}`,
		"mixed dims":    `{"version":1,"queries":[{"id":"a","bounds":{"min":[0],"max":[1]}},{"id":"b","bounds":{"min":[0,0],"max":[1,1]}}]}`,
		"invalid rect":  `{"version":1,"queries":[{"id":"a","bounds":{"min":[2],"max":[1]}}]}`,
	}
	for name, in := range cases {
		if _, err := ReadWorkload(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestWorkloadSaveLoadFile(t *testing.T) {
	qs, _ := Workload(WorkloadConfig{Space: space2D(), Count: 5}, rng.New(2))
	path := filepath.Join(t.TempDir(), "workload.json")
	if err := SaveWorkload(path, qs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 {
		t.Fatalf("%d queries", len(back))
	}
	if _, err := LoadWorkload(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loaded missing file")
	}
}

func TestReplay(t *testing.T) {
	ids := []string{"a", "b"}
	bounds := []geometry.Rect{
		geometry.MustRect([]float64{0}, []float64{1}),
		geometry.MustRect([]float64{2}, []float64{3}),
	}
	qs, err := Replay(ids, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[1].ID != "b" || qs[1].Bounds.Min[0] != 2 {
		t.Fatalf("replay %+v", qs)
	}
	if _, err := Replay([]string{"a"}, bounds); err == nil {
		t.Fatal("accepted length mismatch")
	}
	if _, err := Replay(nil, nil); err == nil {
		t.Fatal("accepted empty replay")
	}
	if _, err := Replay([]string{""}, bounds[:1]); err == nil {
		t.Fatal("accepted empty id")
	}
}
