package query

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"qens/internal/geometry"
)

// Workload persistence: experiments are reproducible from a seed, but
// a saved workload lets two implementations (or two machines in a live
// federation) execute the *identical* query stream, and lets a
// production trace be replayed against the simulator.

// workloadFile is the on-disk envelope.
type workloadFile struct {
	Version int     `json:"version"`
	Queries []Query `json:"queries"`
}

const workloadVersion = 1

// WriteWorkload serializes queries as JSON to w.
func WriteWorkload(w io.Writer, queries []Query) error {
	if len(queries) == 0 {
		return fmt.Errorf("query: refusing to write an empty workload")
	}
	for i, q := range queries {
		if err := q.Bounds.Validate(); err != nil {
			return fmt.Errorf("query: workload entry %d: %w", i, err)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(workloadFile{Version: workloadVersion, Queries: queries})
}

// ReadWorkload parses a workload written by WriteWorkload, validating
// every query.
func ReadWorkload(r io.Reader) ([]Query, error) {
	var f workloadFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("query: decode workload: %w", err)
	}
	if f.Version != workloadVersion {
		return nil, fmt.Errorf("query: unsupported workload version %d", f.Version)
	}
	if len(f.Queries) == 0 {
		return nil, fmt.Errorf("query: workload has no queries")
	}
	dims := -1
	seen := make(map[string]bool, len(f.Queries))
	for i, q := range f.Queries {
		if q.ID == "" {
			return nil, fmt.Errorf("query: workload entry %d has no id", i)
		}
		if seen[q.ID] {
			return nil, fmt.Errorf("query: duplicate query id %q", q.ID)
		}
		seen[q.ID] = true
		if err := q.Bounds.Validate(); err != nil {
			return nil, fmt.Errorf("query: workload entry %s: %w", q.ID, err)
		}
		if dims == -1 {
			dims = q.Dims()
		} else if q.Dims() != dims {
			return nil, fmt.Errorf("query: entry %s has %d dims, workload has %d", q.ID, q.Dims(), dims)
		}
	}
	return f.Queries, nil
}

// SaveWorkload writes the workload to the named file.
func SaveWorkload(path string, queries []Query) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteWorkload(f, queries); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadWorkload reads a workload from the named file.
func LoadWorkload(path string) ([]Query, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadWorkload(f)
}

// Replay reconstructs a query stream from (id, bounds) pairs — the
// bridge from a federation audit log back to an executable workload:
//
//	records, _ := federation.ReadAuditLog(f)
//	queries, _ := query.Replay(ids, bounds)
func Replay(ids []string, bounds []geometry.Rect) ([]Query, error) {
	if len(ids) != len(bounds) {
		return nil, fmt.Errorf("query: %d ids for %d bounds", len(ids), len(bounds))
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("query: empty replay")
	}
	out := make([]Query, len(ids))
	for i := range ids {
		q, err := New(ids[i], bounds[i])
		if err != nil {
			return nil, fmt.Errorf("query: replay entry %d: %w", i, err)
		}
		out[i] = q
	}
	return out, nil
}
