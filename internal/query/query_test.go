package query

import (
	"testing"

	"qens/internal/geometry"
	"qens/internal/rng"
)

func space2D() geometry.Rect {
	return geometry.MustRect([]float64{0, -50}, []float64{100, 250})
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", space2D()); err == nil {
		t.Fatal("accepted empty id")
	}
	if _, err := New("q", geometry.Rect{Min: []float64{1}, Max: []float64{0}}); err == nil {
		t.Fatal("accepted invalid rect")
	}
	q, err := New("q1", space2D())
	if err != nil {
		t.Fatal(err)
	}
	if q.Dims() != 2 {
		t.Fatalf("dims %d", q.Dims())
	}
}

func TestWorkloadBasics(t *testing.T) {
	qs, err := Workload(WorkloadConfig{Space: space2D(), Count: 200}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 200 {
		t.Fatalf("%d queries", len(qs))
	}
	ids := map[string]bool{}
	space := space2D()
	for _, q := range qs {
		if ids[q.ID] {
			t.Fatalf("duplicate id %s", q.ID)
		}
		ids[q.ID] = true
		if !space.ContainsRect(q.Bounds) {
			t.Fatalf("query %s escapes the space: %v", q.ID, q.Bounds)
		}
		for d := 0; d < q.Dims(); d++ {
			if q.Bounds.Width(d) <= 0 {
				t.Fatalf("query %s has empty width in dim %d", q.ID, d)
			}
		}
	}
}

func TestWorkloadWidthBounds(t *testing.T) {
	cfg := WorkloadConfig{Space: space2D(), Count: 100, MinWidthFraction: 0.2, MaxWidthFraction: 0.3}
	qs, err := Workload(cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	space := space2D()
	for _, q := range qs {
		for d := 0; d < 2; d++ {
			frac := q.Bounds.Width(d) / space.Width(d)
			// Clamping can shrink a query at the boundary but never
			// below 0 nor above the max fraction.
			if frac > 0.3+1e-9 {
				t.Fatalf("width fraction %v above max", frac)
			}
		}
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	cfg := WorkloadConfig{Space: space2D(), Count: 50, DriftPeriod: 10}
	a, _ := Workload(cfg, rng.New(3))
	b, _ := Workload(cfg, rng.New(3))
	for i := range a {
		if a[i].Bounds.Min[0] != b[i].Bounds.Min[0] {
			t.Fatal("workload not deterministic")
		}
	}
	c, _ := Workload(cfg, rng.New(4))
	if c[0].Bounds.Min[0] == a[0].Bounds.Min[0] && c[1].Bounds.Min[0] == a[1].Bounds.Min[0] {
		t.Fatal("different seeds gave identical workloads")
	}
}

func TestWorkloadDrift(t *testing.T) {
	// With drift, queries within a period should be near one another,
	// across periods they should move; just verify generation succeeds
	// and stays in bounds.
	cfg := WorkloadConfig{Space: space2D(), Count: 60, DriftPeriod: 20, FocusSpread: 0.05}
	qs, err := Workload(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	space := space2D()
	for _, q := range qs {
		if !space.ContainsRect(q.Bounds) {
			t.Fatalf("drifted query escapes space")
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	bad := []WorkloadConfig{
		{Space: space2D(), Count: 0},
		{Space: space2D(), Count: 10, MinWidthFraction: 0.9, MaxWidthFraction: 0.5},
		{Space: space2D(), Count: 10, MaxWidthFraction: 1.5},
		{Space: space2D(), Count: 10, DriftPeriod: -1},
		{Space: geometry.Rect{}, Count: 10},
	}
	for i, cfg := range bad {
		if _, err := Workload(cfg, rng.New(1)); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestUniform(t *testing.T) {
	q, err := Uniform(space2D(), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if !space2D().ContainsRect(q.Bounds) {
		t.Fatal("uniform query escapes space")
	}
}

func TestGlobalSpace(t *testing.T) {
	a := geometry.MustRect([]float64{0, 0}, []float64{10, 10})
	b := geometry.MustRect([]float64{-5, 5}, []float64{5, 20})
	space, err := GlobalSpace([]geometry.Rect{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := geometry.MustRect([]float64{-5, 0}, []float64{10, 20})
	if space.Min[0] != want.Min[0] || space.Max[1] != want.Max[1] {
		t.Fatalf("GlobalSpace = %v", space)
	}
	if _, err := GlobalSpace(nil); err == nil {
		t.Fatal("accepted empty bounds")
	}
	if _, err := GlobalSpace([]geometry.Rect{a, geometry.MustRect([]float64{0}, []float64{1})}); err == nil {
		t.Fatal("accepted mismatched dims")
	}
}
