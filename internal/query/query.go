// Package query models analytics queries and generates dynamic query
// workloads. A query (paper §III-C) is a hyper-rectangle over the
// joint data space — the range of data the application requests — plus
// an identifier; the experiment section issues 200 of them "randomly
// created over the whole data space based on the dynamic query
// workload method" of Savva et al. [18], which we reproduce as
// center+width sampling with controllable width distribution and
// drifting focus regions.
package query

import (
	"errors"
	"fmt"

	"qens/internal/geometry"
	"qens/internal/rng"
)

// Query is one analytics task: build a model over the data falling
// inside Bounds.
type Query struct {
	ID     string        `json:"id"`
	Bounds geometry.Rect `json:"bounds"`
}

// New constructs a validated query.
func New(id string, bounds geometry.Rect) (Query, error) {
	if id == "" {
		return Query{}, errors.New("query: empty id")
	}
	if err := bounds.Validate(); err != nil {
		return Query{}, fmt.Errorf("query %s: %w", id, err)
	}
	return Query{ID: id, Bounds: bounds}, nil
}

// Dims returns the dimensionality of the query space.
func (q Query) Dims() int { return q.Bounds.Dims() }

// WorkloadConfig controls the dynamic query workload generator.
type WorkloadConfig struct {
	// Space is the global data space the queries are drawn over
	// (typically the union of all node bounds).
	Space geometry.Rect
	// Count is the number of queries (the paper issues 200).
	Count int
	// MinWidthFraction and MaxWidthFraction bound each query's
	// per-dimension width as a fraction of the space width
	// (defaults 0.1 and 0.5). Narrow queries overlap few clusters,
	// wide queries overlap many — the paper notes both kinds occur.
	MinWidthFraction float64
	MaxWidthFraction float64
	// DriftPeriod, when positive, makes query centers orbit through
	// the space in phases instead of being drawn independently —
	// the "dynamic workload" of [18] where the query focus region
	// shifts over time. Each period the focus moves to a new
	// random region of the space.
	DriftPeriod int
	// FocusSpread is the standard deviation of query centers around
	// the current focus, as a fraction of the space width
	// (default 0.15; only used when DriftPeriod > 0).
	FocusSpread float64
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.MinWidthFraction == 0 {
		c.MinWidthFraction = 0.1
	}
	if c.MaxWidthFraction == 0 {
		c.MaxWidthFraction = 0.5
	}
	if c.FocusSpread == 0 {
		c.FocusSpread = 0.15
	}
	return c
}

// Validate checks the configuration.
func (c WorkloadConfig) Validate() error {
	c = c.withDefaults()
	if err := c.Space.Validate(); err != nil {
		return fmt.Errorf("query: workload space: %w", err)
	}
	if c.Space.Dims() == 0 {
		return errors.New("query: workload space has no dimensions")
	}
	if c.Count < 1 {
		return fmt.Errorf("query: workload count %d < 1", c.Count)
	}
	if c.MinWidthFraction <= 0 || c.MaxWidthFraction > 1 || c.MinWidthFraction > c.MaxWidthFraction {
		return fmt.Errorf("query: width fractions [%v,%v] invalid", c.MinWidthFraction, c.MaxWidthFraction)
	}
	if c.DriftPeriod < 0 {
		return fmt.Errorf("query: negative drift period %d", c.DriftPeriod)
	}
	return nil
}

// Workload generates a deterministic query stream.
func Workload(cfg WorkloadConfig, src *rng.Source) ([]Query, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dims := cfg.Space.Dims()
	queries := make([]Query, 0, cfg.Count)
	focus := cfg.Space.Center()
	for i := 0; i < cfg.Count; i++ {
		if cfg.DriftPeriod > 0 && i%cfg.DriftPeriod == 0 {
			// Move the workload focus to a new region.
			for d := 0; d < dims; d++ {
				focus[d] = src.Uniform(cfg.Space.Min[d], cfg.Space.Max[d])
			}
		}
		min := make([]float64, dims)
		max := make([]float64, dims)
		for d := 0; d < dims; d++ {
			span := cfg.Space.Width(d)
			width := span * src.Uniform(cfg.MinWidthFraction, cfg.MaxWidthFraction)
			var center float64
			if cfg.DriftPeriod > 0 {
				center = src.Normal(focus[d], cfg.FocusSpread*span)
			} else {
				center = src.Uniform(cfg.Space.Min[d], cfg.Space.Max[d])
			}
			min[d] = center - width/2
			max[d] = center + width/2
			// Clamp into the space while preserving the width when
			// possible.
			if min[d] < cfg.Space.Min[d] {
				max[d] += cfg.Space.Min[d] - min[d]
				min[d] = cfg.Space.Min[d]
			}
			if max[d] > cfg.Space.Max[d] {
				min[d] -= max[d] - cfg.Space.Max[d]
				max[d] = cfg.Space.Max[d]
				if min[d] < cfg.Space.Min[d] {
					min[d] = cfg.Space.Min[d]
				}
			}
		}
		rect, err := geometry.NewRect(min, max)
		if err != nil {
			return nil, fmt.Errorf("query: generated invalid rect: %w", err)
		}
		q, err := New(fmt.Sprintf("q-%03d", i), rect)
		if err != nil {
			return nil, err
		}
		queries = append(queries, q)
	}
	return queries, nil
}

// Uniform draws a single query uniformly over space with the default
// width range; a convenience for examples and quick experiments.
func Uniform(space geometry.Rect, src *rng.Source) (Query, error) {
	qs, err := Workload(WorkloadConfig{Space: space, Count: 1}, src)
	if err != nil {
		return Query{}, err
	}
	return qs[0], nil
}

// GlobalSpace computes the union of all node bounding rectangles — the
// "whole data space" the paper draws queries from.
func GlobalSpace(bounds []geometry.Rect) (geometry.Rect, error) {
	if len(bounds) == 0 {
		return geometry.Rect{}, errors.New("query: no bounds")
	}
	space := bounds[0].Clone()
	for _, b := range bounds[1:] {
		if b.Dims() != space.Dims() {
			return geometry.Rect{}, fmt.Errorf("query: bound dims %d != %d", b.Dims(), space.Dims())
		}
		space = space.Union(b)
	}
	return space, nil
}
