package federation

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"qens/internal/ml"
	"qens/internal/selection"
)

func TestAuditLogRoundTrip(t *testing.T) {
	fleet := testFleet(t)
	var buf bytes.Buffer
	log := NewAuditLog(&buf)

	q := midQuery(t)
	sel := selection.QueryDriven{Epsilon: 0.6, TopL: 2}
	for i := 0; i < 3; i++ {
		res, err := fleet.Execute(q, sel, WeightedAveraging)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Record(res); err != nil {
			t.Fatal(err)
		}
	}
	if log.Len() != 3 {
		t.Fatalf("log len %d", log.Len())
	}
	records, err := ReadAuditLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("%d records", len(records))
	}
	r := records[0]
	if r.QueryID != "q-mid" || r.Selector != "query-driven" || r.Aggregation != "weighted" {
		t.Fatalf("record %+v", r)
	}
	if len(r.Participants) == 0 || r.SamplesUsed == 0 || r.TrainTimeMS <= 0 {
		t.Fatalf("record missing stats: %+v", r)
	}
	if r.DataFraction <= 0 || r.DataFraction >= 1 {
		t.Fatalf("data fraction %v", r.DataFraction)
	}
}

func TestAuditLogErrors(t *testing.T) {
	log := NewAuditLog(&bytes.Buffer{})
	if err := log.Record(nil); err == nil {
		t.Fatal("accepted nil result")
	}
	if _, err := ReadAuditLog(strings.NewReader("{broken")); err == nil {
		t.Fatal("accepted broken log")
	}
	// Empty log reads as empty.
	recs, err := ReadAuditLog(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty log: %v, %d records", err, len(recs))
	}
}

func TestPredictWithSpread(t *testing.T) {
	p1 := trainedParams(t, 1, 30)
	p2 := trainedParams(t, 3, 31)
	e, err := NewEnsemble(ml.PaperLR(1), []ml.Params{p1, p2}, []float64{1, 1}, ModelAveraging)
	if err != nil {
		t.Fatal(err)
	}
	pred, spread := e.PredictWithSpread([]float64{10})
	if math.Abs(pred-e.Predict([]float64{10})) > 1e-12 {
		t.Fatalf("spread path changed prediction: %v", pred)
	}
	// Slopes 1 and 3 at x=10: predictions ~10 and ~30, spread ~10.
	if spread < 5 || spread > 15 {
		t.Fatalf("spread %v, want ~10", spread)
	}
	// Agreeing members: near-zero spread.
	same, err := NewEnsemble(ml.PaperLR(1), []ml.Params{p1, p1}, []float64{1, 1}, ModelAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if _, s := same.PredictWithSpread([]float64{10}); s > 1e-9 {
		t.Fatalf("identical members spread %v", s)
	}
	// Single member: zero by definition.
	one, _ := NewEnsemble(ml.PaperLR(1), []ml.Params{p1}, []float64{1}, ModelAveraging)
	if _, s := one.PredictWithSpread([]float64{10}); s != 0 {
		t.Fatalf("single-member spread %v", s)
	}
}
