package federation

import (
	"context"
	"fmt"
	"math"
	"time"

	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/selection"
)

// Multi-round federated training — the classic FedAvg communication
// loop ([6], [15], [16]) layered on top of the paper's per-query
// selection. The paper itself performs a single round per query
// (select, train locally, aggregate predictions); ExecuteRounds is the
// extension where the leader re-distributes the parameter average
// between rounds, letting local models converge toward a single global
// model instead of an ensemble.

// RoundsResult extends Result with per-round convergence history.
type RoundsResult struct {
	Result
	// Rounds is the number of communication rounds executed.
	Rounds int
	// RoundDeltas records the L2 distance between consecutive
	// global parameter vectors; a shrinking sequence indicates
	// convergence.
	RoundDeltas []float64
	// GlobalParams is the final FedAvg parameter vector.
	GlobalParams ml.Params
}

// ExecuteRounds runs `rounds` communication rounds: participants are
// selected once per query (selection is query-scoped, not
// round-scoped), then each round every participant trains from the
// current global parameters over its supporting clusters, and the
// leader replaces the global parameters with the rank-weighted FedAvg.
// The returned ensemble holds the single converged global model.
func (l *Leader) ExecuteRounds(q query.Query, sel selection.Selector, rounds int) (*RoundsResult, error) {
	return l.ExecuteRoundsContext(context.Background(), q, sel, rounds)
}

// ExecuteRoundsContext is ExecuteRounds with deadline/cancellation
// support: the context is checked between rounds and handed to every
// participant client.
func (l *Leader) ExecuteRoundsContext(ctx context.Context, q query.Query, sel selection.Selector, rounds int) (_ *RoundsResult, retErr error) {
	if rounds < 1 {
		return nil, fmt.Errorf("federation: rounds %d < 1", rounds)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	qspan := l.startQuerySpan(q, sel)
	defer func() { qspan.End(retErr) }()
	pl, selectionTime, err := l.planWithSpan(ctx, qspan, q, sel)
	if err != nil {
		return nil, err
	}
	participants := pl.CopyParticipants()
	epoch := pl.Epoch
	samplesAllNodes := 0
	if snap := pl.Snapshot(); snap != nil {
		samplesAllNodes = snap.TotalSamples
	}
	pl.Release()

	spec := l.cfg.Spec
	spec.Seed = uint64(l.src.Int63())
	global, err := spec.New()
	if err != nil {
		return nil, err
	}
	current := global.Params()
	paramBytes := int64(8 * len(current.Values))

	out := &RoundsResult{Rounds: rounds}
	out.Query = q
	out.Epoch = epoch
	out.Selector = sel.Name()
	out.Aggregation = WeightedAveraging
	out.Participants = participants
	out.Stats.SamplesAllNodes = samplesAllNodes

	weights := make([]float64, len(participants))
	for i, p := range participants {
		weights[i] = p.Rank
	}

	for r := 0; r < rounds; r++ {
		locals := make([]ml.Params, len(participants))
		for i, p := range participants {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			c, err := l.client(p.NodeID)
			if err != nil {
				return nil, err
			}
			tspan := startTrainSpan(qspan, p.NodeID, r)
			roundStart := time.Now()
			resp, err := c.Train(ctx, TrainRequest{
				Spec:        l.cfg.Spec,
				Params:      current,
				Clusters:    p.Clusters,
				LocalEpochs: l.cfg.LocalEpochs,
				TraceID:     tspan.TraceID(),
				SpanID:      tspan.SpanID(),
			})
			elapsed := time.Since(roundStart)
			recordNodeSpans(l.activeTracer(), tspan, p.NodeID, resp.Spans)
			tspan.End(err)
			l.metrics.round(p.NodeID, elapsed)
			round := NodeRound{NodeID: p.NodeID, Round: r, Elapsed: elapsed}
			if err != nil {
				round.Err = err.Error()
				l.health.ObserveRound(p.NodeID, elapsed, round.Err)
				out.NodeRounds = append(out.NodeRounds, round)
				return nil, fmt.Errorf("federation: round %d on %s: %w", r, p.NodeID, err)
			}
			l.health.ObserveRound(p.NodeID, elapsed, "")
			out.NodeRounds = append(out.NodeRounds, round)
			if resp.SummaryEpoch > 0 {
				l.reg.SignalNodeEpoch(p.NodeID, resp.SummaryEpoch)
			}
			locals[i] = resp.Params
			out.Stats.TrainTime += resp.TrainTime
			out.Stats.SamplesUsed += resp.SamplesUsed
			if r == 0 {
				out.Stats.SamplesSelectedNodes += resp.TotalSamples
			}
			out.Stats.BytesUp += paramBytes
			out.Stats.BytesDown += int64(8 * len(resp.Params.Values))
		}
		aggSpan := qspan.Child("aggregation")
		next, err := FedAvgParams(locals, weights)
		aggSpan.End(err)
		if err != nil {
			return nil, fmt.Errorf("federation: round %d aggregation: %w", r, err)
		}
		out.RoundDeltas = append(out.RoundDeltas, paramDelta(current, next))
		current = next
		out.LocalParams = locals
	}

	ensemble, err := NewEnsemble(l.cfg.Spec, []ml.Params{current}, []float64{1}, ModelAveraging)
	if err != nil {
		return nil, err
	}
	out.Ensemble = ensemble
	out.GlobalParams = current
	out.Stats.SelectionTime = selectionTime
	out.Stats.WallTime = time.Since(start)
	l.metrics.query(sel.Name(), selectionTime, 0)
	return out, nil
}

// paramDelta returns the L2 distance between two parameter vectors
// (architecture-compatible by construction).
func paramDelta(a, b ml.Params) float64 {
	s := 0.0
	for i := range a.Values {
		d := a.Values[i] - b.Values[i]
		s += d * d
	}
	return sqrt(s)
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// ExecuteParallel is Execute with the training fan-out running
// concurrently across participants — the deployment-realistic mode for
// TCP clients, where each node trains on its own hardware. Results are
// identical to Execute modulo the nodes' own RNG interleaving,
// including the failure contract: a failed round aborts the query
// unless Config.TolerateFailures is set, in which case it is recorded
// in Result.Failed/NodeRounds and the survivors form the ensemble.
func (l *Leader) ExecuteParallel(q query.Query, sel selection.Selector, agg Aggregation) (*Result, error) {
	return l.ExecuteParallelContext(context.Background(), q, sel, agg)
}

// ExecuteParallelContext is ExecuteParallel with deadline/cancellation
// support: the per-query context fans out to every concurrent training
// round, so one expired deadline releases the whole fleet at once.
func (l *Leader) ExecuteParallelContext(ctx context.Context, q query.Query, sel selection.Selector, agg Aggregation) (_ *Result, retErr error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	qspan := l.startQuerySpan(q, sel)
	defer func() { qspan.End(retErr) }()
	pl, selectionTime, err := l.planWithSpan(ctx, qspan, q, sel)
	if err != nil {
		return nil, err
	}
	defer pl.Release()

	res, err := l.exec.run(ctx, qspan, pl, agg, true)
	if err != nil {
		return nil, err
	}
	res.Stats.SelectionTime = selectionTime
	res.Stats.WallTime = time.Since(start)
	l.metrics.query(sel.Name(), selectionTime, len(res.Failed))
	return res, nil
}
