package federation

import (
	"fmt"
	"math"
	"sync"
	"time"

	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/selection"
)

// Multi-round federated training — the classic FedAvg communication
// loop ([6], [15], [16]) layered on top of the paper's per-query
// selection. The paper itself performs a single round per query
// (select, train locally, aggregate predictions); ExecuteRounds is the
// extension where the leader re-distributes the parameter average
// between rounds, letting local models converge toward a single global
// model instead of an ensemble.

// RoundsResult extends Result with per-round convergence history.
type RoundsResult struct {
	Result
	// Rounds is the number of communication rounds executed.
	Rounds int
	// RoundDeltas records the L2 distance between consecutive
	// global parameter vectors; a shrinking sequence indicates
	// convergence.
	RoundDeltas []float64
	// GlobalParams is the final FedAvg parameter vector.
	GlobalParams ml.Params
}

// ExecuteRounds runs `rounds` communication rounds: participants are
// selected once per query (selection is query-scoped, not
// round-scoped), then each round every participant trains from the
// current global parameters over its supporting clusters, and the
// leader replaces the global parameters with the rank-weighted FedAvg.
// The returned ensemble holds the single converged global model.
func (l *Leader) ExecuteRounds(q query.Query, sel selection.Selector, rounds int) (*RoundsResult, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("federation: rounds %d < 1", rounds)
	}
	start := time.Now()
	summaries, err := l.Summaries()
	if err != nil {
		return nil, err
	}
	selStart := time.Now()
	participants, err := sel.Select(q, summaries, l.SelectionContext())
	if err != nil {
		return nil, fmt.Errorf("federation: %s selection for %s: %w", sel.Name(), q.ID, err)
	}
	selectionTime := time.Since(selStart)

	spec := l.cfg.Spec
	spec.Seed = uint64(l.src.Int63())
	global, err := spec.New()
	if err != nil {
		return nil, err
	}
	current := global.Params()
	paramBytes := int64(8 * len(current.Values))

	out := &RoundsResult{Rounds: rounds}
	out.Query = q
	out.Selector = sel.Name()
	out.Aggregation = WeightedAveraging
	out.Participants = participants
	for _, s := range summaries {
		out.Stats.SamplesAllNodes += s.TotalSamples
	}

	weights := make([]float64, len(participants))
	for i, p := range participants {
		weights[i] = p.Rank
	}

	for r := 0; r < rounds; r++ {
		locals := make([]ml.Params, len(participants))
		for i, p := range participants {
			c, err := l.client(p.NodeID)
			if err != nil {
				return nil, err
			}
			resp, err := c.Train(TrainRequest{
				Spec:        l.cfg.Spec,
				Params:      current,
				Clusters:    p.Clusters,
				LocalEpochs: l.cfg.LocalEpochs,
			})
			if err != nil {
				return nil, fmt.Errorf("federation: round %d on %s: %w", r, p.NodeID, err)
			}
			locals[i] = resp.Params
			out.Stats.TrainTime += resp.TrainTime
			out.Stats.SamplesUsed += resp.SamplesUsed
			if r == 0 {
				out.Stats.SamplesSelectedNodes += resp.TotalSamples
			}
			out.Stats.BytesUp += paramBytes
			out.Stats.BytesDown += int64(8 * len(resp.Params.Values))
		}
		next, err := FedAvgParams(locals, weights)
		if err != nil {
			return nil, fmt.Errorf("federation: round %d aggregation: %w", r, err)
		}
		out.RoundDeltas = append(out.RoundDeltas, paramDelta(current, next))
		current = next
		out.LocalParams = locals
	}

	ensemble, err := NewEnsemble(l.cfg.Spec, []ml.Params{current}, []float64{1}, ModelAveraging)
	if err != nil {
		return nil, err
	}
	out.Ensemble = ensemble
	out.GlobalParams = current
	out.Stats.SelectionTime = selectionTime
	out.Stats.WallTime = time.Since(start)
	return out, nil
}

// paramDelta returns the L2 distance between two parameter vectors
// (architecture-compatible by construction).
func paramDelta(a, b ml.Params) float64 {
	s := 0.0
	for i := range a.Values {
		d := a.Values[i] - b.Values[i]
		s += d * d
	}
	return sqrt(s)
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// ExecuteParallel is Execute with the training fan-out running
// concurrently across participants — the deployment-realistic mode for
// TCP clients, where each node trains on its own hardware. Results are
// identical to Execute modulo the nodes' own RNG interleaving.
func (l *Leader) ExecuteParallel(q query.Query, sel selection.Selector, agg Aggregation) (*Result, error) {
	start := time.Now()
	summaries, err := l.Summaries()
	if err != nil {
		return nil, err
	}
	selStart := time.Now()
	participants, err := sel.Select(q, summaries, l.SelectionContext())
	if err != nil {
		return nil, fmt.Errorf("federation: %s selection for %s: %w", sel.Name(), q.ID, err)
	}
	selectionTime := time.Since(selStart)

	spec := l.cfg.Spec
	spec.Seed = uint64(l.src.Int63())
	global, err := spec.New()
	if err != nil {
		return nil, err
	}
	initial := global.Params()
	paramBytes := int64(8 * len(initial.Values))

	res := &Result{
		Query:        q,
		Selector:     sel.Name(),
		Aggregation:  agg,
		Participants: participants,
		LocalParams:  make([]ml.Params, len(participants)),
	}
	for _, s := range summaries {
		res.Stats.SamplesAllNodes += s.TotalSamples
	}

	type trainOut struct {
		idx  int
		resp TrainResponse
		err  error
	}
	var wg sync.WaitGroup
	outs := make([]trainOut, len(participants))
	for i, p := range participants {
		wg.Add(1)
		go func(i int, p selection.Participant) {
			defer wg.Done()
			c, err := l.client(p.NodeID)
			if err != nil {
				outs[i] = trainOut{idx: i, err: err}
				return
			}
			resp, err := c.Train(TrainRequest{
				Spec:        l.cfg.Spec,
				Params:      initial,
				Clusters:    p.Clusters,
				LocalEpochs: l.cfg.LocalEpochs,
			})
			outs[i] = trainOut{idx: i, resp: resp, err: err}
		}(i, p)
	}
	wg.Wait()

	ranks := make([]float64, len(participants))
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("federation: training on %s: %w", participants[i].NodeID, o.err)
		}
		res.LocalParams[i] = o.resp.Params
		ranks[i] = participants[i].Rank
		res.Stats.TrainTime += o.resp.TrainTime
		res.Stats.SamplesUsed += o.resp.SamplesUsed
		res.Stats.SamplesSelectedNodes += o.resp.TotalSamples
		res.Stats.BytesUp += paramBytes
		res.Stats.BytesDown += int64(8 * len(o.resp.Params.Values))
	}

	ensemble, err := NewEnsemble(l.cfg.Spec, res.LocalParams, ranks, agg)
	if err != nil {
		return nil, err
	}
	res.Ensemble = ensemble
	res.Stats.SelectionTime = selectionTime
	res.Stats.WallTime = time.Since(start)
	return res, nil
}
