package federation

import (
	"errors"
	"fmt"
	"math"

	"qens/internal/ml"
)

// Aggregation selects how the leader combines the local models'
// predictions (§IV-B).
type Aggregation int

const (
	// ModelAveraging is Eq. 6: the unweighted mean of the local
	// models' predictions.
	ModelAveraging Aggregation = iota
	// WeightedAveraging is Eq. 7: predictions weighted by each
	// participant's relative ranking λ_i = r_i / Σ r_k.
	WeightedAveraging
)

// String implements fmt.Stringer.
func (a Aggregation) String() string {
	switch a {
	case ModelAveraging:
		return "averaging"
	case WeightedAveraging:
		return "weighted"
	default:
		return fmt.Sprintf("Aggregation(%d)", int(a))
	}
}

// Ensemble is the leader-side global predictor: the ℓ local models
// plus their aggregation weights. It satisfies the prediction part of
// ml.Model usage (Predict / PredictBatch) without being trainable.
type Ensemble struct {
	models  []ml.Model
	weights []float64
}

// NewEnsemble builds an ensemble from local model parameters. ranks
// supplies the per-participant r_i used by WeightedAveraging; for
// ModelAveraging every model gets weight 1/ℓ regardless of rank.
func NewEnsemble(spec ml.Spec, params []ml.Params, ranks []float64, agg Aggregation) (*Ensemble, error) {
	if len(params) == 0 {
		return nil, errors.New("federation: ensemble needs at least one model")
	}
	if len(ranks) != len(params) {
		return nil, fmt.Errorf("federation: %d ranks for %d models", len(ranks), len(params))
	}
	e := &Ensemble{
		models:  make([]ml.Model, len(params)),
		weights: make([]float64, len(params)),
	}
	for i, p := range params {
		m, err := spec.New()
		if err != nil {
			return nil, err
		}
		if err := m.SetParams(p); err != nil {
			return nil, fmt.Errorf("federation: ensemble model %d: %w", i, err)
		}
		e.models[i] = m
	}
	switch agg {
	case ModelAveraging:
		w := 1 / float64(len(params))
		for i := range e.weights {
			e.weights[i] = w
		}
	case WeightedAveraging:
		total := 0.0
		for _, r := range ranks {
			if r < 0 {
				return nil, fmt.Errorf("federation: negative rank %v", r)
			}
			total += r
		}
		if total <= 0 {
			// All-zero ranks degrade to plain averaging.
			w := 1 / float64(len(params))
			for i := range e.weights {
				e.weights[i] = w
			}
			break
		}
		for i, r := range ranks {
			e.weights[i] = r / total
		}
	default:
		return nil, fmt.Errorf("federation: unknown aggregation %d", agg)
	}
	return e, nil
}

// Weights returns the λ_i aggregation weights (a copy).
func (e *Ensemble) Weights() []float64 { return append([]float64(nil), e.weights...) }

// Size returns the number of member models (the paper's ℓ).
func (e *Ensemble) Size() int { return len(e.models) }

// Predict returns the aggregated prediction ŷ(q) for one input.
func (e *Ensemble) Predict(x []float64) float64 {
	out := 0.0
	for i, m := range e.models {
		out += e.weights[i] * m.Predict(x)
	}
	return out
}

// PredictBatch returns aggregated predictions for many inputs.
func (e *Ensemble) PredictBatch(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = e.Predict(row)
	}
	return out
}

// PredictWithSpread returns the aggregated prediction together with
// the weighted standard deviation of the member models' predictions —
// a cheap uncertainty signal: members trained on well-matched data
// agree, members stretched outside their data space diverge. A spread
// of 0 is returned for single-model ensembles.
func (e *Ensemble) PredictWithSpread(x []float64) (prediction, spread float64) {
	if len(e.models) == 1 {
		return e.models[0].Predict(x), 0
	}
	preds := make([]float64, len(e.models))
	for i, m := range e.models {
		preds[i] = m.Predict(x)
		prediction += e.weights[i] * preds[i]
	}
	variance := 0.0
	for i, p := range preds {
		d := p - prediction
		variance += e.weights[i] * d * d
	}
	return prediction, math.Sqrt(variance)
}

// FedAvgParams computes a parameter-space weighted average of local
// models (classic FedAvg), provided as an ablation against the paper's
// prediction-space aggregation. Weights are normalized internally;
// all snapshots must be architecture-compatible.
func FedAvgParams(params []ml.Params, weights []float64) (ml.Params, error) {
	if len(params) == 0 {
		return ml.Params{}, errors.New("federation: fedavg needs at least one model")
	}
	if len(weights) != len(params) {
		return ml.Params{}, fmt.Errorf("federation: %d weights for %d models", len(weights), len(params))
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return ml.Params{}, fmt.Errorf("federation: negative weight %v", w)
		}
		total += w
	}
	if total <= 0 {
		total = float64(len(params))
		weights = make([]float64, len(params))
		for i := range weights {
			weights[i] = 1
		}
	}
	out := params[0].Clone()
	for i := range out.Values {
		out.Values[i] = 0
	}
	for m, p := range params {
		if !p.Compatible(out) {
			return ml.Params{}, fmt.Errorf("federation: model %d incompatible with model 0", m)
		}
		w := weights[m] / total
		for i, v := range p.Values {
			out.Values[i] += w * v
		}
	}
	return out, nil
}
