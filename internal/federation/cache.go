package federation

import (
	"context"
	"fmt"
	"sync"

	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/selection"
	"qens/internal/telemetry"
)

// Query-result reuse, following the knowledge-reuse idea of Long et
// al. (the paper's reference [5]): analytics workloads are bursty and
// self-similar, so a model trained for one query rectangle often
// answers the next. ReuseCache keeps recently built ensembles keyed by
// their query rectangles; a new query whose IoU with a cached
// rectangle reaches MinIoU is served from the cache, skipping
// selection and training entirely.

// ReuseCache is a bounded FIFO cache of query results. It is safe for
// concurrent use. Hit/miss totals are exported to the process-default
// telemetry registry as qens_reuse_cache_hits_total and
// qens_reuse_cache_misses_total, so the gateway's /metrics and
// /v1/stats endpoints surface cache effectiveness live.
type ReuseCache struct {
	mu      sync.Mutex
	minIoU  float64
	cap     int
	entries []*Result
	hits    int
	misses  int

	hitsCtr   *telemetry.Counter
	missesCtr *telemetry.Counter
}

// NewReuseCache builds a cache serving queries whose rectangle IoU
// with a cached query is at least minIoU (in (0, 1]; higher is
// stricter), holding at most capacity results.
func NewReuseCache(minIoU float64, capacity int) (*ReuseCache, error) {
	if minIoU <= 0 || minIoU > 1 {
		return nil, fmt.Errorf("federation: reuse IoU threshold %v outside (0,1]", minIoU)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("federation: reuse capacity %d < 1", capacity)
	}
	reg := telemetry.Default()
	reg.SetHelp("qens_reuse_cache_hits_total", "Queries answered from the reuse cache (IoU match).")
	reg.SetHelp("qens_reuse_cache_misses_total", "Queries that missed the reuse cache.")
	return &ReuseCache{
		minIoU:    minIoU,
		cap:       capacity,
		hitsCtr:   reg.Counter("qens_reuse_cache_hits_total"),
		missesCtr: reg.Counter("qens_reuse_cache_misses_total"),
	}, nil
}

// Lookup returns the best cached result whose query rectangle matches
// q at or above the IoU threshold, regardless of the summary epoch the
// result was built against.
func (c *ReuseCache) Lookup(q query.Query) (*Result, bool) {
	return c.lookup(q, 0)
}

// LookupEpoch is Lookup restricted to results built against summary
// epoch `epoch`. Entries stamped with an older epoch were trained on a
// fleet advertisement that has since been invalidated and are skipped;
// entries with Epoch 0 (built outside the registry pipeline, e.g. by
// legacy callers) match any epoch. epoch 0 disables the check.
func (c *ReuseCache) LookupEpoch(q query.Query, epoch uint64) (*Result, bool) {
	return c.lookup(q, epoch)
}

func (c *ReuseCache) lookup(q query.Query, epoch uint64) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *Result
	bestIoU := 0.0
	for _, r := range c.entries {
		if r.Query.Dims() != q.Dims() {
			continue
		}
		if epoch != 0 && r.Epoch != 0 && r.Epoch != epoch {
			continue
		}
		if iou := geometry.IoU(q.Bounds, r.Query.Bounds); iou >= c.minIoU && iou > bestIoU {
			best, bestIoU = r, iou
		}
	}
	if best == nil {
		c.misses++
		if c.missesCtr != nil {
			c.missesCtr.Inc()
		}
		return nil, false
	}
	c.hits++
	if c.hitsCtr != nil {
		c.hitsCtr.Inc()
	}
	return best, true
}

// Store records a freshly built result, evicting the oldest entry at
// capacity. When the result carries a summary epoch, entries built
// against strictly older epochs are pruned first — their models were
// trained on cluster advertisements that have since been invalidated,
// so they would only ever serve stale ensembles.
func (c *ReuseCache) Store(res *Result) {
	if res == nil || res.Ensemble == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if res.Epoch != 0 {
		kept := c.entries[:0]
		for _, r := range c.entries {
			if r.Epoch != 0 && r.Epoch < res.Epoch {
				continue
			}
			kept = append(kept, r)
		}
		for i := len(kept); i < len(c.entries); i++ {
			c.entries[i] = nil
		}
		c.entries = kept
	}
	if len(c.entries) == c.cap {
		copy(c.entries, c.entries[1:])
		c.entries = c.entries[:len(c.entries)-1]
	}
	c.entries = append(c.entries, res)
}

// Stats reports cache effectiveness.
func (c *ReuseCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the current number of cached results.
func (c *ReuseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// ExecuteWithReuse answers the query from the cache when possible and
// otherwise runs the normal Execute, storing the fresh result. reused
// reports which path was taken.
func (l *Leader) ExecuteWithReuse(cache *ReuseCache, q query.Query, sel selection.Selector, agg Aggregation) (res *Result, reused bool, err error) {
	return l.ExecuteWithReuseContext(context.Background(), cache, q, sel, agg)
}

// ExecuteWithReuseContext is ExecuteWithReuse with deadline and
// cancellation support; cache hits are served even for an expired
// context since they cost nothing. Lookups are fenced by the registry's
// reuse epoch: after InvalidateSummaries (or a node drift signal) the
// epoch advances and results trained against the old advertisement stop
// matching, fixing the stale-ensemble leak of the unversioned cache.
func (l *Leader) ExecuteWithReuseContext(ctx context.Context, cache *ReuseCache, q query.Query, sel selection.Selector, agg Aggregation) (res *Result, reused bool, err error) {
	if cache == nil {
		return nil, false, fmt.Errorf("federation: nil reuse cache")
	}
	if hit, ok := cache.LookupEpoch(q, l.reg.ReuseEpoch()); ok {
		return hit, true, nil
	}
	res, err = l.ExecuteContext(ctx, q, sel, agg)
	if err != nil {
		return nil, false, err
	}
	cache.Store(res)
	return res, false, nil
}
