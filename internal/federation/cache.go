package federation

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/selection"
	"qens/internal/telemetry"
)

// Query-result reuse, following the knowledge-reuse idea of Long et
// al. (the paper's reference [5]): analytics workloads are bursty and
// self-similar, so a model trained for one query rectangle often
// answers the next. ReuseCache keeps recently built ensembles keyed by
// their query rectangles and serves two tiers:
//
//   - exact tier: a new query whose IoU with a cached rectangle
//     reaches MinIoU is served verbatim, skipping selection and
//     training entirely (the original behavior);
//   - approximate tier (opt-in, ApproxConfig): a query that misses
//     the exact tier is still served from a cached ensemble when the
//     predicted answer error clears a bound. The predictor combines
//     training-rectangle coverage (geometry.QueryCoverageFlat over
//     Result.TrainMins/TrainMaxs) with an online per-entry residual
//     learned from probe rounds — every ProbeEvery-th approx-servable
//     query trains for real anyway and scores the cached answer
//     against the fresh one, feeding the residual EWMA and evicting
//     entries whose residual outgrows the bound.
//
// Lookups are lock-free: readers load an immutable cacheView (entry
// slice + R-tree indexes) through an atomic pointer, so the old
// O(capacity) mutex-held IoU scan is gone. Mutations serialize on a
// mutex and publish a rebuilt view.

// ApproxConfig tunes the approximate answering tier. The zero value
// disables it, which keeps the cache's observable behavior bit-exact
// with the original exact-IoU-only implementation.
type ApproxConfig struct {
	// MaxPredictedError is the serve bound: a cached ensemble answers
	// a query only when (1 - coverage) + residual stays at or below
	// it. 0 disables the tier entirely.
	MaxPredictedError float64
	// MinCoverage floors the coverage term: entries whose training
	// rectangles cover less than this fraction of the query rectangle
	// are never considered, whatever their residual. Default 0.5.
	MinCoverage float64
	// ProbeEvery sends every Nth approx-servable query to federated
	// training anyway and scores the cached answer against the fresh
	// one (deterministic modulus, no RNG draw — seeded replays stay
	// bit-exact). Default 8; negative disables probing.
	ProbeEvery int
	// ResidualAlpha is the EWMA step for the per-entry residual
	// estimate updated at each probe. Default 0.25.
	ResidualAlpha float64
}

// Enabled reports whether the approximate tier is on.
func (c ApproxConfig) Enabled() bool { return c.MaxPredictedError > 0 }

func (c ApproxConfig) withDefaults() ApproxConfig {
	if c.MinCoverage == 0 {
		c.MinCoverage = 0.5
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 8
	}
	if c.ResidualAlpha == 0 {
		c.ResidualAlpha = 0.25
	}
	return c
}

func (c ApproxConfig) validate() error {
	if c.MaxPredictedError < 0 {
		return fmt.Errorf("federation: approx max predicted error %v < 0", c.MaxPredictedError)
	}
	if c.MinCoverage < 0 || c.MinCoverage > 1 {
		return fmt.Errorf("federation: approx min coverage %v outside [0,1]", c.MinCoverage)
	}
	if c.ResidualAlpha < 0 || c.ResidualAlpha > 1 {
		return fmt.Errorf("federation: approx residual alpha %v outside [0,1]", c.ResidualAlpha)
	}
	return nil
}

// ServeKind says which path answered a query on the adaptive serving
// pipeline.
type ServeKind int

const (
	// ServeFresh: full federated training (cache miss).
	ServeFresh ServeKind = iota
	// ServeExact: exact-IoU reuse hit.
	ServeExact
	// ServeApprox: approximate model-answer — zero training RPCs.
	ServeApprox
	// ServeProbe: approx-servable, but trained anyway to score the
	// cached answer (the ground-truth feedback round).
	ServeProbe
)

// String implements fmt.Stringer for logs and stats.
func (k ServeKind) String() string {
	switch k {
	case ServeFresh:
		return "fresh"
	case ServeExact:
		return "exact"
	case ServeApprox:
		return "approx"
	case ServeProbe:
		return "probe"
	default:
		return fmt.Sprintf("ServeKind(%d)", int(k))
	}
}

// Reused reports whether the answer cost zero training RPCs.
func (k ServeKind) Reused() bool { return k == ServeExact || k == ServeApprox }

// cacheEntry wraps one cached result with its approx-tier bookkeeping.
// The residual is an EWMA of probe-measured relative divergence
// between the cached and freshly trained ensembles, stored as float64
// bits so probes and lookups never contend on a lock.
type cacheEntry struct {
	res *Result
	// seq is the insertion sequence number: the FIFO order and the
	// deterministic tie-break (older entry wins equal scores, which
	// reproduces the original first-match-wins scan order).
	seq      uint64
	trainBox geometry.Rect // bounding box of the training rectangles
	hasBox   bool

	residualBits atomic.Uint64
	probes       atomic.Int64
	served       atomic.Int64
}

func (e *cacheEntry) residual() float64 {
	return math.Float64frombits(e.residualBits.Load())
}

// observeResidual folds one probe measurement into the EWMA and
// returns the updated value.
func (e *cacheEntry) observeResidual(alpha, realized float64) float64 {
	for {
		old := e.residualBits.Load()
		cur := math.Float64frombits(old)
		var next float64
		if e.probes.Load() == 0 {
			next = realized
		} else {
			next = cur + alpha*(realized-cur)
		}
		if e.residualBits.CompareAndSwap(old, math.Float64bits(next)) {
			e.probes.Add(1)
			return next
		}
	}
}

// cacheView is the immutable read path: a snapshot of the entries plus
// R-tree indexes over their rectangles. dims > 0 means every entry
// shares that dimensionality and the trees are valid; dims == 0 means
// the entries are mixed (or absent) and readers fall back to a linear
// scan — still lock-free.
type cacheView struct {
	entries []*cacheEntry
	dims    int
	// exact indexes entry query rectangles; Entry.ID is the position
	// in entries. Positive IoU needs intersection, so a tree walk
	// visits a superset of every possible exact-tier candidate.
	exact *geometry.RTree
	// approx indexes training-rectangle bounding boxes for entries
	// that carry them; Entry.ID is the position in entries. Coverage
	// > 0 needs the query to intersect the box. Nil when the tier is
	// off or no entry has training bounds.
	approx *geometry.RTree
}

// ReuseCache is a bounded cache of query results, safe for concurrent
// use with lock-free lookups. Hit/miss/eviction totals are exported to
// the process-default telemetry registry (qens_reuse_cache_* and, for
// the approximate tier, qens_model_cache_*), so the gateway's /metrics
// and /v1/stats endpoints surface cache effectiveness live.
type ReuseCache struct {
	minIoU float64
	cap    int
	approx ApproxConfig

	view atomic.Pointer[cacheView]

	mu  sync.Mutex // serializes mutation; never held during lookups
	seq uint64

	probeTick atomic.Uint64

	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64 // capacity + residual-driven removals
	pruned     atomic.Int64 // epoch-invalidation removals
	approxHits atomic.Int64
	probes     atomic.Int64
	fallbacks  atomic.Int64 // approx tier consulted, bound not met

	hitsCtr       *telemetry.Counter
	missesCtr     *telemetry.Counter
	evictCapCtr   *telemetry.Counter
	evictEpochCtr *telemetry.Counter
	evictResCtr   *telemetry.Counter
	entriesGauge  *telemetry.Gauge
	approxCtr     *telemetry.Counter
	probesCtr     *telemetry.Counter
	fallbackCtr   *telemetry.Counter
	errGapHist    *telemetry.Histogram
}

// NewReuseCache builds a cache serving queries whose rectangle IoU
// with a cached query is at least minIoU (in (0, 1]; higher is
// stricter), holding at most capacity results. The approximate tier is
// off; see NewAdaptiveCache.
func NewReuseCache(minIoU float64, capacity int) (*ReuseCache, error) {
	return NewAdaptiveCache(minIoU, capacity, ApproxConfig{})
}

// NewAdaptiveCache is NewReuseCache plus the approximate answering
// tier configured by approx (zero value = disabled, bit-exact with
// NewReuseCache).
func NewAdaptiveCache(minIoU float64, capacity int, approx ApproxConfig) (*ReuseCache, error) {
	if minIoU <= 0 || minIoU > 1 {
		return nil, fmt.Errorf("federation: reuse IoU threshold %v outside (0,1]", minIoU)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("federation: reuse capacity %d < 1", capacity)
	}
	if err := approx.validate(); err != nil {
		return nil, err
	}
	if approx.Enabled() {
		approx = approx.withDefaults()
	}
	reg := telemetry.Default()
	reg.SetHelp("qens_reuse_cache_hits_total", "Queries answered from the reuse cache (IoU match).")
	reg.SetHelp("qens_reuse_cache_misses_total", "Queries that missed the reuse cache.")
	reg.SetHelp("qens_reuse_cache_evictions_total", "Cache entries removed, by reason (capacity, epoch, residual).")
	reg.SetHelp("qens_reuse_cache_entries", "Current reuse cache size (last mutated cache).")
	reg.SetHelp("qens_model_cache_approx_hits_total", "Queries served approximately from cached ensembles (zero training RPCs).")
	reg.SetHelp("qens_model_cache_probes_total", "Approx-servable queries trained anyway to score the cached answer.")
	reg.SetHelp("qens_model_cache_fallbacks_total", "Queries where the approx tier was consulted but the error bound was not met.")
	reg.SetHelp("qens_model_cache_err_gap", "Predicted minus probe-realized answer error (negative = underestimated).")
	return &ReuseCache{
		minIoU:        minIoU,
		cap:           capacity,
		approx:        approx,
		hitsCtr:       reg.Counter("qens_reuse_cache_hits_total"),
		missesCtr:     reg.Counter("qens_reuse_cache_misses_total"),
		evictCapCtr:   reg.Counter("qens_reuse_cache_evictions_total", telemetry.Label{Key: "reason", Value: "capacity"}),
		evictEpochCtr: reg.Counter("qens_reuse_cache_evictions_total", telemetry.Label{Key: "reason", Value: "epoch"}),
		evictResCtr:   reg.Counter("qens_reuse_cache_evictions_total", telemetry.Label{Key: "reason", Value: "residual"}),
		entriesGauge:  reg.Gauge("qens_reuse_cache_entries"),
		approxCtr:     reg.Counter("qens_model_cache_approx_hits_total"),
		probesCtr:     reg.Counter("qens_model_cache_probes_total"),
		fallbackCtr:   reg.Counter("qens_model_cache_fallbacks_total"),
		errGapHist:    reg.Histogram("qens_model_cache_err_gap"),
	}, nil
}

// Approx returns the approximate-tier configuration (zero when off).
func (c *ReuseCache) Approx() ApproxConfig { return c.approx }

// Lookup returns the best cached result whose query rectangle matches
// q at or above the IoU threshold, regardless of the summary epoch the
// result was built against.
func (c *ReuseCache) Lookup(q query.Query) (*Result, bool) {
	return c.lookup(q, 0)
}

// LookupEpoch is Lookup restricted to results built against summary
// epoch `epoch`. Entries stamped with an older epoch were trained on a
// fleet advertisement that has since been invalidated and are skipped;
// entries with Epoch 0 (built outside the registry pipeline, e.g. by
// legacy callers) match any epoch. epoch 0 disables the check.
func (c *ReuseCache) LookupEpoch(q query.Query, epoch uint64) (*Result, bool) {
	return c.lookup(q, epoch)
}

func (c *ReuseCache) lookup(q query.Query, epoch uint64) (*Result, bool) {
	var best *cacheEntry
	bestIoU := 0.0
	consider := func(e *cacheEntry) {
		r := e.res
		if r.Query.Dims() != q.Dims() {
			return
		}
		if epoch != 0 && r.Epoch != 0 && r.Epoch != epoch {
			return
		}
		iou := geometry.IoU(q.Bounds, r.Query.Bounds)
		if iou < c.minIoU {
			return
		}
		// Strictly-better IoU wins; ties go to the older entry, which
		// reproduces the original first-match-wins scan order exactly.
		if best == nil || iou > bestIoU || (iou == bestIoU && e.seq < best.seq) {
			best, bestIoU = e, iou
		}
	}
	if v := c.view.Load(); v != nil {
		c.scan(v, v.exact, q, consider)
	}
	if best == nil {
		c.misses.Add(1)
		if c.missesCtr != nil {
			c.missesCtr.Inc()
		}
		return nil, false
	}
	c.hits.Add(1)
	if c.hitsCtr != nil {
		c.hitsCtr.Inc()
	}
	return best.res, true
}

// scan drives consider over every candidate entry: a sublinear R-tree
// walk when the index applies (uniform dims matching the query), a
// lock-free linear pass otherwise. Indexes only prune — consider
// re-checks every predicate — so both paths pick identical winners.
func (c *ReuseCache) scan(v *cacheView, index *geometry.RTree, q query.Query, consider func(*cacheEntry)) {
	if v.dims > 0 && v.dims != q.Dims() {
		return // uniform-dims view that cannot match this query
	}
	if index != nil && v.dims == q.Dims() {
		if err := index.Search(q.Bounds, func(ent geometry.Entry) bool {
			consider(v.entries[ent.ID])
			return true
		}); err == nil {
			return
		}
	}
	for _, e := range v.entries {
		consider(e)
	}
}

// lookupApprox finds the cached entry with the lowest predicted error
// for q, returning it only when the prediction clears the configured
// bound. It does not touch hit/miss accounting — callers record the
// outcome once they decide between serving and probing.
func (c *ReuseCache) lookupApprox(q query.Query, epoch uint64) (*cacheEntry, float64, bool) {
	if !c.approx.Enabled() {
		return nil, 0, false
	}
	v := c.view.Load()
	if v == nil {
		return nil, 0, false
	}
	var best *cacheEntry
	bestPred := math.Inf(1)
	consider := func(e *cacheEntry) {
		r := e.res
		if !e.hasBox || r.TrainDims != q.Dims() {
			return
		}
		// The query must touch the trained bounding box: coverage is a
		// per-dimension mean, so a rectangle disjoint in one dimension
		// could still score — but extrapolating an ensemble to a
		// subspace it never saw is exactly what the error predictor
		// cannot bound. This also keeps the linear fallback identical
		// to the R-tree walk (which only visits intersecting boxes).
		if !e.trainBox.Intersects(q.Bounds) {
			return
		}
		if epoch != 0 && r.Epoch != 0 && r.Epoch != epoch {
			return
		}
		cov := geometry.QueryCoverageFlat(q.Bounds.Min, q.Bounds.Max, r.TrainMins, r.TrainMaxs)
		if cov < c.approx.MinCoverage {
			return
		}
		pred := (1 - cov) + e.residual()
		if best == nil || pred < bestPred || (pred == bestPred && e.seq < best.seq) {
			best, bestPred = e, pred
		}
	}
	c.scan(v, v.approx, q, consider)
	if best == nil || bestPred > c.approx.MaxPredictedError {
		return nil, 0, false
	}
	return best, bestPred, true
}

// Answer serves q from the cache without any fleet interaction: exact
// tier first, then the approximate tier. The gateway uses it to answer
// queries whose selection found no live candidates — a cached ensemble
// may still cover a rectangle no current advertisement supports.
func (c *ReuseCache) Answer(q query.Query, epoch uint64) (*Result, ServeKind, bool) {
	if hit, ok := c.lookup(q, epoch); ok {
		return hit, ServeExact, true
	}
	if ent, _, ok := c.lookupApprox(q, epoch); ok {
		c.recordApproxHit(ent)
		return ent.res, ServeApprox, true
	}
	return nil, ServeFresh, false
}

// Store records a freshly built result, evicting at capacity. When the
// result carries a summary epoch, entries built against strictly older
// epochs are pruned first — their models were trained on cluster
// advertisements that have since been invalidated, so they would only
// ever serve stale ensembles. Eviction is FIFO when the approximate
// tier is off (the original contract); with the tier on, the entry
// with the worst probe-measured residual goes first (oldest wins
// residual ties, degrading to FIFO for unprobed entries).
func (c *ReuseCache) Store(res *Result) {
	if res == nil || res.Ensemble == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	entries := c.entriesLocked()
	if res.Epoch != 0 {
		kept := entries[:0]
		for _, e := range entries {
			if e.res.Epoch != 0 && e.res.Epoch < res.Epoch {
				c.pruned.Add(1)
				if c.evictEpochCtr != nil {
					c.evictEpochCtr.Inc()
				}
				continue
			}
			kept = append(kept, e)
		}
		entries = kept
	}
	if len(entries) >= c.cap {
		victim := 0
		if c.approx.Enabled() {
			for i, e := range entries[1:] {
				if e.residual() > entries[victim].residual() {
					victim = i + 1
				}
			}
		}
		entries = append(entries[:victim], entries[victim+1:]...)
		c.evictions.Add(1)
		if c.evictCapCtr != nil {
			c.evictCapCtr.Inc()
		}
	}
	ent := &cacheEntry{res: res, seq: c.seq}
	c.seq++
	if res.TrainDims > 0 && len(res.TrainMins) >= res.TrainDims {
		ent.trainBox = trainBoundingBox(res)
		ent.hasBox = true
	}
	entries = append(entries, ent)
	c.publishLocked(entries)
}

// evict removes one entry (residual outgrew the bound). No-op if the
// entry is already gone.
func (c *ReuseCache) evict(target *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	entries := c.entriesLocked()
	for i, e := range entries {
		if e == target {
			entries = append(entries[:i], entries[i+1:]...)
			c.evictions.Add(1)
			if c.evictResCtr != nil {
				c.evictResCtr.Inc()
			}
			c.publishLocked(entries)
			return
		}
	}
}

// entriesLocked returns a mutable copy of the published entry list.
// Views are immutable, so mutation always works on a fresh slice.
func (c *ReuseCache) entriesLocked() []*cacheEntry {
	v := c.view.Load()
	if v == nil {
		return nil
	}
	return append(make([]*cacheEntry, 0, len(v.entries)+1), v.entries...)
}

// publishLocked rebuilds the R-tree indexes over the new entry list
// and publishes the view. Called with c.mu held.
func (c *ReuseCache) publishLocked(entries []*cacheEntry) {
	v := &cacheView{entries: entries}
	if len(entries) > 0 {
		dims := entries[0].res.Query.Dims()
		for _, e := range entries[1:] {
			if e.res.Query.Dims() != dims {
				dims = 0
				break
			}
		}
		v.dims = dims
		if dims > 0 {
			exact := make([]geometry.Entry, len(entries))
			for i, e := range entries {
				exact[i] = geometry.Entry{Rect: e.res.Query.Bounds, ID: i}
			}
			if t, err := geometry.BuildRTree(exact, 0); err == nil {
				v.exact = t
			}
			if c.approx.Enabled() {
				boxes := make([]geometry.Entry, 0, len(entries))
				for i, e := range entries {
					if e.hasBox && e.res.TrainDims == dims {
						boxes = append(boxes, geometry.Entry{Rect: e.trainBox, ID: i})
					}
				}
				if len(boxes) == len(entries) {
					if t, err := geometry.BuildRTree(boxes, 0); err == nil {
						v.approx = t
					}
				}
				// Entries without training bounds keep the approx
				// path on the linear scan so they stay reachable by
				// neither tier silently dropping them.
			}
		}
	}
	c.view.Store(v)
	if c.entriesGauge != nil {
		c.entriesGauge.Set(float64(len(entries)))
	}
}

// trainBoundingBox folds the flat training rectangles into one box.
func trainBoundingBox(res *Result) geometry.Rect {
	d := res.TrainDims
	min := append([]float64(nil), res.TrainMins[:d]...)
	max := append([]float64(nil), res.TrainMaxs[:d]...)
	for k := d; k+d <= len(res.TrainMins); k += d {
		for j := 0; j < d; j++ {
			if res.TrainMins[k+j] < min[j] {
				min[j] = res.TrainMins[k+j]
			}
			if res.TrainMaxs[k+j] > max[j] {
				max[j] = res.TrainMaxs[k+j]
			}
		}
	}
	return geometry.MustRect(min, max)
}

// probeDue deterministically marks every ProbeEvery-th approx-servable
// query as a ground-truth probe. No RNG involved: seeded replays see
// identical probe schedules.
func (c *ReuseCache) probeDue() bool {
	if c.approx.ProbeEvery <= 0 {
		return false
	}
	return c.probeTick.Add(1)%uint64(c.approx.ProbeEvery) == 0
}

// recordApproxHit books one approximate serve.
func (c *ReuseCache) recordApproxHit(e *cacheEntry) {
	e.served.Add(1)
	c.approxHits.Add(1)
	if c.approxCtr != nil {
		c.approxCtr.Inc()
	}
}

// recordProbe folds one probe outcome into the entry's residual and
// the predicted-vs-realized histogram; entries whose residual alone
// breaches the serve bound are evicted — feedback-driven removal.
func (c *ReuseCache) recordProbe(e *cacheEntry, predicted, realized float64) {
	c.probes.Add(1)
	if c.probesCtr != nil {
		c.probesCtr.Inc()
	}
	if c.errGapHist != nil {
		c.errGapHist.Observe(predicted - realized)
	}
	if e.observeResidual(c.approx.ResidualAlpha, realized) > c.approx.MaxPredictedError {
		c.evict(e)
	}
}

// recordFallback books one approx-tier miss (bound not met).
func (c *ReuseCache) recordFallback() {
	c.fallbacks.Add(1)
	if c.fallbackCtr != nil {
		c.fallbackCtr.Inc()
	}
}

// Stats reports exact-tier cache effectiveness (legacy two-value
// form; see CacheStats for the full picture).
func (c *ReuseCache) Stats() (hits, misses int) {
	return int(c.hits.Load()), int(c.misses.Load())
}

// Len returns the current number of cached results.
func (c *ReuseCache) Len() int {
	if v := c.view.Load(); v != nil {
		return len(v.entries)
	}
	return 0
}

// ReuseCacheStats is the full cache scorecard surfaced by /v1/stats.
type ReuseCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Pruned    int64 `json:"pruned"`
	Size      int   `json:"size"`

	ApproxEnabled     bool    `json:"approx_enabled"`
	MaxPredictedError float64 `json:"max_predicted_error,omitempty"`
	ApproxHits        int64   `json:"approx_hits"`
	Probes            int64   `json:"probes"`
	Fallbacks         int64   `json:"fallbacks"`
}

// CacheStats snapshots every counter the cache maintains.
func (c *ReuseCache) CacheStats() ReuseCacheStats {
	return ReuseCacheStats{
		Hits:              c.hits.Load(),
		Misses:            c.misses.Load(),
		Evictions:         c.evictions.Load(),
		Pruned:            c.pruned.Load(),
		Size:              c.Len(),
		ApproxEnabled:     c.approx.Enabled(),
		MaxPredictedError: c.approx.MaxPredictedError,
		ApproxHits:        c.approxHits.Load(),
		Probes:            c.probes.Load(),
		Fallbacks:         c.fallbacks.Load(),
	}
}

// ExecuteWithReuse answers the query from the cache when possible and
// otherwise runs the normal Execute, storing the fresh result. reused
// reports which path was taken.
func (l *Leader) ExecuteWithReuse(cache *ReuseCache, q query.Query, sel selection.Selector, agg Aggregation) (res *Result, reused bool, err error) {
	return l.ExecuteWithReuseContext(context.Background(), cache, q, sel, agg)
}

// ExecuteWithReuseContext is ExecuteWithReuse with deadline and
// cancellation support; cache hits are served even for an expired
// context since they cost nothing. Lookups are fenced by the registry's
// reuse epoch: after InvalidateSummaries (or a node drift signal) the
// epoch advances and results trained against the old advertisement stop
// matching, fixing the stale-ensemble leak of the unversioned cache.
func (l *Leader) ExecuteWithReuseContext(ctx context.Context, cache *ReuseCache, q query.Query, sel selection.Selector, agg Aggregation) (res *Result, reused bool, err error) {
	r, kind, err := l.ExecuteAdaptiveContext(ctx, cache, q, sel, agg)
	if err != nil {
		return nil, false, err
	}
	return r, kind.Reused(), nil
}

// ExecuteAdaptiveContext is the full adaptive serving pipeline: exact
// reuse, then (when configured) the approximate model-answer tier with
// its deterministic probe schedule, then federated training. With the
// approximate tier disabled it is step-for-step identical to the
// original reuse path — same lookups, same RNG draws, same stores — so
// seeded replays stay bit-exact.
func (l *Leader) ExecuteAdaptiveContext(ctx context.Context, cache *ReuseCache, q query.Query, sel selection.Selector, agg Aggregation) (*Result, ServeKind, error) {
	if cache == nil {
		return nil, ServeFresh, fmt.Errorf("federation: nil reuse cache")
	}
	epoch := l.reg.ReuseEpoch()
	if hit, ok := cache.LookupEpoch(q, epoch); ok {
		return hit, ServeExact, nil
	}
	if cache.approx.Enabled() {
		if ent, pred, ok := cache.lookupApprox(q, epoch); ok {
			if cache.probeDue() {
				res, err := l.ExecuteContext(ctx, q, sel, agg)
				if err == nil {
					realized := ensembleDivergence(ent.res.Ensemble, res.Ensemble, q, l.cfg.Spec.InputDim)
					cache.recordProbe(ent, pred, realized)
					cache.Store(res)
					return res, ServeProbe, nil
				}
				// Training failed; the cached answer still clears the
				// bound, so serve it rather than surfacing the error.
			}
			cache.recordApproxHit(ent)
			return ent.res, ServeApprox, nil
		}
		cache.recordFallback()
	}
	res, err := l.ExecuteContext(ctx, q, sel, agg)
	if err != nil {
		return nil, ServeFresh, err
	}
	cache.Store(res)
	return res, ServeFresh, nil
}

// ensembleDivergence scores how differently two ensembles answer the
// query: the RMS gap between their predictions over a deterministic
// low-discrepancy sample of the query rectangle's feature subspace,
// normalized by the fresh ensemble's RMS magnitude. The feature
// subspace is the first inputDim dimensions of the rectangle — the
// dataset convention puts the target column last (see dataset.XY).
func ensembleDivergence(cached, fresh *Ensemble, q query.Query, inputDim int) float64 {
	if cached == nil || fresh == nil {
		return 1
	}
	d := q.Dims()
	fd := inputDim
	if fd <= 0 || fd > d {
		fd = d
	}
	const samples = 9
	var sumSq, refSq float64
	x := make([]float64, fd)
	for i := 0; i < samples; i++ {
		for j := 0; j < fd; j++ {
			// Kronecker sequence on irrational strides: deterministic,
			// well-spread, no RNG state touched.
			t := math.Mod(0.5+float64(i)*kroneckerAlpha(j), 1)
			x[j] = q.Bounds.Min[j] + t*(q.Bounds.Max[j]-q.Bounds.Min[j])
		}
		a := cached.Predict(x)
		b := fresh.Predict(x)
		sumSq += (a - b) * (a - b)
		refSq += b * b
	}
	div := math.Sqrt(sumSq/samples) / (math.Sqrt(refSq/samples) + 1e-9)
	if div > 1 {
		div = 1
	}
	return div
}

// kroneckerAlpha returns the per-dimension irrational stride for the
// probe sample sequence (square roots of successive primes).
func kroneckerAlpha(j int) float64 {
	primes := [...]float64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}
	return math.Sqrt(primes[j%len(primes)])
}
