package federation

import (
	"math"
	"testing"

	"qens/internal/dataset"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// testFleet builds a small heterogeneous fleet: three nodes on the
// same line over different x ranges plus one adversarial node with a
// flipped slope in a far-away range.
func testFleet(t *testing.T) *Fleet {
	t.Helper()
	data := []*dataset.Dataset{
		lineDataset(400, 2, 1, 0, 30, 10),
		lineDataset(400, 2, 1, 20, 60, 11),
		lineDataset(400, 2, 1, 50, 90, 12),
		lineDataset(400, -2, 500, 200, 300, 13), // flipped, shifted
	}
	cfg := Config{Spec: ml.PaperLR(1), ClusterK: 5, LocalEpochs: 15, Seed: 1}
	fleet, err := NewSimulatedFleet(data, cfg, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return fleet
}

func midQuery(t *testing.T) query.Query {
	t.Helper()
	// A query over x in [10, 40]: supported by nodes 0-1, partially 2,
	// never 3.
	q, err := query.New("q-mid", geometry.MustRect([]float64{10, -50}, []float64{40, 150}))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewLeaderValidation(t *testing.T) {
	cfg := Config{Spec: ml.PaperLR(1)}
	if _, err := NewLeader(cfg, nil, nil); err == nil {
		t.Fatal("accepted no clients")
	}
	d := lineDataset(60, 1, 0, 0, 10, 1)
	n1, _ := NewNode("same", d, 3, rng.New(1))
	n2, _ := NewNode("same", d, 3, rng.New(2))
	if _, err := NewLeader(cfg, nil, []Client{LocalClient{n1}, LocalClient{n2}}); err == nil {
		t.Fatal("accepted duplicate ids")
	}
	bad := Config{Spec: ml.Spec{Kind: "nope", InputDim: 1}}
	if _, err := NewLeader(bad, nil, []Client{LocalClient{n1}}); err == nil {
		t.Fatal("accepted bad spec")
	}
}

func TestLeaderSummariesCached(t *testing.T) {
	fleet := testFleet(t)
	s1, err := fleet.Leader.Summaries()
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != 4 {
		t.Fatalf("%d summaries", len(s1))
	}
	s2, _ := fleet.Leader.Summaries()
	if &s1[0] != &s2[0] {
		t.Fatal("summaries not cached")
	}
	fleet.Leader.InvalidateSummaries()
	s3, _ := fleet.Leader.Summaries()
	if len(s3) != 4 {
		t.Fatal("invalidate broke summaries")
	}
}

func TestExecuteQueryDriven(t *testing.T) {
	fleet := testFleet(t)
	sel := selection.QueryDriven{Epsilon: 0.6, TopL: 2}
	res, err := fleet.Execute(midQuery(t), sel, WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selector != "query-driven" || res.Aggregation != WeightedAveraging {
		t.Fatalf("labels %s/%v", res.Selector, res.Aggregation)
	}
	if len(res.Participants) == 0 || len(res.Participants) > 2 {
		t.Fatalf("%d participants", len(res.Participants))
	}
	for _, p := range res.Participants {
		if p.NodeID == "node-3" {
			t.Fatal("selected the adversarial node")
		}
	}
	if res.Ensemble == nil || res.Ensemble.Size() != len(res.Participants) {
		t.Fatal("ensemble missing or wrong size")
	}
	// Data selectivity: query-driven must use fewer samples than the
	// selected nodes hold.
	if res.Stats.SamplesUsed >= res.Stats.SamplesSelectedNodes {
		t.Fatalf("selectivity failed: used %d of %d", res.Stats.SamplesUsed, res.Stats.SamplesSelectedNodes)
	}
	if res.Stats.SamplesAllNodes != 4*320 { // 400*0.8 train split each
		t.Fatalf("all-node total %d", res.Stats.SamplesAllNodes)
	}
	if res.Stats.TrainTime <= 0 || res.Stats.WallTime <= 0 {
		t.Fatal("timings not recorded")
	}
	if res.Stats.BytesUp <= 0 || res.Stats.BytesDown <= 0 {
		t.Fatal("byte accounting missing")
	}
	// The ensemble must predict the line y = 2x+1 inside the query.
	got := res.Ensemble.Predict([]float64{25})
	if math.Abs(got-51) > 8 {
		t.Fatalf("ensemble predicts %v at x=25, want ~51", got)
	}
	// Evaluate on held-out data restricted to the query.
	mse, samples, ok := EvaluateResult(res, fleet.Test)
	if !ok || samples == 0 {
		t.Fatal("no test samples in query")
	}
	if mse > 30 {
		t.Fatalf("query-driven test MSE %v", mse)
	}
}

func TestExecuteRandomVsQueryDrivenLoss(t *testing.T) {
	fleet := testFleet(t)
	q := midQuery(t)
	qd, err := fleet.Execute(q, selection.QueryDriven{Epsilon: 0.6, TopL: 2}, WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}
	qdMSE, _, _ := EvaluateResult(qd, fleet.Test)

	// Average the random baseline over several draws: with the
	// adversarial node in the pool it must do worse on average.
	var rndTotal float64
	const rounds = 5
	for i := 0; i < rounds; i++ {
		rnd, err := fleet.Execute(q, selection.Random{L: 2}, ModelAveraging)
		if err != nil {
			t.Fatal(err)
		}
		mse, _, ok := EvaluateResult(rnd, fleet.Test)
		if !ok {
			t.Fatal("no test data")
		}
		rndTotal += mse
	}
	rndMSE := rndTotal / rounds
	if qdMSE >= rndMSE {
		t.Fatalf("query-driven MSE %v not better than random %v", qdMSE, rndMSE)
	}
}

func TestExecuteGameTheory(t *testing.T) {
	fleet := testFleet(t)
	res, err := fleet.Execute(midQuery(t), selection.GameTheory{L: 2}, ModelAveraging)
	if err != nil {
		t.Fatal(err)
	}
	// GT selects worst-loss nodes: the adversarial node-3 has data
	// most unlike the leader's, so it must be selected.
	found := false
	for _, p := range res.Participants {
		if p.NodeID == "node-3" {
			found = true
		}
	}
	if !found {
		t.Fatal("GT did not select the most-different node")
	}
}

func TestLeaderPreTest(t *testing.T) {
	fleet := testFleet(t)
	res, err := fleet.Leader.PreTest(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regime != selection.RegimeHeterogeneous {
		t.Fatalf("regime %v for a fleet with a flipped node", res.Regime)
	}
	if len(res.Losses) != 4 {
		t.Fatalf("%d losses", len(res.Losses))
	}
	// node-3 must have the highest loss under the leader's model.
	worst := ""
	worstLoss := -1.0
	for id, l := range res.Losses {
		if l > worstLoss {
			worst, worstLoss = id, l
		}
	}
	if worst != "node-3" {
		t.Fatalf("worst node %s, want node-3", worst)
	}
}

func TestLeaderPreTestHomogeneous(t *testing.T) {
	data := []*dataset.Dataset{
		lineDataset(300, 2, 1, 0, 50, 20),
		lineDataset(300, 2, 1, 0, 50, 21),
		lineDataset(300, 2, 1, 0, 50, 22),
	}
	cfg := Config{Spec: ml.PaperLR(1), Seed: 2}
	fleet, err := NewSimulatedFleet(data, cfg, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fleet.Leader.PreTest(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regime != selection.RegimeHomogeneous {
		t.Fatalf("regime %v (dispersion %v) for identical nodes", res.Regime, res.Dispersion)
	}
}

func TestExecuteNoCandidates(t *testing.T) {
	fleet := testFleet(t)
	far, _ := query.New("q-far", geometry.MustRect([]float64{1e6, 1e6}, []float64{2e6, 2e6}))
	if _, err := fleet.Execute(far, selection.QueryDriven{Epsilon: 0.1, TopL: 2}, ModelAveraging); err == nil {
		t.Fatal("expected no-candidates failure")
	}
}

func TestFleetValidation(t *testing.T) {
	cfg := Config{Spec: ml.PaperLR(1)}
	if _, err := NewSimulatedFleet(nil, cfg, FleetOptions{}); err == nil {
		t.Fatal("accepted no datasets")
	}
	d1 := lineDataset(50, 1, 0, 0, 10, 30)
	bad := dataset.MustNew([]string{"a", "b"}, "b")
	bad.MustAppend([]float64{1, 2})
	if _, err := NewSimulatedFleet([]*dataset.Dataset{d1, bad}, cfg, FleetOptions{}); err == nil {
		t.Fatal("accepted mixed schemas")
	}
	if _, err := NewSimulatedFleet([]*dataset.Dataset{d1}, cfg, FleetOptions{TestFraction: 1}); err == nil {
		t.Fatal("accepted test fraction 1")
	}
	if _, err := NewSimulatedFleet([]*dataset.Dataset{d1}, cfg, FleetOptions{LeaderDataIndex: 5}); err == nil {
		t.Fatal("accepted bad leader index")
	}
}

func TestFleetSpace(t *testing.T) {
	fleet := testFleet(t)
	space, err := fleet.Space()
	if err != nil {
		t.Fatal(err)
	}
	if space.Dims() != 2 {
		t.Fatalf("space dims %d", space.Dims())
	}
	// Must span all node ranges, including the far node.
	if space.Min[0] > 0.5 || space.Max[0] < 299 {
		t.Fatalf("space x-range [%v,%v]", space.Min[0], space.Max[0])
	}
}

func TestStatsDataFraction(t *testing.T) {
	s := Stats{SamplesUsed: 25, SamplesAllNodes: 100}
	if s.DataFraction() != 0.25 {
		t.Fatalf("fraction %v", s.DataFraction())
	}
	if (Stats{}).DataFraction() != 0 {
		t.Fatal("empty stats fraction should be 0")
	}
}
