package federation_test

import (
	"fmt"
	"log"

	"qens/internal/dataset"
	"qens/internal/federation"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// Example demonstrates the complete per-query pipeline on a simulated
// fleet: generate heterogeneous node data, select participants with
// the query-driven mechanism, train over supporting clusters, and
// aggregate predictions with ranking weights.
func Example() {
	data, err := dataset.PaperNodeDatasets(dataset.Config{
		Nodes: 6, SamplesPerNode: 600, Seed: 42, Heterogeneity: 0.8, FlipFraction: 0.2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := federation.NewSimulatedFleet(data, federation.Config{
		Spec: ml.PaperLR(1), ClusterK: 5, LocalEpochs: 5, Seed: 7,
	}, federation.FleetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	space, err := fleet.Space()
	if err != nil {
		log.Fatal(err)
	}
	q, err := query.Uniform(space, rng.New(3))
	if err != nil {
		log.Fatal(err)
	}
	res, err := fleet.Execute(q,
		selection.QueryDriven{Epsilon: 0.6, TopL: 2},
		federation.WeightedAveraging)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d participants, used %.0f%% of federation data\n",
		len(res.Participants), 100*res.Stats.DataFraction())
	// Output: selected 2 participants, used 9% of federation data
}

// ExampleLeader_ExecuteRounds shows multi-round FedAvg training: the
// leader re-distributes the parameter average between rounds and the
// per-round deltas trace convergence.
func ExampleLeader_ExecuteRounds() {
	data, _ := dataset.PaperNodeDatasets(dataset.Config{
		Nodes: 4, SamplesPerNode: 400, Seed: 5,
	})
	fleet, err := federation.NewSimulatedFleet(data, federation.Config{
		Spec: ml.PaperLR(1), ClusterK: 5, LocalEpochs: 3, Seed: 2,
	}, federation.FleetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	space, _ := fleet.Space()
	q, _ := query.Uniform(space, rng.New(9))
	res, err := fleet.Leader.ExecuteRounds(q, selection.QueryDriven{Epsilon: 0.6, TopL: 2}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rounds=%d, single global model: %v\n", res.Rounds, res.Ensemble.Size() == 1)
	// Output: rounds=3, single global model: true
}
