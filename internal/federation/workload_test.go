package federation

import (
	"testing"

	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

func TestRunWorkload(t *testing.T) {
	fleet := testFleet(t)
	space, err := fleet.Space()
	if err != nil {
		t.Fatal(err)
	}
	queries, err := query.Workload(query.WorkloadConfig{Space: space, Count: 10}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	sel := selection.QueryDriven{Epsilon: 0.6, TopL: 2}
	report, err := RunWorkload(fleet.Leader, queries, sel, WeightedAveraging, fleet.Test)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Outcomes) != 10 {
		t.Fatalf("%d outcomes", len(report.Outcomes))
	}
	if report.Executed == 0 || report.Scored == 0 {
		t.Fatalf("executed %d scored %d", report.Executed, report.Scored)
	}
	if report.MeanMSE <= 0 || report.MeanDataFraction <= 0 || report.MeanDataFraction >= 1 {
		t.Fatalf("aggregates %v/%v", report.MeanMSE, report.MeanDataFraction)
	}
	if report.TotalTrainTime <= 0 {
		t.Fatal("no train time recorded")
	}
	// Failures + successes must partition the workload.
	if len(report.FailedQueries())+report.Executed != 10 {
		t.Fatalf("failed %d + executed %d != 10", len(report.FailedQueries()), report.Executed)
	}
}

func TestRunWorkloadWithoutTest(t *testing.T) {
	fleet := testFleet(t)
	space, _ := fleet.Space()
	queries, _ := query.Workload(query.WorkloadConfig{Space: space, Count: 5}, rng.New(9))
	report, err := RunWorkload(fleet.Leader, queries, selection.Random{L: 2}, ModelAveraging, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Scored != 0 || report.MeanMSE != 0 {
		t.Fatalf("scoring happened without test data: %+v", report)
	}
	if report.Executed != 5 {
		t.Fatalf("executed %d", report.Executed)
	}
}

func TestRunWorkloadErrors(t *testing.T) {
	fleet := testFleet(t)
	if _, err := RunWorkload(nil, nil, selection.AllNodes{}, ModelAveraging, nil); err == nil {
		t.Fatal("accepted nil leader")
	}
	if _, err := RunWorkload(fleet.Leader, nil, selection.AllNodes{}, ModelAveraging, nil); err == nil {
		t.Fatal("accepted empty workload")
	}
	// A workload where every query fails must error.
	q, _ := query.New("far", midQuery(t).Bounds)
	q.Bounds.Min[0], q.Bounds.Max[0] = 1e9, 2e9
	q.Bounds.Min[1], q.Bounds.Max[1] = 1e9, 2e9
	sel := selection.QueryDriven{Epsilon: 0.6, TopL: 2}
	if _, err := RunWorkload(fleet.Leader, []query.Query{q}, sel, ModelAveraging, nil); err == nil {
		t.Fatal("accepted all-failed workload")
	}
}
