// Streaming ingestion: the node-side half of the ingest-driven summary
// freshness pipeline. A node with ingestion enabled buffers newly
// collected rows and, at every batch boundary, folds them into its
// quantization incrementally (cluster.StreamQuantizer: Sculley-style
// mini-batch centroid updates + one assignment pass) instead of a full
// Lloyd re-run. The advertisement epoch is bumped only when the
// resulting summary moved materially (cluster.SummaryDrift), so a
// trickle of stationary samples refreshes local state without
// stampeding the leader. A per-cluster reconstruction-error /
// assignment-rate EWMA drift detector watches every batch and
// autonomously escalates to a full re-quantization when the streamed
// codebook stops describing the data — the operator SIGHUP is now just
// a forced walk through the same path.
package federation

import (
	"fmt"
	"sync"

	"qens/internal/cluster"
	"qens/internal/dataset"
	"qens/internal/engine"
)

// IngestConfig parameterizes a node's streaming ingestion path.
type IngestConfig struct {
	// BatchSize bounds the ingest buffer: Ingest flushes a mini-batch
	// into the quantization whenever this many rows have accumulated.
	// Default 64.
	BatchSize int
	// MaterialDrift is the cluster.SummaryDrift threshold at or above
	// which an incremental batch bumps the advertisement epoch; smaller
	// movement publishes the fresh snapshot under the current epoch.
	// Default 0.01.
	MaterialDrift float64
	// EscalateError escalates to a full re-quantization when the EWMA
	// of per-batch reconstruction error (normalized by the per-point
	// inertia of the last full quantization) reaches this ratio.
	// Default 4.
	EscalateError float64
	// EscalateAssign escalates when the EWMA of the assignment-rate
	// shift — half the L1 distance between each batch's cluster
	// assignment distribution and the last full quantization's cluster
	// share distribution, in [0,1] — reaches this level. Default 0.5.
	EscalateAssign float64
	// Alpha is the EWMA smoothing factor for both detector signals.
	// Default 0.3.
	Alpha float64
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.MaterialDrift <= 0 {
		c.MaterialDrift = 0.01
	}
	if c.EscalateError <= 0 {
		c.EscalateError = 4
	}
	if c.EscalateAssign <= 0 {
		c.EscalateAssign = 0.5
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	return c
}

// IngestStats is a point-in-time report of a node's ingestion state,
// surfaced in qensd's /healthz.
type IngestStats struct {
	// Buffered is the number of rows waiting for the next mini-batch.
	Buffered int `json:"buffered"`
	// Batches counts mini-batches absorbed incrementally.
	Batches int64 `json:"batches"`
	// IncrementalRequants counts snapshot publications built by the
	// incremental (assignment-pass-only) path.
	IncrementalRequants int64 `json:"incremental_requants"`
	// FullRequants counts full Lloyd re-runs through the ingest path
	// (autonomous escalations plus forced Requantize calls).
	FullRequants int64 `json:"full_requants"`
	// Escalations counts the subset of FullRequants the drift detector
	// triggered autonomously.
	Escalations int64 `json:"escalations"`
	// EpochBumps / SuppressedBumps split incremental publications by
	// whether the summary movement was material.
	EpochBumps      int64 `json:"epoch_bumps"`
	SuppressedBumps int64 `json:"suppressed_bumps"`
	// ErrEWMA and AssignEWMA expose the live detector signals.
	ErrEWMA    float64 `json:"err_ewma"`
	AssignEWMA float64 `json:"assign_ewma"`
}

// ingester is the per-node streaming state. Its mutex serializes
// ingest flushes and forced requantizations with each other; snapshot
// publication itself still goes through the engine's mutate lock.
type ingester struct {
	mu  sync.Mutex
	cfg IngestConfig
	buf [][]float64
	sq  *cluster.StreamQuantizer

	// advertised is the summary backing the last epoch bump; drift is
	// measured against it so immaterial movement accumulates across
	// batches instead of resetting each flush.
	advertised cluster.NodeSummary

	// Baselines from the last full quantization.
	basePerPoint float64
	baseShare    []float64

	errEWMA    float64
	assignEWMA float64

	stats IngestStats
}

// EnableIngest switches the node onto the streaming ingestion path:
// subsequent AddSamples/Ingest calls buffer rows and requantize
// incrementally, and Requantize becomes a forced full re-run through
// the same path (flushing the buffer first). Enabling is one-shot.
func (n *Node) EnableIngest(cfg IngestConfig) error {
	n.ingestMu.Lock()
	defer n.ingestMu.Unlock()
	if n.ingest != nil {
		return fmt.Errorf("federation: node %s: ingestion already enabled", n.id)
	}
	snap := n.eng.Current()
	sq, err := cluster.NewStreamQuantizer(snap.Quant.Result)
	if err != nil {
		return fmt.Errorf("federation: node %s: %w", n.id, err)
	}
	ing := &ingester{cfg: cfg.withDefaults(), sq: sq, errEWMA: 1}
	ing.rebaseline(snap.Quant.Result, snap.Data.Len())
	adv := snap.Quant.Summarize(n.id)
	adv.Epoch = snap.Epoch
	ing.advertised = adv
	n.ingest = ing
	return nil
}

// IngestEnabled reports whether the streaming path is active.
func (n *Node) IngestEnabled() bool {
	n.ingestMu.Lock()
	defer n.ingestMu.Unlock()
	return n.ingest != nil
}

// IngestStats returns the streaming counters; ok is false when
// ingestion is not enabled.
func (n *Node) IngestStats() (IngestStats, bool) {
	n.ingestMu.Lock()
	ing := n.ingest
	n.ingestMu.Unlock()
	if ing == nil {
		return IngestStats{}, false
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	st := ing.stats
	st.Buffered = len(ing.buf)
	st.ErrEWMA = ing.errEWMA
	st.AssignEWMA = ing.assignEWMA
	return st, true
}

// Ingest appends freshly collected rows to the bounded ingest buffer,
// flushing a mini-batch through the incremental requantization path at
// every BatchSize boundary. It requires EnableIngest.
func (n *Node) Ingest(rows [][]float64) error {
	n.ingestMu.Lock()
	ing := n.ingest
	n.ingestMu.Unlock()
	if ing == nil {
		return fmt.Errorf("federation: node %s: ingestion not enabled", n.id)
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	for _, r := range rows {
		ing.buf = append(ing.buf, append([]float64(nil), r...))
	}
	for len(ing.buf) >= ing.cfg.BatchSize {
		batch := ing.buf[:ing.cfg.BatchSize]
		rest := ing.buf[ing.cfg.BatchSize:]
		if err := n.flushBatch(ing, batch); err != nil {
			return fmt.Errorf("federation: node %s: %w", n.id, err)
		}
		ing.buf = append(ing.buf[:0:0], rest...)
	}
	return nil
}

// rebaseline re-anchors the drift detector on a fresh full result.
func (ing *ingester) rebaseline(res *cluster.Result, total int) {
	if total > 0 {
		ing.basePerPoint = res.Inertia / float64(total)
	} else {
		ing.basePerPoint = 0
	}
	ing.baseShare = make([]float64, len(res.Clusters))
	if total > 0 {
		for k, c := range res.Clusters {
			ing.baseShare[k] = float64(c.Size) / float64(total)
		}
	}
	ing.errEWMA = 1
	ing.assignEWMA = 0
}

// observeBatch folds one batch's raw signals into the detector EWMAs
// and reports whether escalation is due.
func (ing *ingester) observeBatch(st cluster.BatchStats, batchLen int) bool {
	if batchLen == 0 {
		return false
	}
	perPoint := st.SqErr / float64(batchLen)
	base := ing.basePerPoint
	if base <= 0 {
		base = 1e-12
	}
	a := ing.cfg.Alpha
	ing.errEWMA = a*(perPoint/base) + (1-a)*ing.errEWMA
	shift := 0.0
	for k, c := range st.AssignCounts {
		share := float64(c) / float64(batchLen)
		baseShare := 0.0
		if k < len(ing.baseShare) {
			baseShare = ing.baseShare[k]
		}
		if d := share - baseShare; d >= 0 {
			shift += d
		} else {
			shift -= d
		}
	}
	ing.assignEWMA = a*(shift/2) + (1-a)*ing.assignEWMA
	return ing.errEWMA >= ing.cfg.EscalateError || ing.assignEWMA >= ing.cfg.EscalateAssign
}

// flushBatch runs one mini-batch through the incremental path: absorb
// into the streamed centroids, publish a COW snapshot with a single
// assignment pass, bump the epoch only on material summary movement,
// and escalate to a full re-quantization when the detector fires.
// Callers hold ing.mu.
func (n *Node) flushBatch(ing *ingester, batch [][]float64) error {
	st, err := ing.sq.Absorb(batch)
	if err != nil {
		return err
	}
	ing.stats.Batches++
	if ing.observeBatch(st, len(batch)) {
		ing.stats.Escalations++
		return n.fullRequantizeLocked(ing, batch)
	}
	return n.eng.MutateEpoch(func(cur *engine.Snapshot) (*dataset.Dataset, *cluster.Quantization, bool, error) {
		data, err := cur.Data.CopyAppend(batch)
		if err != nil {
			return nil, nil, false, err
		}
		res, err := ing.sq.Requantize(data.Rows())
		if err != nil {
			return nil, nil, false, err
		}
		quant := &cluster.Quantization{Data: data, Result: res}
		next := quant.Summarize(n.id)
		drift, err := cluster.SummaryDrift(ing.advertised, next)
		if err != nil {
			return nil, nil, false, err
		}
		bump := drift >= ing.cfg.MaterialDrift
		ing.stats.IncrementalRequants++
		if bump {
			ing.stats.EpochBumps++
			next.Epoch = cur.Epoch + 1
			ing.advertised = next
		} else {
			ing.stats.SuppressedBumps++
		}
		return data, quant, bump, nil
	})
}

// fullRequantizeLocked appends extra (possibly nil) pending rows and
// re-runs the full Lloyd quantization, re-anchoring the stream
// quantizer and drift detector on the result. Callers hold ing.mu.
func (n *Node) fullRequantizeLocked(ing *ingester, extra [][]float64) error {
	err := n.eng.MutateEpoch(func(cur *engine.Snapshot) (*dataset.Dataset, *cluster.Quantization, bool, error) {
		data := cur.Data
		if len(extra) > 0 {
			var err error
			data, err = cur.Data.CopyAppend(extra)
			if err != nil {
				return nil, nil, false, err
			}
		}
		quant, err := cluster.Quantize(data, cluster.Config{K: n.k}, n.src.Split())
		if err != nil {
			return nil, nil, false, err
		}
		ing.sq.Reset(quant.Result)
		ing.rebaseline(quant.Result, data.Len())
		next := quant.Summarize(n.id)
		next.Epoch = cur.Epoch + 1
		ing.advertised = next
		ing.stats.FullRequants++
		return data, quant, true, nil
	})
	return err
}

// forceFullRequantize is the forced full re-run behind Requantize (the
// SIGHUP path) when ingestion is enabled: it drains the buffer into the
// dataset and requantizes from scratch through the same machinery the
// autonomous escalation uses.
func (n *Node) forceFullRequantize(ing *ingester) error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	pending := ing.buf
	ing.buf = nil
	if err := n.fullRequantizeLocked(ing, pending); err != nil {
		return fmt.Errorf("federation: node %s: %w", n.id, err)
	}
	return nil
}
