package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qens/internal/cluster"
	"qens/internal/dataset"
	"qens/internal/fleet"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/plan"
	"qens/internal/query"
	"qens/internal/registry"
	"qens/internal/rng"
	"qens/internal/selection"
	"qens/internal/telemetry"
)

// Config parameterizes a federation.
type Config struct {
	// Spec is the model architecture and hyper-parameters every
	// participant trains (Table III).
	Spec ml.Spec
	// ClusterK is the per-node k-means K (the paper fixes 5).
	ClusterK int
	// LocalEpochs is the paper's E: local iterations per supporting
	// cluster (default 5).
	LocalEpochs int
	// TolerateFailures makes Execute skip participants whose
	// training round fails (network drop, bad state) instead of
	// aborting the query, as long as at least one participant
	// succeeds. The failed node ids are recorded in Result.Failed.
	TolerateFailures bool
	// Seed drives the leader's stochastic choices (random
	// selection, model init).
	Seed uint64
	// SummaryTTL ages out the cached advertisements: a query planned
	// after the TTL re-fetches the fleet and bumps the registry
	// epoch. 0 (the default) keeps advertisements until an explicit
	// InvalidateSummaries or a node-signalled drift — the legacy
	// behaviour.
	SummaryTTL time.Duration
	// SummaryDelta switches registry refreshes after the first from
	// full-fleet summary re-fetch to per-node epoch-conditional
	// deltas: nodes whose advertisement epoch is unchanged answer a
	// tiny "unchanged" probe instead of shipping their summary, so a
	// refresh moves bytes proportional to churn, not fleet size.
	// Participants that don't implement DeltaSummaryClient degrade to
	// a full Summary fetch transparently.
	SummaryDelta bool
	// RebuildChurn overrides the registry's churn threshold above
	// which a delta refresh rebuilds the spatial index from scratch
	// instead of patching it (default registry.DefaultRebuildChurn).
	// Ignored without SummaryDelta.
	RebuildChurn float64
}

func (c Config) withDefaults() Config {
	if c.ClusterK == 0 {
		c.ClusterK = 5
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 5
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if err := c.Spec.Validate(); err != nil {
		return fmt.Errorf("federation: %w", err)
	}
	if c.ClusterK < 1 {
		return fmt.Errorf("federation: cluster K %d < 1", c.ClusterK)
	}
	if c.LocalEpochs < 1 {
		return fmt.Errorf("federation: local epochs %d < 1", c.LocalEpochs)
	}
	if c.SummaryTTL < 0 {
		return fmt.Errorf("federation: negative summary TTL %v", c.SummaryTTL)
	}
	return nil
}

// Leader orchestrates per-query distributed learning (§III-A): it
// holds the participant roster, collects their cluster advertisements
// into a versioned registry, plans participant selection per incoming
// query (internal/plan), distributes the global model, and aggregates
// the returned local models.
//
// The per-query hot path is a Plan/Execute pipeline: the pure-CPU
// planning stage reads a lock-free registry snapshot (no mutex at
// steady state), and only the I/O-bound execution stage talks to the
// fleet. Everything derived from an advertisement epoch — the warm-up
// model, reuse-cache entries, plan fingerprints — is keyed to that
// epoch and dies with it when the registry refreshes.
//
// A Leader is safe for concurrent callers: Execute, ExecuteParallel,
// ExecuteRounds and ExecuteWithReuse may run simultaneously from many
// goroutines (the serving path in internal/gateway depends on this).
// The shared RNG is internally locked (see internal/rng), the summary
// registry publishes copy-on-write snapshots, and the stateful
// selectors (Fairness, Contribution, Adaptive) lock internally.
type Leader struct {
	cfg     Config
	data    *dataset.Dataset // the leader's own local data (§II pre-test)
	clients []Client
	src     *rng.Source

	reg     *registry.Registry // versioned advertisement store
	planner *plan.Planner      // pure-CPU planning stage
	exec    *Executor          // I/O-bound execution stage

	warmupMu    sync.Mutex
	warmup      *ml.Params // cached §II warm-up model
	warmupEpoch uint64     // registry epoch the warm-up was fit under

	tracer  *telemetry.Tracer // nil: fall back to telemetry.DefaultTracer
	metrics *leaderMetrics
	health  *fleet.Tracker // per-node round latency/error EWMAs

	push leaderPush // summary push subscriptions (see push.go)
}

// NewLeader builds a leader over the given participants. leaderData is
// the leader's own local dataset, used only for the §II warm-up
// pre-test (GameTheory selection and PreTest); it may be nil if those
// are never used.
func NewLeader(cfg Config, leaderData *dataset.Dataset, clients []Client) (*Leader, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(clients) == 0 {
		return nil, errors.New("federation: leader needs at least one participant")
	}
	seen := map[string]bool{}
	for _, c := range clients {
		if seen[c.ID()] {
			return nil, fmt.Errorf("federation: duplicate participant id %q", c.ID())
		}
		seen[c.ID()] = true
	}
	l := &Leader{
		cfg: cfg, data: leaderData, clients: clients, src: rng.New(cfg.Seed),
		metrics: newLeaderMetrics(telemetry.Default()),
		health:  fleet.NewTracker(telemetry.Default()),
	}
	regCfg := registry.Config{
		Fetch: l.fetchSummaries,
		TTL:   cfg.SummaryTTL,
	}
	if cfg.SummaryDelta {
		regCfg.FetchDelta = l.fetchSummaryDeltas
		regCfg.RebuildChurn = cfg.RebuildChurn
	}
	reg, err := registry.New(regCfg)
	if err != nil {
		return nil, fmt.Errorf("federation: %w", err)
	}
	l.reg = reg
	l.planner = plan.NewPlanner(reg)
	l.exec = NewExecutor(l)
	return l, nil
}

// fetchSummaries is the registry's FetchFunc: one advertisement per
// participant, in roster order, validated before publication.
func (l *Leader) fetchSummaries(ctx context.Context) ([]cluster.NodeSummary, error) {
	out := make([]cluster.NodeSummary, 0, len(l.clients))
	for _, c := range l.clients {
		s, err := c.Summary(ctx)
		if err != nil {
			return nil, fmt.Errorf("federation: summary from %s: %w", c.ID(), err)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("federation: summary from %s: %w", c.ID(), err)
		}
		out = append(out, s)
	}
	return out, nil
}

// fetchSummaryDeltas is the registry's DeltaFetchFunc: one delta per
// participant in roster order. Nodes whose advertisement epoch matches
// the registry's known epoch answer with a summary-free "unchanged"
// probe; everyone else (and every client without the DeltaSummaryClient
// capability) ships a validated full summary.
func (l *Leader) fetchSummaryDeltas(ctx context.Context, known []registry.NodeEpoch) ([]registry.Delta, error) {
	if len(known) != len(l.clients) {
		return nil, fmt.Errorf("federation: delta refresh over %d known epochs, roster has %d", len(known), len(l.clients))
	}
	out := make([]registry.Delta, 0, len(l.clients))
	for i, c := range l.clients {
		if known[i].NodeID != c.ID() {
			return nil, fmt.Errorf("federation: delta roster mismatch at %d: %s vs %s", i, known[i].NodeID, c.ID())
		}
		var (
			s         cluster.NodeSummary
			unchanged bool
			err       error
		)
		if dc, ok := c.(DeltaSummaryClient); ok {
			s, unchanged, err = dc.SummaryIfChanged(ctx, known[i].Epoch)
		} else {
			s, err = c.Summary(ctx)
		}
		if err != nil {
			return nil, fmt.Errorf("federation: summary from %s: %w", c.ID(), err)
		}
		if unchanged {
			out = append(out, registry.Delta{NodeID: c.ID(), Unchanged: true})
			continue
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("federation: summary from %s: %w", c.ID(), err)
		}
		out = append(out, registry.Delta{NodeID: c.ID(), Summary: s})
	}
	return out, nil
}

// Config returns the leader's configuration (with defaults applied).
func (l *Leader) Config() Config { return l.cfg }

// NodeIDs returns the participant ids in roster order.
func (l *Leader) NodeIDs() []string {
	out := make([]string, len(l.clients))
	for i, c := range l.clients {
		out[i] = c.ID()
	}
	return out
}

// Summaries fetches (and caches) every participant's cluster
// advertisement — the one-off O(1)-per-node communication of §III-C.
func (l *Leader) Summaries() ([]cluster.NodeSummary, error) {
	return l.SummariesContext(context.Background())
}

// SummariesContext is Summaries with deadline/cancellation support.
// It resolves the current registry snapshot (fetching the fleet only
// when none exists, the TTL lapsed, or the epoch was invalidated);
// concurrent first callers wait for one round of advertisements
// instead of each polling the fleet.
func (l *Leader) SummariesContext(ctx context.Context) ([]cluster.NodeSummary, error) {
	snap, err := l.reg.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	return snap.Summaries, nil
}

// InvalidateSummaries marks the cached advertisements stale (call
// after node data changes): the next query re-fetches the fleet and
// bumps the registry epoch, flushing every epoch-keyed derived cache.
func (l *Leader) InvalidateSummaries() {
	l.reg.Invalidate()
}

// Registry exposes the leader's versioned summary store (epoch
// inspection, background refresh, drift signalling).
func (l *Leader) Registry() *registry.Registry { return l.reg }

// Planner exposes the pure-CPU planning stage.
func (l *Leader) Planner() *plan.Planner { return l.planner }

// Executor exposes the I/O-bound execution stage.
func (l *Leader) Executor() *Executor { return l.exec }

// Health exposes the leader's fleet health tracker: per-node round
// latency/error EWMAs fed by every executed round, scored for the
// gateway's /v1/fleet endpoint and the qens_fleet_* gauges.
func (l *Leader) Health() *fleet.Tracker { return l.health }

// SummaryEpoch returns the current advertisement epoch (0 before the
// first fetch). Lock-free.
func (l *Leader) SummaryEpoch() uint64 { return l.reg.Epoch() }

// client looks up a participant by id.
func (l *Leader) client(id string) (Client, error) {
	for _, c := range l.clients {
		if c.ID() == id {
			return c, nil
		}
	}
	return nil, fmt.Errorf("federation: unknown participant %q", id)
}

// warmupParams lazily trains the leader's local warm-up model used by
// the §II pre-test and GameTheory selection. The fit is serialized so
// concurrent queries share one warm-up model, and the cache is keyed
// to the registry epoch: when the advertisements refresh (node data
// changed), the stale warm-up dies with them and the next pre-test
// refits against the new regime.
func (l *Leader) warmupParams() (ml.Params, error) {
	epoch := l.reg.Epoch()
	l.warmupMu.Lock()
	defer l.warmupMu.Unlock()
	if l.warmup != nil && l.warmupEpoch == epoch {
		return *l.warmup, nil
	}
	if l.data == nil || l.data.Len() == 0 {
		return ml.Params{}, errors.New("federation: leader has no local data for the pre-test warm-up")
	}
	spec := l.cfg.Spec
	spec.Seed = uint64(l.src.Int63())
	model, err := spec.New()
	if err != nil {
		return ml.Params{}, err
	}
	x, y := l.data.XY()
	if err := model.Fit(x, y); err != nil {
		return ml.Params{}, fmt.Errorf("federation: warm-up fit: %w", err)
	}
	p := model.Params()
	l.warmup = &p
	l.warmupEpoch = epoch
	return p, nil
}

// evaluateWarmup scores the warm-up model on one node's local data.
func (l *Leader) evaluateWarmup(ctx context.Context, nodeID string) (float64, error) {
	params, err := l.warmupParams()
	if err != nil {
		return 0, err
	}
	c, err := l.client(nodeID)
	if err != nil {
		return 0, err
	}
	resp, err := c.Evaluate(ctx, EvalRequest{Spec: l.cfg.Spec, Params: params})
	if err != nil {
		return 0, err
	}
	l.signalEpoch(nodeID, resp.SummaryEpoch)
	return resp.MSE, nil
}

// signalEpoch feeds a node-reported advertisement version into the
// registry's drift detection; evaluation responses carry epochs just
// like training responses, so pre-test scoring doubles as a drift
// probe. Zero epochs (older daemons) are ignored.
func (l *Leader) signalEpoch(nodeID string, epoch uint64) {
	if epoch == 0 {
		return
	}
	l.reg.SignalNodeEpoch(nodeID, epoch)
}

// SelectionContext builds the Context handed to selectors: the
// leader's RNG plus the warm-up evaluator.
func (l *Leader) SelectionContext() *selection.Context {
	return l.selectionContext(context.Background())
}

// selectionContext binds the selector dependencies to one query's
// context, so pre-test evaluations issued during selection honor the
// query's deadline.
func (l *Leader) selectionContext(ctx context.Context) *selection.Context {
	return &selection.Context{
		RNG: l.src,
		Evaluate: func(nodeID string) (float64, error) {
			return l.evaluateWarmup(ctx, nodeID)
		},
	}
}

// PreTest runs the §II heterogeneity pre-test across all participants.
func (l *Leader) PreTest(ratioThreshold float64) (*selection.PreTestResult, error) {
	return selection.PreTest(l.NodeIDs(), func(nodeID string) (float64, error) {
		return l.evaluateWarmup(context.Background(), nodeID)
	}, ratioThreshold)
}

// Stats accounts for one query execution.
type Stats struct {
	// SelectionTime is the leader-side time to rank and select.
	SelectionTime time.Duration
	// TrainTime is the summed node-reported training time.
	TrainTime time.Duration
	// WallTime is the end-to-end execution time.
	WallTime time.Duration
	// SamplesUsed is the number of samples trained on across the
	// selected participants.
	SamplesUsed int
	// SamplesSelectedNodes is the total data held by the selected
	// participants (the denominator for the Fig. 9 selectivity
	// accounting at node scope).
	SamplesSelectedNodes int
	// SamplesAllNodes is the total data across all participants.
	SamplesAllNodes int
	// BytesUp estimates bytes sent leader->nodes (model params).
	BytesUp int64
	// BytesDown estimates bytes received nodes->leader.
	BytesDown int64
}

// DataFraction returns SamplesUsed / SamplesAllNodes, the Fig. 9
// quantity.
func (s Stats) DataFraction() float64 {
	if s.SamplesAllNodes == 0 {
		return 0
	}
	return float64(s.SamplesUsed) / float64(s.SamplesAllNodes)
}

// Result is the outcome of executing one query.
type Result struct {
	Query query.Query
	// Epoch is the advertisement epoch the query was planned against;
	// caches keyed on it (see ReuseCache) are flushed when the
	// registry refreshes.
	Epoch        uint64
	Selector     string
	Aggregation  Aggregation
	Participants []selection.Participant
	LocalParams  []ml.Params
	Ensemble     *Ensemble
	// Failed lists participants that were selected but whose
	// training round failed (only populated with
	// Config.TolerateFailures; their models are excluded from the
	// ensemble).
	Failed []string
	// NodeRounds records per-participant round timings and outcomes
	// in execution order, including failed rounds with their error
	// strings — the per-query attribution behind the
	// qens_leader_train_round_ms metric family.
	NodeRounds []NodeRound
	// TrainMins/TrainMaxs pack the cluster rectangles the ensemble
	// was actually trained on (every supporting cluster of every
	// participant), rect-major with TrainDims values per rectangle —
	// the same flat layout registry.NodeGeom uses. The model-answer
	// cache scores coverage of future queries against these to bound
	// the expected extrapolation error. Empty for results built
	// before capture existed (wire-decoded, legacy callers).
	TrainMins []float64
	TrainMaxs []float64
	TrainDims int
	Stats     Stats
}

// Execute runs the full §IV-B loop for one query: select participants,
// send the initial global model, let each participant train over its
// supporting clusters, and build the aggregated predictor. When a
// tracer is installed the execution emits one trace with selection,
// per-node train and aggregation spans sharing the query's trace ID.
func (l *Leader) Execute(q query.Query, sel selection.Selector, agg Aggregation) (*Result, error) {
	return l.ExecuteContext(context.Background(), q, sel, agg)
}

// ExecuteContext is Execute with deadline/cancellation support: the
// context is consulted before selection and before every training
// round, and is handed to each participant client, so an expired query
// aborts instead of occupying the fleet. A query whose context is
// already done returns ctx.Err() immediately.
//
// Internally this is the two-stage pipeline: planner.Plan (pure CPU,
// lock-free over the registry snapshot) followed by Executor.run (the
// I/O-bound training fan-out and aggregation).
func (l *Leader) ExecuteContext(ctx context.Context, q query.Query, sel selection.Selector, agg Aggregation) (_ *Result, retErr error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	qspan := l.startQuerySpan(q, sel)
	defer func() { qspan.End(retErr) }()

	pl, selectionTime, err := l.planWithSpan(ctx, qspan, q, sel)
	if err != nil {
		return nil, err
	}
	defer pl.Release()

	res, err := l.exec.run(ctx, qspan, pl, agg, false)
	if err != nil {
		return nil, err
	}
	res.Stats.SelectionTime = selectionTime
	res.Stats.WallTime = time.Since(start)
	l.metrics.query(sel.Name(), selectionTime, len(res.Failed))
	return res, nil
}

// PlanContext runs only the pure-CPU planning stage for a query: the
// registry snapshot is resolved (fetching the fleet at most once), the
// candidate ranking is computed, and the selection policy applied — no
// training RPC is issued. This is what the gateway's EXPLAIN endpoint
// serves. The caller must Release the returned plan.
func (l *Leader) PlanContext(ctx context.Context, q query.Query, sel selection.Selector) (*plan.Plan, error) {
	snap, err := l.reg.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	pl, err := l.planner.PlanOn(snap, q, sel, l.selectionContext(ctx))
	if err != nil {
		return nil, fmt.Errorf("federation: %s selection for %s: %w", sel.Name(), q.ID, err)
	}
	return pl, nil
}

// ExplainContext is PlanContext with the spatial-index fast path
// disabled: every ranking row carries full per-dimension overlap
// detail, which is what the gateway's EXPLAIN endpoint renders. The
// participant set is identical to PlanContext's. The caller must
// Release the returned plan.
func (l *Leader) ExplainContext(ctx context.Context, q query.Query, sel selection.Selector) (*plan.Plan, error) {
	snap, err := l.reg.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	pl, err := l.planner.ExplainOn(snap, q, sel, l.selectionContext(ctx))
	if err != nil {
		return nil, fmt.Errorf("federation: %s selection for %s: %w", sel.Name(), q.ID, err)
	}
	return pl, nil
}

// planWithSpan resolves the snapshot and plans under a selection span,
// preserving the legacy error shapes: summary-fetch failures surface
// unwrapped, selection failures get the "%s selection for %s" wrap.
func (l *Leader) planWithSpan(ctx context.Context, qspan *telemetry.SpanHandle, q query.Query, sel selection.Selector) (*plan.Plan, time.Duration, error) {
	snap, err := l.reg.Snapshot(ctx)
	if err != nil {
		return nil, 0, err
	}
	selStart := time.Now()
	selSpan := startSelectionSpan(qspan)
	pl, err := l.planner.PlanOn(snap, q, sel, l.selectionContext(ctx))
	selSpan.End(err)
	if err != nil {
		return nil, 0, fmt.Errorf("federation: %s selection for %s: %w", sel.Name(), q.ID, err)
	}
	return pl, time.Since(selStart), nil
}

// EvaluateGlobal scores a single global model (e.g. the FedAvg output
// of ExecuteRounds) against the federation's own data restricted to
// bounds, without any raw data reaching the leader: every participant
// reports its local (MSE, sample count) and the leader pools them by
// sample weight. ok is false when no participant holds in-bounds data.
func (l *Leader) EvaluateGlobal(params ml.Params, bounds geometry.Rect) (mse float64, samples int, err error) {
	return l.EvaluateGlobalContext(context.Background(), params, bounds)
}

// EvaluateGlobalContext is EvaluateGlobal with deadline/cancellation
// support.
func (l *Leader) EvaluateGlobalContext(ctx context.Context, params ml.Params, bounds geometry.Rect) (mse float64, samples int, err error) {
	totalSq := 0.0
	for _, c := range l.clients {
		resp, err := c.Evaluate(ctx, EvalRequest{Spec: l.cfg.Spec, Params: params, Bounds: &bounds})
		if err != nil {
			return 0, 0, fmt.Errorf("federation: evaluate on %s: %w", c.ID(), err)
		}
		l.signalEpoch(c.ID(), resp.SummaryEpoch)
		totalSq += resp.MSE * float64(resp.Samples)
		samples += resp.Samples
	}
	if samples == 0 {
		return 0, 0, nil
	}
	return totalSq / float64(samples), samples, nil
}

// trainOn runs one participant's training round, attributing it to the
// given span (nil for untraced runs).
func (l *Leader) trainOn(ctx context.Context, p selection.Participant, initial ml.Params, span *telemetry.SpanHandle) (TrainResponse, error) {
	c, err := l.client(p.NodeID)
	if err != nil {
		return TrainResponse{}, err
	}
	return c.Train(ctx, TrainRequest{
		Spec:        l.cfg.Spec,
		Params:      initial,
		Clusters:    p.Clusters,
		LocalEpochs: l.cfg.LocalEpochs,
		TraceID:     span.TraceID(),
		SpanID:      span.SpanID(),
	})
}

// EvaluateResult scores a result's ensemble against test data
// restricted to the query's subspace, returning the MSE and the number
// of test samples that fell inside the query. When no test samples
// fall inside the query rectangle, ok is false.
func EvaluateResult(res *Result, test *dataset.Dataset) (mse float64, samples int, ok bool) {
	sub := test.FilterInRect(res.Query.Bounds)
	if sub.Len() == 0 {
		return 0, 0, false
	}
	x, y := sub.XY()
	return ml.MSE(y, res.Ensemble.PredictBatch(x)), sub.Len(), true
}
