package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"qens/internal/cluster"
)

// Push subscription state hangs off the Leader but lives in its own
// file: it is the node-push half of the summary-freshness refactor
// (registry.ApplyPush is the other half). StartPush walks the roster
// and subscribes every PushSummaryClient; from then on material
// advertisement changes arrive push-style and the TTL pull demotes to
// anti-entropy. StopPush gates delivery off again (gateway Drain) —
// late frames from participants are dropped at the leader, not
// applied mid-teardown.
type leaderPush struct {
	mu         sync.Mutex
	active     atomic.Bool
	subscribed int
}

// StartPush subscribes the leader to summary pushes from every
// push-capable participant, feeding each pushed advertisement through
// the registry's fenced ApplyPush path. It returns how many
// participants accepted a subscription; participants without the
// capability (or on connections that cannot push) are skipped and
// keep being pulled. Subscription errors are joined but do not stop
// the walk — a partly-push fleet is still strictly fresher than a
// pull-only one. Idempotent: a second call re-arms subscriptions
// (client implementations tolerate duplicate subscribes).
func (l *Leader) StartPush(ctx context.Context) (int, error) {
	l.push.mu.Lock()
	defer l.push.mu.Unlock()
	l.push.active.Store(true)
	var errs []error
	n := 0
	for _, c := range l.clients {
		pc, ok := c.(PushSummaryClient)
		if !ok {
			continue
		}
		accepted, err := pc.SubscribeSummaries(ctx, l.handlePush)
		if err != nil {
			errs = append(errs, fmt.Errorf("federation: subscribe %s: %w", c.ID(), err))
			continue
		}
		if accepted {
			n++
		}
	}
	l.push.subscribed = n
	return n, errors.Join(errs...)
}

// StopPush gates push delivery off: frames still in flight are
// dropped at the leader instead of mutating the registry during
// drain. Subscriptions on the wire are left to die with their
// connections. Idempotent.
func (l *Leader) StopPush() {
	l.push.active.Store(false)
}

// PushSubscribed reports how many participants accepted a summary
// push subscription on the last StartPush.
func (l *Leader) PushSubscribed() int {
	l.push.mu.Lock()
	defer l.push.mu.Unlock()
	return l.push.subscribed
}

// handlePush is the shared subscription handler: every pushed
// advertisement lands in the registry via the epoch-fenced ApplyPush
// (stale or duplicate pushes are dropped there, counted in registry
// Stats). Validation failures are swallowed — a malformed push must
// not take down the participant's reader goroutine, and the
// anti-entropy pull re-validates the node on its next pass.
func (l *Leader) handlePush(sum cluster.NodeSummary) {
	if !l.push.active.Load() {
		return
	}
	_, _ = l.reg.ApplyPush(sum)
}
