package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"qens/internal/cluster"
)

// Push subscription state hangs off the Leader but lives in its own
// file: it is the node-push half of the summary-freshness refactor
// (registry.ApplyPush is the other half). StartPush walks the roster
// and subscribes every PushSummaryClient; from then on material
// advertisement changes arrive push-style and the TTL pull demotes to
// anti-entropy. StopPush gates delivery off again (gateway Drain) —
// late frames from participants are dropped at the leader, not
// applied mid-teardown.
//
// Delivery is two-stage: subscription handlers run on the transport
// connection's reader goroutine (or an in-process node's mutating
// goroutine) and must hand off quickly, so handlePush only coalesces
// the summary into a per-node queue; a dedicated applier goroutine —
// started by StartPush, stopped by StopPush — drains the queue through
// the registry's fenced ApplyPush. That keeps a push from ever
// blocking a reader on the registry's refresh lock: an in-flight TTL
// refresh awaiting a summary RPC on the same connection would
// otherwise deadlock with the reader wedged in the handler.
type leaderPush struct {
	mu         sync.Mutex // guards the subscribe walk and applier lifecycle
	active     atomic.Bool
	subscribed int

	// queue coalesces pushed advertisements per node between applier
	// wakeups — newest epoch wins, so the queue is bounded by roster
	// size no matter how fast a node pushes. wake (cap 1) is the
	// applier's doorbell.
	queueMu sync.Mutex
	queue   map[string]cluster.NodeSummary
	wake    chan struct{}

	stop chan struct{} // applier lifetime, recreated per StartPush
	done chan struct{}
}

// StartPush subscribes the leader to summary pushes from every
// push-capable participant, feeding each pushed advertisement through
// the registry's fenced ApplyPush path. It returns how many
// participants accepted a subscription; participants without the
// capability (or on connections that cannot push) are skipped and
// keep being pulled. Subscription errors are joined but do not stop
// the walk — a partly-push fleet is still strictly fresher than a
// pull-only one. Idempotent: a second call re-arms subscriptions
// (client implementations tolerate duplicate subscribes). Callers must
// pair it with StopPush (gateway Drain/Close does) or the applier
// goroutine outlives the leader's serving phase.
func (l *Leader) StartPush(ctx context.Context) (int, error) {
	l.push.mu.Lock()
	defer l.push.mu.Unlock()
	l.push.queueMu.Lock()
	l.push.queue = make(map[string]cluster.NodeSummary, len(l.clients))
	if l.push.wake == nil {
		l.push.wake = make(chan struct{}, 1)
	}
	l.push.queueMu.Unlock()
	if l.push.stop == nil {
		l.push.stop = make(chan struct{})
		l.push.done = make(chan struct{})
		go l.runPushApplier(l.push.stop, l.push.done)
	}
	l.push.active.Store(true)
	var errs []error
	n := 0
	for _, c := range l.clients {
		pc, ok := c.(PushSummaryClient)
		if !ok {
			continue
		}
		accepted, err := pc.SubscribeSummaries(ctx, l.handlePush)
		if err != nil {
			errs = append(errs, fmt.Errorf("federation: subscribe %s: %w", c.ID(), err))
			continue
		}
		if accepted {
			n++
		}
	}
	l.push.subscribed = n
	return n, errors.Join(errs...)
}

// StopPush gates push delivery off and stops the applier goroutine,
// waiting for any in-progress apply to finish: frames still in flight
// are dropped at the leader instead of mutating the registry during
// drain. Subscriptions on the wire are left to die with their
// connections. Idempotent.
func (l *Leader) StopPush() {
	l.push.mu.Lock()
	defer l.push.mu.Unlock()
	l.push.active.Store(false)
	if l.push.stop != nil {
		close(l.push.stop)
		<-l.push.done
		l.push.stop, l.push.done = nil, nil
	}
	l.push.queueMu.Lock()
	l.push.queue = nil
	l.push.queueMu.Unlock()
}

// PushSubscribed reports how many participants accepted a summary
// push subscription on the last StartPush.
func (l *Leader) PushSubscribed() int {
	l.push.mu.Lock()
	defer l.push.mu.Unlock()
	return l.push.subscribed
}

// handlePush is the shared subscription handler. It runs on the
// pushing connection's reader goroutine, so it must never block on
// registry state: it coalesces the advertisement into the per-node
// queue (newest epoch wins) and rings the applier's doorbell. The
// applier's ApplyPush fences stale or duplicate pushes and swallows
// validation failures — a malformed push must not take down the
// participant's delivery path, and the anti-entropy pull re-validates
// the node on its next pass.
func (l *Leader) handlePush(sum cluster.NodeSummary) {
	if !l.push.active.Load() {
		return
	}
	l.push.queueMu.Lock()
	if l.push.queue == nil {
		l.push.queueMu.Unlock()
		return
	}
	if cur, ok := l.push.queue[sum.NodeID]; !ok || sum.Epoch >= cur.Epoch {
		l.push.queue[sum.NodeID] = sum
	}
	wake := l.push.wake
	l.push.queueMu.Unlock()
	select {
	case wake <- struct{}{}:
	default:
	}
}

// runPushApplier is the dedicated push-ingestion goroutine: it drains
// the coalesced queue through the registry's ApplyPush until StopPush
// fires. Applying off the delivery goroutines means a push can wait on
// the registry's refresh lock without wedging any connection reader.
func (l *Leader) runPushApplier(stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-l.push.wake:
		}
		for {
			l.push.queueMu.Lock()
			batch := l.push.queue
			if len(batch) == 0 {
				l.push.queueMu.Unlock()
				break
			}
			l.push.queue = make(map[string]cluster.NodeSummary, len(batch))
			l.push.queueMu.Unlock()
			for _, sum := range batch {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = l.reg.ApplyPush(sum)
			}
		}
	}
}
