package federation

import (
	"math"
	"testing"

	"qens/internal/dataset"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/rng"
)

// lineDataset builds y = slope*x + b + noise over [lo, hi].
func lineDataset(n int, slope, intercept, lo, hi float64, seed uint64) *dataset.Dataset {
	src := rng.New(seed)
	d := dataset.MustNew([]string{"x", "y"}, "y")
	for i := 0; i < n; i++ {
		x := src.Uniform(lo, hi)
		d.MustAppend([]float64{x, slope*x + intercept + src.Normal(0, 0.3)})
	}
	return d
}

func TestNewNodeValidation(t *testing.T) {
	d := lineDataset(50, 1, 0, 0, 10, 1)
	if _, err := NewNode("", d, 3, rng.New(1)); err == nil {
		t.Fatal("accepted empty id")
	}
	if _, err := NewNode("n", nil, 3, rng.New(1)); err == nil {
		t.Fatal("accepted nil data")
	}
	if _, err := NewNode("n", dataset.MustNew([]string{"x", "y"}, "y"), 3, rng.New(1)); err == nil {
		t.Fatal("accepted empty data")
	}
	if _, err := NewNode("n", d, 0, rng.New(1)); err == nil {
		t.Fatal("accepted K=0")
	}
	n, err := NewNode("n", d, 5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if n.ID() != "n" {
		t.Fatalf("id = %s", n.ID())
	}
}

func TestNodeSummary(t *testing.T) {
	d := lineDataset(100, 2, 0, 0, 10, 2)
	n, err := NewNode("n1", d, 5, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	s := n.Summary()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.K() != 5 || s.TotalSamples != 100 {
		t.Fatalf("summary %+v", s)
	}
}

func TestNodeTrainWholeData(t *testing.T) {
	d := lineDataset(300, 3, 1, 0, 20, 3)
	n, err := NewNode("n", d, 5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := n.Train(TrainRequest{Spec: ml.PaperLR(1), LocalEpochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	if resp.SamplesUsed != 300 || resp.TotalSamples != 300 {
		t.Fatalf("samples %d/%d", resp.SamplesUsed, resp.TotalSamples)
	}
	if resp.TrainTime <= 0 {
		t.Fatal("train time not recorded")
	}
	// Load the returned model and check it learned the line.
	m := ml.PaperLR(1).MustNew()
	if err := m.SetParams(resp.Params); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{10}); math.Abs(got-31) > 4 {
		t.Fatalf("trained model predicts %v at x=10, want ~31", got)
	}
}

func TestNodeTrainOnClusters(t *testing.T) {
	d := lineDataset(300, 1, 0, 0, 100, 4)
	n, err := NewNode("n", d, 5, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := n.Train(TrainRequest{Spec: ml.PaperLR(1), Clusters: []int{0, 2}, LocalEpochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if resp.SamplesUsed >= 300 || resp.SamplesUsed <= 0 {
		t.Fatalf("cluster-restricted training used %d samples", resp.SamplesUsed)
	}
	sum := n.Summary()
	want := sum.Clusters[0].Size + sum.Clusters[2].Size
	if resp.SamplesUsed != want {
		t.Fatalf("used %d, want %d (clusters 0+2)", resp.SamplesUsed, want)
	}
}

func TestNodeTrainErrors(t *testing.T) {
	d := lineDataset(50, 1, 0, 0, 10, 5)
	n, _ := NewNode("n", d, 3, rng.New(5))
	if _, err := n.Train(TrainRequest{Spec: ml.PaperLR(1), LocalEpochs: 0}); err == nil {
		t.Fatal("accepted zero epochs")
	}
	if _, err := n.Train(TrainRequest{Spec: ml.PaperLR(1), Clusters: []int{99}, LocalEpochs: 1}); err == nil {
		t.Fatal("accepted bad cluster index")
	}
	bad := ml.Spec{Kind: "nope", InputDim: 1}
	if _, err := n.Train(TrainRequest{Spec: bad, LocalEpochs: 1}); err == nil {
		t.Fatal("accepted bad spec")
	}
}

func TestNodeTrainContinuesFromParams(t *testing.T) {
	d := lineDataset(400, 2, 5, 0, 30, 6)
	n, _ := NewNode("n", d, 5, rng.New(6))
	spec := ml.PaperLR(1)
	// First round.
	r1, err := n.Train(TrainRequest{Spec: spec, LocalEpochs: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Second round starting from the first round's params must not
	// regress the fit.
	r2, err := n.Train(TrainRequest{Spec: spec, Params: r1.Params, LocalEpochs: 30})
	if err != nil {
		t.Fatal(err)
	}
	m := spec.MustNew()
	if err := m.SetParams(r2.Params); err != nil {
		t.Fatal(err)
	}
	x, y := d.XY()
	if mse := ml.MSE(y, m.PredictBatch(x)); mse > 2 {
		t.Fatalf("two-round training MSE %v", mse)
	}
}

func TestNodeEvaluate(t *testing.T) {
	d := lineDataset(300, 2, 0, 0, 10, 7)
	n, _ := NewNode("n", d, 5, rng.New(7))
	spec := ml.PaperLR(1)
	resp, err := n.Train(TrainRequest{Spec: spec, LocalEpochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := n.Evaluate(EvalRequest{Spec: spec, Params: resp.Params})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Samples != 300 {
		t.Fatalf("evaluated %d samples", ev.Samples)
	}
	if ev.MSE > 2 {
		t.Fatalf("self-evaluation MSE %v", ev.MSE)
	}
	// An untrained model must do much worse.
	fresh := spec.MustNew()
	evFresh, err := n.Evaluate(EvalRequest{Spec: spec, Params: fresh.Params()})
	if err != nil {
		t.Fatal(err)
	}
	if evFresh.MSE < ev.MSE*5 {
		t.Fatalf("untrained MSE %v not clearly worse than trained %v", evFresh.MSE, ev.MSE)
	}
}

func TestNodeEvaluateWithBounds(t *testing.T) {
	d := lineDataset(300, 1, 0, 0, 100, 8)
	n, _ := NewNode("n", d, 5, rng.New(8))
	spec := ml.PaperLR(1)
	resp, _ := n.Train(TrainRequest{Spec: spec, LocalEpochs: 10})
	bounds := geometry.MustRect([]float64{0, -10}, []float64{20, 40})
	ev, err := n.Evaluate(EvalRequest{Spec: spec, Params: resp.Params, Bounds: &bounds})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Samples == 0 || ev.Samples >= 300 {
		t.Fatalf("bounded evaluation covered %d samples", ev.Samples)
	}
	// Disjoint bounds: zero samples, zero loss, no error.
	far := geometry.MustRect([]float64{1e6, 1e6}, []float64{2e6, 2e6})
	ev, err = n.Evaluate(EvalRequest{Spec: spec, Params: resp.Params, Bounds: &far})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Samples != 0 || ev.MSE != 0 {
		t.Fatalf("disjoint bounds gave %+v", ev)
	}
}
