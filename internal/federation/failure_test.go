package federation

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"qens/internal/cluster"
	"qens/internal/dataset"
	"qens/internal/ml"
	"qens/internal/rng"
	"qens/internal/selection"
)

// flakyClient wraps a Client and fails training after failAfter calls.
type flakyClient struct {
	Client
	calls     int
	failAfter int
}

func (f *flakyClient) Train(ctx context.Context, req TrainRequest) (TrainResponse, error) {
	f.calls++
	if f.calls > f.failAfter {
		return TrainResponse{}, errors.New("simulated edge outage")
	}
	return f.Client.Train(ctx, req)
}

// deadClient fails everything after construction.
type deadClient struct{ id string }

func (d deadClient) ID() string { return d.id }
func (d deadClient) Summary(context.Context) (cluster.NodeSummary, error) {
	return cluster.NodeSummary{}, errors.New("dead")
}
func (d deadClient) Train(context.Context, TrainRequest) (TrainResponse, error) {
	return TrainResponse{}, errors.New("dead")
}
func (d deadClient) Evaluate(context.Context, EvalRequest) (EvalResponse, error) {
	return EvalResponse{}, errors.New("dead")
}

func failureFleet(t *testing.T, tolerate bool) (*Leader, []*Node, *dataset.Dataset) {
	t.Helper()
	data := []*dataset.Dataset{
		lineDataset(300, 2, 1, 0, 40, 60),
		lineDataset(300, 2, 1, 10, 50, 61),
		lineDataset(300, 2, 1, 20, 60, 62),
	}
	test := lineDataset(200, 2, 1, 0, 60, 63)
	var nodes []*Node
	var clients []Client
	for i, d := range data {
		n, err := NewNode(fmt.Sprintf("node-%d", i), d, 4, rng.New(uint64(70+i)))
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		clients = append(clients, LocalClient{n})
	}
	// node-1 goes down at its first training request.
	clients[1] = &flakyClient{Client: clients[1], failAfter: 0}
	leader, err := NewLeader(Config{
		Spec: ml.PaperLR(1), ClusterK: 4, LocalEpochs: 10,
		TolerateFailures: tolerate, Seed: 3,
	}, data[0], clients)
	if err != nil {
		t.Fatal(err)
	}
	return leader, nodes, test
}

func TestExecuteAbortsOnFailureByDefault(t *testing.T) {
	leader, _, _ := failureFleet(t, false)
	_, err := leader.Execute(midQuery(t), selection.AllNodes{}, ModelAveraging)
	if err == nil {
		t.Fatal("expected failure to abort the query")
	}
}

func TestExecuteToleratesFailures(t *testing.T) {
	leader, _, test := failureFleet(t, true)
	res, err := leader.Execute(midQuery(t), selection.AllNodes{}, ModelAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != "node-1" {
		t.Fatalf("failed list %v, want [node-1]", res.Failed)
	}
	if res.Ensemble.Size() != 2 {
		t.Fatalf("ensemble size %d, want 2 survivors", res.Ensemble.Size())
	}
	// The surviving ensemble must still produce a usable model.
	mse, n, ok := EvaluateResult(res, test)
	if !ok || n == 0 {
		t.Fatal("no test data")
	}
	if mse > 50 {
		t.Fatalf("degraded ensemble MSE %v", mse)
	}
}

func TestExecuteFailsWhenAllParticipantsFail(t *testing.T) {
	d := lineDataset(100, 1, 0, 0, 10, 64)
	n, err := NewNode("alive", d, 3, rng.New(64))
	if err != nil {
		t.Fatal(err)
	}
	leader, err := NewLeader(Config{
		Spec: ml.PaperLR(1), TolerateFailures: true, Seed: 1,
	}, nil, []Client{&flakyClient{Client: LocalClient{n}, failAfter: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Execute(midQuery(t), selection.AllNodes{}, ModelAveraging); err == nil {
		t.Fatal("all-failed query must error even with tolerance")
	}
}

func TestSummariesFailFast(t *testing.T) {
	d := lineDataset(100, 1, 0, 0, 10, 65)
	n, _ := NewNode("alive", d, 3, rng.New(65))
	leader, err := NewLeader(Config{Spec: ml.PaperLR(1), Seed: 1},
		nil, []Client{LocalClient{n}, deadClient{id: "dead"}})
	if err != nil {
		t.Fatal(err)
	}
	// Advertisement collection is a roster-level operation: a dead
	// node must surface immediately, tolerance or not.
	if _, err := leader.Summaries(); err == nil {
		t.Fatal("summaries succeeded with a dead node")
	}
}
