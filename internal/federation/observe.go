package federation

import (
	"strconv"
	"time"

	"qens/internal/query"
	"qens/internal/selection"
	"qens/internal/telemetry"
)

// Leader-side observability: every query execution opens a trace
// (selection → per-node train rounds → aggregation) and feeds the
// process-default metric registry. Tracing is a no-op until a tracer
// is installed (Leader.SetTracer or telemetry.SetDefaultTracer), and
// metric updates are lock-free, so the uninstrumented cost is a few
// atomic ops per query.

// NodeRound records one participant's training-round outcome as
// observed by the leader — wall time including the network, plus the
// error string when the round failed. With Config.TolerateFailures a
// failed round is skipped but stays visible here instead of vanishing
// into a bare node-id list.
type NodeRound struct {
	// NodeID is the participant.
	NodeID string
	// Round is the communication round index (always 0 for the
	// single-round Execute/ExecuteParallel paths).
	Round int
	// Elapsed is the leader-observed wall time of the round.
	Elapsed time.Duration
	// Err is the failure reason ("" on success). Failed rounds are
	// excluded from the ensemble.
	Err string
}

// Failed reports whether the round failed.
func (r NodeRound) Failed() bool { return r.Err != "" }

// leaderMetrics caches the leader's registry handle; individual series
// are looked up per query because their labels (selector, node) vary.
type leaderMetrics struct {
	reg *telemetry.Registry
}

func newLeaderMetrics(reg *telemetry.Registry) *leaderMetrics {
	reg.SetHelp("qens_queries_total", "Queries executed by the leader, by selector.")
	reg.SetHelp("qens_selection_ms", "Leader-side participant ranking/selection latency (ms).")
	return &leaderMetrics{reg: reg}
}

func (m *leaderMetrics) query(selector string, selectionTime time.Duration, failed int) {
	if m == nil {
		return
	}
	m.reg.Counter("qens_queries_total", telemetry.Label{Key: "selector", Value: selector}).Inc()
	m.reg.Histogram("qens_selection_ms").ObserveDuration(selectionTime)
	if failed > 0 {
		m.reg.Counter("qens_node_failures_total").Add(int64(failed))
	}
}

func (m *leaderMetrics) round(nodeID string, elapsed time.Duration) {
	if m == nil {
		return
	}
	m.reg.Counter("qens_leader_train_rounds_total", telemetry.Label{Key: "node", Value: nodeID}).Inc()
	m.reg.Histogram("qens_leader_train_round_ms", telemetry.Label{Key: "node", Value: nodeID}).ObserveDuration(elapsed)
}

// SetTracer pins a tracer to this leader (overriding the process
// default). Pass nil to fall back to telemetry.DefaultTracer.
func (l *Leader) SetTracer(t *telemetry.Tracer) { l.tracer = t }

// activeTracer resolves the tracer to use for a query.
func (l *Leader) activeTracer() *telemetry.Tracer {
	if l.tracer != nil {
		return l.tracer
	}
	return telemetry.DefaultTracer()
}

// startQuerySpan opens the root span for one query execution.
func (l *Leader) startQuerySpan(q query.Query, sel selection.Selector) *telemetry.SpanHandle {
	sp := l.activeTracer().StartTrace("query")
	sp.SetAttr("query", q.ID)
	sp.SetAttr("selector", sel.Name())
	return sp
}

// startSelectionSpan opens the selection child span.
func startSelectionSpan(parent *telemetry.SpanHandle) *telemetry.SpanHandle {
	return parent.Child("selection")
}

// startTrainSpan opens a per-node train child span.
func startTrainSpan(parent *telemetry.SpanHandle, nodeID string, round int) *telemetry.SpanHandle {
	sp := parent.Child("train")
	sp.SetAttr("node", nodeID)
	if round > 0 {
		sp.SetAttr("round", strconv.Itoa(round))
	}
	return sp
}

// recordNodeSpans folds the node-side phase spans piggybacked on an
// RPC response into the leader's tracer, parented under the RPC span
// that solicited them: the leader mints span IDs, stamps the node's
// identity as the span's process, and the flat retained list now holds
// the complete cross-process tree for telemetry.AssembleTrace. No-op
// when tracing is off or the response carried no spans.
func recordNodeSpans(t *telemetry.Tracer, rpc *telemetry.SpanHandle, nodeID string, spans []NodeSpan) {
	RecordRemoteSpans(t, rpc, nodeID, spans)
}

// RecordRemoteSpans re-parents phase spans reported by a remote process
// (a node, or a regional leader in the hierarchical topology) under the
// local RPC span that solicited them, stamping proc as the span's
// owning process. The root coordinator uses this to fold regional and
// node spans piggybacked on region RPCs into one cross-process trace
// tree. No-op when tracing is off or the response carried no spans.
func RecordRemoteSpans(t *telemetry.Tracer, rpc *telemetry.SpanHandle, proc string, spans []NodeSpan) {
	if t == nil || rpc == nil || len(spans) == 0 {
		return
	}
	for _, s := range spans {
		t.RecordSpan(telemetry.Span{
			TraceID:  rpc.TraceID(),
			ParentID: rpc.SpanID(),
			Name:     s.Name,
			Start:    s.Start(),
			End:      s.End(),
			Attrs:    map[string]string{"node": proc, "proc": proc},
		})
	}
}
