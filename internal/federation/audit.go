package federation

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"qens/internal/geometry"
)

// Audit logging: one JSON line per executed query, capturing what the
// leader decided and what it cost — the operational record an edge
// deployment needs for capacity planning and debugging selection
// behaviour after the fact. Raw data and model parameters are never
// logged.

// AuditRecord is one query's audit entry.
type AuditRecord struct {
	Time         time.Time     `json:"time"`
	QueryID      string        `json:"query_id"`
	Bounds       geometry.Rect `json:"bounds"`
	Selector     string        `json:"selector"`
	Aggregation  string        `json:"aggregation"`
	Participants []string      `json:"participants"`
	Failed       []string      `json:"failed,omitempty"`
	SamplesUsed  int           `json:"samples_used"`
	DataFraction float64       `json:"data_fraction"`
	TrainTimeMS  float64       `json:"train_time_ms"`
	WallTimeMS   float64       `json:"wall_time_ms"`
	BytesUp      int64         `json:"bytes_up"`
	BytesDown    int64         `json:"bytes_down"`
}

// AuditLog writes query audit records as JSON lines. It is safe for
// concurrent use.
type AuditLog struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
	n   int
}

// NewAuditLog writes records to w.
func NewAuditLog(w io.Writer) *AuditLog {
	return &AuditLog{w: w, now: time.Now}
}

// Record appends one result to the log.
func (a *AuditLog) Record(res *Result) error {
	if res == nil {
		return fmt.Errorf("federation: audit of nil result")
	}
	ids := make([]string, len(res.Participants))
	for i, p := range res.Participants {
		ids[i] = p.NodeID
	}
	rec := AuditRecord{
		Time:         a.now(),
		QueryID:      res.Query.ID,
		Bounds:       res.Query.Bounds,
		Selector:     res.Selector,
		Aggregation:  res.Aggregation.String(),
		Participants: ids,
		Failed:       res.Failed,
		SamplesUsed:  res.Stats.SamplesUsed,
		DataFraction: res.Stats.DataFraction(),
		TrainTimeMS:  float64(res.Stats.TrainTime) / float64(time.Millisecond),
		WallTimeMS:   float64(res.Stats.WallTime) / float64(time.Millisecond),
		BytesUp:      res.Stats.BytesUp,
		BytesDown:    res.Stats.BytesDown,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("federation: audit encode: %w", err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, err := a.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("federation: audit write: %w", err)
	}
	a.n++
	return nil
}

// Len returns the number of records written.
func (a *AuditLog) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// ReadAuditLog parses a JSONL audit stream back into records.
func ReadAuditLog(r io.Reader) ([]AuditRecord, error) {
	dec := json.NewDecoder(r)
	var out []AuditRecord
	for {
		var rec AuditRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("federation: audit decode at record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}
