package federation

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qens/internal/cluster"
	"qens/internal/ml"
	"qens/internal/rng"
)

// gatedClient is a LocalClient whose Summary can be made to block,
// pinning the registry's refresh lock mid-fetch.
type gatedClient struct {
	LocalClient
	block   atomic.Bool
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (c *gatedClient) Summary(ctx context.Context) (cluster.NodeSummary, error) {
	if c.block.Load() {
		c.once.Do(func() { close(c.entered) })
		<-c.gate
	}
	return c.LocalClient.Summary(ctx)
}

// TestLeaderHandlePushNonBlocking is the regression test for the
// push-delivery deadlock: the subscription handler runs on a transport
// connection's reader goroutine, so it must return promptly even while
// a TTL refresh holds the registry's refresh lock awaiting a summary
// RPC (possibly on that very connection). The queued push must still
// land once the refresh completes, and StopPush must terminate the
// applier goroutine and drop late frames.
func TestLeaderHandlePushNonBlocking(t *testing.T) {
	nodeA, err := NewNode("node-A", lineDataset(200, 2, 1, 0, 30, 7), 4, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	nodeB, err := NewNode("node-B", lineDataset(200, 2, 1, 20, 60, 8), 4, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	gc := &gatedClient{
		LocalClient: LocalClient{nodeB},
		gate:        make(chan struct{}),
		entered:     make(chan struct{}),
	}
	cfg := Config{Spec: ml.PaperLR(1), ClusterK: 4, LocalEpochs: 1, Seed: 1}
	leader, err := NewLeader(cfg, nil, []Client{LocalClient{nodeA}, gc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Summaries(); err != nil {
		t.Fatal(err)
	}
	if n, err := leader.StartPush(context.Background()); err != nil || n != 2 {
		t.Fatalf("StartPush: n=%d err=%v", n, err)
	}
	t.Cleanup(leader.StopPush)

	// Park a refresh mid-fetch: it holds the registry's refresh lock
	// until the gate opens, exactly the window where the old synchronous
	// handler wedged the reader goroutine.
	gc.block.Store(true)
	refreshed := make(chan error, 1)
	go func() {
		_, err := leader.Registry().Refresh(context.Background())
		refreshed <- err
	}()
	<-gc.entered

	sum := nodeA.Summary()
	sum.Epoch += 5
	returned := make(chan struct{})
	go func() { leader.handlePush(sum); close(returned) }()
	select {
	case <-returned:
	case <-time.After(2 * time.Second):
		t.Fatal("handlePush blocked behind the in-flight refresh")
	}

	gc.block.Store(false)
	close(gc.gate)
	if err := <-refreshed; err != nil {
		t.Fatal(err)
	}

	// The queued push drains through the applier once the refresh
	// releases the lock.
	deadline := time.Now().Add(5 * time.Second)
	for leader.Registry().Stats().PushApplied == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queued push never applied: %+v", leader.Registry().Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap, _ := leader.Registry().Current()
	if got := snap.NodeSummaryEpoch("node-A"); got != sum.Epoch {
		t.Fatalf("node-A epoch %d, want %d", got, sum.Epoch)
	}

	// StopPush terminates the applier goroutine and gates delivery off:
	// a late frame must not mutate the registry.
	leader.StopPush()
	stackDeadline := time.Now().Add(5 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		if !strings.Contains(stacks, "runPushApplier") {
			break
		}
		if time.Now().After(stackDeadline) {
			t.Fatalf("push applier goroutine survived StopPush:\n%s", stacks)
		}
		time.Sleep(10 * time.Millisecond)
	}
	late := nodeA.Summary()
	late.Epoch = sum.Epoch + 5
	leader.handlePush(late)
	time.Sleep(20 * time.Millisecond)
	if st := leader.Registry().Stats(); st.PushApplied != 1 {
		t.Fatalf("late push applied after StopPush: %+v", st)
	}
}
