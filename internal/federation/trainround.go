package federation

import (
	"context"
	"sync"
	"time"

	"qens/internal/ml"
	"qens/internal/selection"
)

// RoundOutcome is one participant's outcome from TrainRound: the raw
// training response plus the leader-observed wall time and failure
// reason ("" on success).
type RoundOutcome struct {
	NodeID  string
	Resp    TrainResponse
	Elapsed time.Duration
	Err     string
}

// Failed reports whether the round failed.
func (o RoundOutcome) Failed() bool { return o.Err != "" }

// TrainRound drives one training round for an explicit participant
// list with a caller-supplied spec (seed already drawn) and initial
// global parameters. This is the region-tier entry point: the root
// coordinator plans and aggregates globally, and each regional leader
// only fans the round out to its own shard — so unlike Execute, no
// selection happens here, no ensemble is built, and failures are
// reported per participant instead of aborting the round.
//
// Rounds run concurrently across participants. Per-round health EWMAs,
// the qens_leader_train_round_ms metrics and registry drift signalling
// (a node echoing a newer advertisement epoch invalidates this
// leader's snapshot) all fire exactly as they do on the Execute path.
// traceID/spanID, when non-empty, propagate to the nodes so their
// phase spans come back in each outcome for cross-process re-parenting
// at the root.
func (l *Leader) TrainRound(ctx context.Context, spec ml.Spec, initial ml.Params, participants []selection.Participant, localEpochs int, traceID, spanID string) []RoundOutcome {
	if localEpochs < 1 {
		localEpochs = l.cfg.LocalEpochs
	}
	outs := make([]RoundOutcome, len(participants))
	var wg sync.WaitGroup
	for i, p := range participants {
		wg.Add(1)
		go func(i int, p participantRef) {
			defer wg.Done()
			outs[i].NodeID = p.NodeID
			roundStart := time.Now()
			c, err := l.client(p.NodeID)
			if err != nil {
				outs[i].Elapsed = time.Since(roundStart)
				outs[i].Err = err.Error()
				return
			}
			resp, err := c.Train(ctx, TrainRequest{
				Spec:        spec,
				Params:      initial,
				Clusters:    p.Clusters,
				LocalEpochs: localEpochs,
				TraceID:     traceID,
				SpanID:      spanID,
			})
			outs[i].Elapsed = time.Since(roundStart)
			if err != nil {
				outs[i].Err = err.Error()
			} else {
				outs[i].Resp = resp
			}
		}(i, participantRef{NodeID: p.NodeID, Clusters: p.Clusters})
	}
	wg.Wait()
	for i := range outs {
		o := &outs[i]
		l.metrics.round(o.NodeID, o.Elapsed)
		l.health.ObserveRound(o.NodeID, o.Elapsed, o.Err)
		if o.Err == "" {
			l.signalEpoch(o.NodeID, o.Resp.SummaryEpoch)
		}
	}
	return outs
}
