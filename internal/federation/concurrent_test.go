package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/selection"
)

// TestConcurrentExecute hammers one leader from many goroutines mixing
// Execute, ExecuteParallel and ExecuteWithReuse — the contract the
// gateway's worker pool depends on. Run under -race (make check does)
// this validates the shared-RNG locking and the summary/warm-up cache
// guards.
func TestConcurrentExecute(t *testing.T) {
	fleet := testFleet(t)
	cache, err := NewReuseCache(0.9, 8)
	if err != nil {
		t.Fatal(err)
	}
	sel := selection.QueryDriven{Epsilon: 0.6, TopL: 2}
	rnd := selection.Random{L: 2}

	// A spread of overlapping queries so the reuse cache sees both
	// hits and misses concurrently.
	queries := make([]query.Query, 6)
	for i := range queries {
		lo := float64(5 * i)
		q, err := query.New(fmt.Sprintf("q-%d", i),
			geometry.MustRect([]float64{lo, -50}, []float64{lo + 30, 150}))
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				q := queries[(g+i)%len(queries)]
				var err error
				switch (g + i) % 4 {
				case 0:
					_, err = fleet.Leader.Execute(q, sel, WeightedAveraging)
				case 1:
					_, err = fleet.Leader.ExecuteParallel(q, sel, ModelAveraging)
				case 2:
					_, _, err = fleet.Leader.ExecuteWithReuse(cache, q, sel, WeightedAveraging)
				case 3:
					_, err = fleet.Leader.Execute(q, rnd, ModelAveraging)
				}
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d (%s): %w", g, i, q.ID, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentExecuteWithColdCaches starts every goroutine before
// the summary/warm-up caches are populated, so the lazy fetch itself
// races unless serialized.
func TestConcurrentExecuteWithColdCaches(t *testing.T) {
	fleet := testFleet(t)
	q := midQuery(t)
	sel := selection.GameTheory{L: 2} // exercises the warm-up path too
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := fleet.Leader.Execute(q, sel, ModelAveraging); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestExecuteContextExpired: an already-expired deadline must return
// the context error without touching the fleet.
func TestExecuteContextExpired(t *testing.T) {
	fleet := testFleet(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	start := time.Now()
	_, err := fleet.Leader.ExecuteContext(ctx, midQuery(t), selection.AllNodes{}, ModelAveraging)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("expired query did not return promptly")
	}
	_, err = fleet.Leader.ExecuteParallelContext(ctx, midQuery(t), selection.AllNodes{}, ModelAveraging)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("parallel err = %v, want context.DeadlineExceeded", err)
	}
	if _, err := fleet.Leader.ExecuteRoundsContext(ctx, midQuery(t), selection.AllNodes{}, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("rounds err = %v, want context.DeadlineExceeded", err)
	}
}

// TestExecuteContextCancelMidQuery: cancellation between training
// rounds aborts the remaining participants.
func TestExecuteContextCancelMidQuery(t *testing.T) {
	fleet := testFleet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// LocalClient checks ctx before each round; with a canceled ctx
	// selection itself may run but no training must complete.
	res, err := fleet.Leader.ExecuteContext(ctx, midQuery(t), selection.AllNodes{}, ModelAveraging)
	if err == nil {
		t.Fatalf("expected error, got result with %d params", len(res.LocalParams))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
