package federation

import (
	"math"
	"testing"

	"qens/internal/ml"
)

// trainedParams trains a tiny linear model on y = slope*x and returns
// its params.
func trainedParams(t *testing.T, slope float64, seed uint64) ml.Params {
	t.Helper()
	spec := ml.PaperLR(1)
	spec.Seed = seed
	m := spec.MustNew()
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		xv := float64(i%40) - 20
		x = append(x, []float64{xv})
		y = append(y, slope*xv)
	}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	return m.Params()
}

func TestEnsembleModelAveragingEq6(t *testing.T) {
	// Two models: slopes 1 and 3. Plain averaging of predictions
	// must behave like slope 2.
	p1 := trainedParams(t, 1, 1)
	p2 := trainedParams(t, 3, 2)
	e, err := NewEnsemble(ml.PaperLR(1), []ml.Params{p1, p2}, []float64{0.9, 0.1}, ModelAveraging)
	if err != nil {
		t.Fatal(err)
	}
	// Ranks must be ignored by Eq. 6.
	w := e.Weights()
	if w[0] != 0.5 || w[1] != 0.5 {
		t.Fatalf("averaging weights %v, want [0.5 0.5]", w)
	}
	got := e.Predict([]float64{10})
	if math.Abs(got-20) > 1.5 {
		t.Fatalf("averaged prediction %v at x=10, want ~20", got)
	}
}

func TestEnsembleWeightedAveragingEq7(t *testing.T) {
	p1 := trainedParams(t, 1, 3)
	p2 := trainedParams(t, 3, 4)
	// λ = (0.75, 0.25) -> effective slope 1.5.
	e, err := NewEnsemble(ml.PaperLR(1), []ml.Params{p1, p2}, []float64{3, 1}, WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}
	w := e.Weights()
	if math.Abs(w[0]-0.75) > 1e-12 || math.Abs(w[1]-0.25) > 1e-12 {
		t.Fatalf("weights %v, want [0.75 0.25]", w)
	}
	if math.Abs(w[0]+w[1]-1) > 1e-12 {
		t.Fatal("λ must sum to 1 (Eq. 7)")
	}
	got := e.Predict([]float64{10})
	if math.Abs(got-15) > 1.5 {
		t.Fatalf("weighted prediction %v at x=10, want ~15", got)
	}
}

func TestEnsembleZeroRanksFallBack(t *testing.T) {
	p := trainedParams(t, 2, 5)
	e, err := NewEnsemble(ml.PaperLR(1), []ml.Params{p, p}, []float64{0, 0}, WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}
	w := e.Weights()
	if w[0] != 0.5 || w[1] != 0.5 {
		t.Fatalf("zero-rank weights %v", w)
	}
}

func TestEnsembleErrors(t *testing.T) {
	p := trainedParams(t, 1, 6)
	if _, err := NewEnsemble(ml.PaperLR(1), nil, nil, ModelAveraging); err == nil {
		t.Fatal("accepted empty ensemble")
	}
	if _, err := NewEnsemble(ml.PaperLR(1), []ml.Params{p}, []float64{1, 2}, ModelAveraging); err == nil {
		t.Fatal("accepted rank length mismatch")
	}
	if _, err := NewEnsemble(ml.PaperLR(1), []ml.Params{p}, []float64{-1}, WeightedAveraging); err == nil {
		t.Fatal("accepted negative rank")
	}
	if _, err := NewEnsemble(ml.PaperLR(1), []ml.Params{p}, []float64{1}, Aggregation(99)); err == nil {
		t.Fatal("accepted unknown aggregation")
	}
	// Incompatible params.
	if _, err := NewEnsemble(ml.PaperLR(2), []ml.Params{p}, []float64{1}, ModelAveraging); err == nil {
		t.Fatal("accepted incompatible params")
	}
}

func TestEnsemblePredictBatchAndSize(t *testing.T) {
	p := trainedParams(t, 1, 7)
	e, err := NewEnsemble(ml.PaperLR(1), []ml.Params{p}, []float64{1}, ModelAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if e.Size() != 1 {
		t.Fatalf("size %d", e.Size())
	}
	out := e.PredictBatch([][]float64{{1}, {2}})
	if len(out) != 2 {
		t.Fatalf("batch output %v", out)
	}
}

func TestFedAvgParams(t *testing.T) {
	a := ml.Params{Kind: "linear", Dims: []int{1, 1}, Values: []float64{2, 0}}
	b := ml.Params{Kind: "linear", Dims: []int{1, 1}, Values: []float64{4, 2}}
	avg, err := FedAvgParams([]ml.Params{a, b}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Values[0] != 3 || avg.Values[1] != 1 {
		t.Fatalf("fedavg = %v", avg.Values)
	}
	// Weighted.
	avg, err = FedAvgParams([]ml.Params{a, b}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Values[0] != 2.5 {
		t.Fatalf("weighted fedavg = %v", avg.Values)
	}
	// Zero weights degrade to uniform.
	avg, err = FedAvgParams([]ml.Params{a, b}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Values[0] != 3 {
		t.Fatalf("zero-weight fedavg = %v", avg.Values)
	}
}

func TestFedAvgParamsErrors(t *testing.T) {
	a := ml.Params{Kind: "linear", Dims: []int{1, 1}, Values: []float64{1, 1}}
	c := ml.Params{Kind: "linear", Dims: []int{2, 1}, Values: []float64{1, 1, 1}}
	if _, err := FedAvgParams(nil, nil); err == nil {
		t.Fatal("accepted empty")
	}
	if _, err := FedAvgParams([]ml.Params{a}, []float64{1, 2}); err == nil {
		t.Fatal("accepted weight mismatch")
	}
	if _, err := FedAvgParams([]ml.Params{a, c}, []float64{1, 1}); err == nil {
		t.Fatal("accepted incompatible params")
	}
	if _, err := FedAvgParams([]ml.Params{a}, []float64{-1}); err == nil {
		t.Fatal("accepted negative weight")
	}
}

func TestAggregationString(t *testing.T) {
	if ModelAveraging.String() != "averaging" || WeightedAveraging.String() != "weighted" {
		t.Fatal("aggregation names wrong")
	}
	if Aggregation(42).String() == "" {
		t.Fatal("unknown aggregation should still format")
	}
}
