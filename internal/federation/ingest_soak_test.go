package federation

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// TestIngestConcurrentSoak hammers the streaming path from every side
// at once: ingesters feeding mini-batches (incremental requantization),
// a forced full requantizer (the SIGHUP path), trainers and summary
// readers. Run under -race (make check does); the assertions pin that
// every observed snapshot is internally consistent and the ingest
// accounting adds up afterwards.
func TestIngestConcurrentSoak(t *testing.T) {
	d := lineDataset(300, 2, 1, 0, 10, 41)
	node, err := NewNode("soak", d, 4, rng.New(41), WithTrainConcurrency(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := node.EnableIngest(IngestConfig{
		BatchSize: 16,
		// Keep the detector out of the way: this test exercises
		// concurrency, not escalation (escalations still may happen and
		// must be safe).
		EscalateError: 50, EscalateAssign: 0.95,
	}); err != nil {
		t.Fatal(err)
	}
	spec := ml.PaperLR(1)

	const (
		ingesters = 2
		trainers  = 2
		readers   = 2
		rounds    = 25
	)
	errs := make(chan error, (ingesters+trainers+readers+1)*rounds)
	var wg sync.WaitGroup

	for w := 0; w < ingesters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(100 + w))
			for r := 0; r < rounds; r++ {
				batch := make([][]float64, 8)
				for i := range batch {
					x := src.Uniform(0, 10)
					batch[i] = []float64{x, 2*x + 1 + src.Normal(0, 0.3)}
				}
				// AddSamples routes through Ingest when streaming is on.
				if err := node.AddSamples(batch); err != nil {
					errs <- fmt.Errorf("ingest: %w", err)
				}
			}
		}(w)
	}
	// One goroutine forces full re-runs mid-stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds/5; r++ {
			if err := node.Requantize(); err != nil {
				errs <- fmt.Errorf("requantize: %w", err)
			}
		}
	}()
	for w := 0; w < trainers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				resp, err := node.Train(TrainRequest{Spec: spec, LocalEpochs: 1})
				if err != nil {
					errs <- fmt.Errorf("train: %w", err)
					continue
				}
				if resp.SamplesUsed == 0 || resp.SamplesUsed != resp.TotalSamples {
					errs <- fmt.Errorf("torn train response: used %d of %d", resp.SamplesUsed, resp.TotalSamples)
				}
			}
		}()
	}
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sum := node.Summary()
				if err := sum.Validate(); err != nil {
					errs <- fmt.Errorf("summary: %w", err)
				}
				if _, ok := node.IngestStats(); !ok {
					errs <- fmt.Errorf("ingest stats vanished")
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The buffer may hold a sub-batch remainder, but everything flushed
	// must be accounted for: each ingester moved 8×rounds rows.
	st, ok := node.IngestStats()
	if !ok {
		t.Fatal("ingestion not enabled")
	}
	if st.Batches == 0 || st.IncrementalRequants == 0 {
		t.Fatalf("incremental path never ran: %+v", st)
	}
	if st.FullRequants < int64(rounds/5) {
		t.Fatalf("forced full requantizations lost: %+v", st)
	}
	if sum := node.Summary(); sum.TotalSamples < 300 {
		t.Fatalf("ingested rows lost: %d total samples", sum.TotalSamples)
	}
}

// TestIngestDisabledGoldenStatelessSelectors pins that with ingestion
// disabled the freshness refactor is invisible to the data plane: a
// fleet with push subscriptions armed (but nothing streaming) answers
// every stateless selector bit-exactly like an untouched mirror fleet
// — same participants, same local params, same ensemble weights, same
// held-out MSE. Together with TestEngineTrainGoldenEquivalence (which
// pins the engine against the pre-engine request path) this anchors
// the whole chain back to the seed behavior.
func TestIngestDisabledGoldenStatelessSelectors(t *testing.T) {
	plain := testFleet(t)
	pushy := testFleet(t)
	if _, err := pushy.Leader.Summaries(); err != nil {
		t.Fatal(err)
	}
	if n, err := pushy.Leader.StartPush(context.Background()); err != nil || n != 4 {
		t.Fatalf("StartPush: n=%d err=%v", n, err)
	}
	t.Cleanup(pushy.Leader.StopPush)

	selectors := []selection.Selector{
		selection.QueryDriven{Epsilon: 0.6, TopL: 2},
		selection.QueryDriven{Epsilon: 0.6, Psi: 0.2},
		selection.Random{L: 2},
		selection.AllNodes{},
		selection.GameTheory{L: 2},
	}
	for _, sel := range selectors {
		t.Run(sel.Name(), func(t *testing.T) {
			var queries []query.Query
			for i, rect := range [][4]float64{
				{10, -50, 40, 150},
				{45, -50, 80, 200},
			} {
				q, err := query.New(fmt.Sprintf("golden-%d", i),
					geometry.MustRect([]float64{rect[0], rect[1]}, []float64{rect[2], rect[3]}))
				if err != nil {
					t.Fatal(err)
				}
				queries = append(queries, q)
			}
			for _, q := range queries {
				a, errA := plain.Execute(q, sel, WeightedAveraging)
				b, errB := pushy.Execute(q, sel, WeightedAveraging)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("error divergence: %v vs %v", errA, errB)
				}
				if errA != nil {
					continue
				}
				if !reflect.DeepEqual(a.Participants, b.Participants) {
					t.Fatalf("participants diverge:\n%+v\nvs\n%+v", a.Participants, b.Participants)
				}
				if !reflect.DeepEqual(a.LocalParams, b.LocalParams) {
					t.Fatalf("local params diverge")
				}
				if !reflect.DeepEqual(a.Ensemble.Weights(), b.Ensemble.Weights()) {
					t.Fatalf("ensemble weights diverge: %v vs %v", a.Ensemble.Weights(), b.Ensemble.Weights())
				}
				mseA, nA, okA := EvaluateResult(a, plain.Test)
				mseB, nB, okB := EvaluateResult(b, pushy.Test)
				if okA != okB || nA != nB || mseA != mseB {
					t.Fatalf("held-out MSE diverges: %v/%d/%v vs %v/%d/%v", mseA, nA, okA, mseB, nB, okB)
				}
			}
		})
	}
}
