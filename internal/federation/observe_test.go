package federation

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"qens/internal/dataset"
	"qens/internal/ml"
	"qens/internal/rng"
	"qens/internal/selection"
	"qens/internal/telemetry"
)

// healthyFleet is failureFleet without the outage: all three nodes
// train successfully.
func healthyFleet(t *testing.T) *Leader {
	t.Helper()
	data := []*dataset.Dataset{
		lineDataset(300, 2, 1, 0, 40, 60),
		lineDataset(300, 2, 1, 10, 50, 61),
		lineDataset(300, 2, 1, 20, 60, 62),
	}
	var clients []Client
	for i, d := range data {
		n, err := NewNode(fmt.Sprintf("node-%d", i), d, 4, rng.New(uint64(80+i)))
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, LocalClient{n})
	}
	leader, err := NewLeader(Config{
		Spec: ml.PaperLR(1), ClusterK: 4, LocalEpochs: 10, Seed: 3,
	}, data[0], clients)
	if err != nil {
		t.Fatal(err)
	}
	return leader
}

// TestNodeRoundsRecorded: a healthy query records one NodeRound per
// participant, in execution order, with positive elapsed times.
func TestNodeRoundsRecorded(t *testing.T) {
	leader := healthyFleet(t)
	res, err := leader.Execute(midQuery(t), selection.AllNodes{}, ModelAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeRounds) != len(res.Participants) {
		t.Fatalf("NodeRounds = %d, participants = %d", len(res.NodeRounds), len(res.Participants))
	}
	for i, nr := range res.NodeRounds {
		if nr.NodeID != res.Participants[i].NodeID {
			t.Fatalf("round %d node %s, participant %s", i, nr.NodeID, res.Participants[i].NodeID)
		}
		if nr.Failed() || nr.Err != "" {
			t.Fatalf("healthy round reported failure: %+v", nr)
		}
		if nr.Elapsed < 0 {
			t.Fatalf("negative elapsed: %+v", nr)
		}
	}
}

// TestNodeRoundsShowToleratedFailure: with TolerateFailures the
// skipped node must stay visible in NodeRounds with its error string
// and a recorded elapsed time — the satellite requirement that failure
// skips are not silent.
func TestNodeRoundsShowToleratedFailure(t *testing.T) {
	leader, _, _ := failureFleet(t, true)
	res, err := leader.Execute(midQuery(t), selection.AllNodes{}, ModelAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeRounds) != 3 {
		t.Fatalf("NodeRounds = %d, want 3 (failed rounds must be recorded)", len(res.NodeRounds))
	}
	var failed *NodeRound
	for i := range res.NodeRounds {
		if res.NodeRounds[i].NodeID == "node-1" {
			failed = &res.NodeRounds[i]
		}
	}
	if failed == nil {
		t.Fatalf("failed node-1 missing from NodeRounds %+v", res.NodeRounds)
	}
	if !failed.Failed() || !strings.Contains(failed.Err, "simulated edge outage") {
		t.Fatalf("failed round = %+v, want simulated edge outage", *failed)
	}
	if failed.Elapsed < 0 {
		t.Fatalf("failed round has negative elapsed: %+v", failed)
	}
	// Survivors are recorded as healthy rounds.
	healthy := 0
	for _, nr := range res.NodeRounds {
		if !nr.Failed() {
			healthy++
		}
	}
	if healthy != 2 {
		t.Fatalf("healthy rounds = %d, want 2", healthy)
	}
}

// TestExecuteParallelNodeRounds: the concurrent path records the same
// per-node attribution as the serial one, including failures.
func TestExecuteParallelNodeRounds(t *testing.T) {
	leader, _, _ := failureFleet(t, true)
	res, err := leader.ExecuteParallel(midQuery(t), selection.AllNodes{}, ModelAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeRounds) != 3 {
		t.Fatalf("NodeRounds = %d, want 3", len(res.NodeRounds))
	}
	byNode := map[string]NodeRound{}
	for _, nr := range res.NodeRounds {
		byNode[nr.NodeID] = nr
	}
	if nr := byNode["node-1"]; !nr.Failed() || !strings.Contains(nr.Err, "simulated edge outage") {
		t.Fatalf("node-1 round = %+v", nr)
	}
	for _, id := range []string{"node-0", "node-2"} {
		if nr := byNode[id]; nr.Failed() {
			t.Fatalf("%s round failed: %+v", id, nr)
		}
	}
}

// TestTracedFailureSpans: a tolerated failure shows up as an errored
// train span inside the query's trace.
func TestTracedFailureSpans(t *testing.T) {
	leader, _, _ := failureFleet(t, true)
	var buf bytes.Buffer
	tr := telemetry.NewTracer(&buf)
	leader.SetTracer(tr)
	if _, err := leader.Execute(midQuery(t), selection.AllNodes{}, ModelAveraging); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	spans, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var root telemetry.Span
	trains := 0
	erroredTrain := false
	for _, sp := range spans {
		switch sp.Name {
		case "query":
			root = sp
		case "train":
			trains++
			if sp.Error != "" && sp.Attrs["node"] == "node-1" {
				erroredTrain = true
			}
		}
	}
	if root.TraceID == "" {
		t.Fatal("no query root span")
	}
	if trains != 3 {
		t.Fatalf("train spans = %d, want 3", trains)
	}
	if !erroredTrain {
		t.Fatal("node-1 failure not attributed to an errored train span")
	}
	for _, sp := range spans {
		if sp.TraceID != root.TraceID {
			t.Fatalf("span %s escaped the trace: %+v", sp.Name, sp)
		}
	}
}

// TestExecuteAbortNodeRoundStillRecorded: without tolerance the query
// aborts, but the error must name the failing node.
func TestExecuteAbortNamesNode(t *testing.T) {
	leader, _, _ := failureFleet(t, false)
	_, err := leader.Execute(midQuery(t), selection.AllNodes{}, ModelAveraging)
	if err == nil || !strings.Contains(err.Error(), "node-1") {
		t.Fatalf("abort error = %v, want it to name node-1", err)
	}
}
