// Package federation implements the distributed-learning mechanics of
// §III-A and §IV: participant nodes that quantize their local data and
// train models incrementally over query-supporting clusters, a leader
// that ranks and selects participants per query, and the two
// prediction-aggregation rules (Model Averaging, Eq. 6, and ranking-
// Weighted Averaging, Eq. 7).
//
// The leader talks to participants through the Client interface, so
// the same orchestration code runs over in-process nodes (LocalClient,
// used by the experiments) and over TCP (internal/transport).
package federation

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"qens/internal/cluster"
	"qens/internal/dataset"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/rng"
)

// Node is a participant edge node: it owns a local dataset, a k-means
// quantization of that dataset, and the compute to train models on
// request. It never ships raw data — only cluster summaries, model
// parameters and scalar losses.
type Node struct {
	id    string
	data  *dataset.Dataset
	quant *cluster.Quantization
	k     int
	src   *rng.Source
	// summaryEpoch versions the node's advertisement: bumped on every
	// requantization, echoed on summaries and training responses so
	// the leader's registry can detect drift out-of-band.
	summaryEpoch atomic.Uint64
}

// NewNode quantizes data into k clusters and returns the participant.
func NewNode(id string, data *dataset.Dataset, k int, src *rng.Source) (*Node, error) {
	if id == "" {
		return nil, errors.New("federation: empty node id")
	}
	if data == nil || data.Len() == 0 {
		return nil, fmt.Errorf("federation: node %s has no data", id)
	}
	if k < 1 {
		return nil, fmt.Errorf("federation: node %s: invalid cluster count %d", id, k)
	}
	quant, err := cluster.Quantize(data, cluster.Config{K: k}, src.Split())
	if err != nil {
		return nil, fmt.Errorf("federation: node %s: %w", id, err)
	}
	n := &Node{id: id, data: data, quant: quant, k: k, src: src}
	n.summaryEpoch.Store(1)
	return n, nil
}

// NewNodeFromQuantization builds a participant around a pre-computed
// quantization (e.g. cluster.GridQuantize), for deployments that use a
// synopsis other than k-means. Requantize on such a node re-runs
// k-means with K equal to the current cluster count.
func NewNodeFromQuantization(id string, quant *cluster.Quantization, src *rng.Source) (*Node, error) {
	if id == "" {
		return nil, errors.New("federation: empty node id")
	}
	if quant == nil || quant.Data == nil || quant.Data.Len() == 0 {
		return nil, fmt.Errorf("federation: node %s has no quantization", id)
	}
	n := &Node{
		id:    id,
		data:  quant.Data,
		quant: quant,
		k:     len(quant.Result.Clusters),
		src:   src,
	}
	n.summaryEpoch.Store(1)
	return n, nil
}

// AddSamples appends newly collected rows to the node's local dataset
// and re-runs the quantization so the next advertisement reflects the
// fresh data space (the leader must InvalidateSummaries to pick it
// up). Rows must match the node's schema.
func (n *Node) AddSamples(rows [][]float64) error {
	for i, r := range rows {
		if err := n.data.Append(r); err != nil {
			return fmt.Errorf("federation: node %s row %d: %w", n.id, i, err)
		}
	}
	return n.Requantize()
}

// Requantize recomputes the node's k-means quantization over the
// current local dataset and bumps the advertisement epoch, so leaders
// that see the new epoch echoed on later RPCs know their cached
// summaries drifted.
func (n *Node) Requantize() error {
	quant, err := cluster.Quantize(n.data, cluster.Config{K: n.k}, n.src.Split())
	if err != nil {
		return fmt.Errorf("federation: node %s: %w", n.id, err)
	}
	n.quant = quant
	n.summaryEpoch.Add(1)
	return nil
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.id }

// Data exposes the local dataset for in-process test evaluation; the
// federation protocol itself never reads it remotely.
func (n *Node) Data() *dataset.Dataset { return n.data }

// SummaryEpoch returns the node's current advertisement version.
func (n *Node) SummaryEpoch() uint64 { return n.summaryEpoch.Load() }

// Summary returns the cluster advertisement sent to the leader,
// stamped with the node's current epoch.
func (n *Node) Summary() cluster.NodeSummary {
	s := n.quant.Summarize(n.id)
	s.Epoch = n.summaryEpoch.Load()
	return s
}

// TrainRequest asks a node to continue training a model locally.
type TrainRequest struct {
	// Spec describes the model architecture (must match Params).
	Spec ml.Spec `json:"spec"`
	// Params is the current global model w sent by the leader.
	Params ml.Params `json:"params"`
	// Clusters lists the supporting clusters to train on, in order;
	// nil means train on the whole local dataset (baseline
	// behaviour).
	Clusters []int `json:"clusters,omitempty"`
	// LocalEpochs is the paper's E: rounds of local iterations per
	// supporting cluster (or over the whole dataset when Clusters
	// is nil).
	LocalEpochs int `json:"local_epochs"`
	// TraceID/SpanID optionally attribute this round to the
	// originating query's trace (see internal/telemetry); transports
	// propagate them so remote daemon logs are correlatable.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// TrainResponse carries the updated local model and accounting.
type TrainResponse struct {
	// Params is the locally updated model w_i^E.
	Params ml.Params `json:"params"`
	// SamplesUsed is how many local samples participated.
	SamplesUsed int `json:"samples_used"`
	// TotalSamples is the node's |D_i|.
	TotalSamples int `json:"total_samples"`
	// TrainTime is the wall-clock training duration on the node.
	TrainTime time.Duration `json:"train_time"`
	// SummaryEpoch echoes the node's current advertisement version.
	// A value newer than what the leader's registry snapshot recorded
	// means the node requantized since the advertisement was fetched —
	// the drift signal that triggers a registry refresh.
	SummaryEpoch uint64 `json:"summary_epoch,omitempty"`
}

// Train implements the §IV-B participant step: load the global model,
// then run E epochs over each requested supporting cluster in turn
// (each cluster acting as a mini-batch per the §IV-A Remark), or over
// the whole dataset when no clusters are specified.
func (n *Node) Train(req TrainRequest) (TrainResponse, error) {
	return n.TrainContext(context.Background(), req)
}

// TrainContext is Train with deadline/cancellation support: the
// context is checked before the round starts and between supporting
// clusters, so an expired query stops consuming node compute at the
// next cluster boundary (individual PartialFit calls are not
// interruptible).
func (n *Node) TrainContext(ctx context.Context, req TrainRequest) (TrainResponse, error) {
	if err := ctx.Err(); err != nil {
		return TrainResponse{}, fmt.Errorf("federation: node %s: %w", n.id, err)
	}
	if req.LocalEpochs < 1 {
		return TrainResponse{}, fmt.Errorf("federation: node %s: local epochs %d < 1", n.id, req.LocalEpochs)
	}
	model, err := n.buildModel(req.Spec, req.Params)
	if err != nil {
		return TrainResponse{}, err
	}
	start := time.Now()
	used := 0
	if len(req.Clusters) == 0 {
		x, y := n.data.XY()
		if err := model.PartialFit(x, y, req.LocalEpochs); err != nil {
			return TrainResponse{}, fmt.Errorf("federation: node %s: %w", n.id, err)
		}
		used = n.data.Len()
	} else {
		for _, c := range req.Clusters {
			if err := ctx.Err(); err != nil {
				return TrainResponse{}, fmt.Errorf("federation: node %s: %w", n.id, err)
			}
			cd, err := n.quant.ClusterData(c)
			if err != nil {
				return TrainResponse{}, fmt.Errorf("federation: node %s: %w", n.id, err)
			}
			if cd.Len() == 0 {
				continue
			}
			x, y := cd.XY()
			if err := model.PartialFit(x, y, req.LocalEpochs); err != nil {
				return TrainResponse{}, fmt.Errorf("federation: node %s cluster %d: %w", n.id, c, err)
			}
			used += cd.Len()
		}
		if used == 0 {
			return TrainResponse{}, fmt.Errorf("federation: node %s: no data in requested clusters %v", n.id, req.Clusters)
		}
	}
	return TrainResponse{
		Params:       model.Params(),
		SamplesUsed:  used,
		TotalSamples: n.data.Len(),
		TrainTime:    time.Since(start),
		SummaryEpoch: n.summaryEpoch.Load(),
	}, nil
}

// EvalRequest asks a node to score a model against its local data.
type EvalRequest struct {
	Spec   ml.Spec   `json:"spec"`
	Params ml.Params `json:"params"`
	// Bounds optionally restricts evaluation to local samples
	// falling inside the rectangle (used to score per-query loss
	// on the query's data subspace). Nil evaluates on everything.
	Bounds *geometry.Rect `json:"bounds,omitempty"`
	// TraceID/SpanID optionally attribute this evaluation to the
	// originating query's trace.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// EvalResponse carries the local loss.
type EvalResponse struct {
	// MSE is the mean squared error over the evaluated samples.
	MSE float64 `json:"mse"`
	// Samples is how many local samples were evaluated.
	Samples int `json:"samples"`
}

// Evaluate implements the pre-test and scoring step: the node runs the
// provided model over (a subspace of) its local data and reports the
// loss — the data itself never leaves the node.
func (n *Node) Evaluate(req EvalRequest) (EvalResponse, error) {
	model, err := n.buildModel(req.Spec, req.Params)
	if err != nil {
		return EvalResponse{}, err
	}
	data := n.data
	if req.Bounds != nil {
		data = n.data.FilterInRect(*req.Bounds)
	}
	if data.Len() == 0 {
		return EvalResponse{Samples: 0}, nil
	}
	x, y := data.XY()
	return EvalResponse{MSE: ml.MSE(y, model.PredictBatch(x)), Samples: data.Len()}, nil
}

// buildModel instantiates the spec and loads params into it.
func (n *Node) buildModel(spec ml.Spec, params ml.Params) (ml.Model, error) {
	spec.Seed = uint64(n.src.Int63())
	model, err := spec.New()
	if err != nil {
		return nil, fmt.Errorf("federation: node %s: %w", n.id, err)
	}
	if len(params.Values) > 0 {
		if err := model.SetParams(params); err != nil {
			return nil, fmt.Errorf("federation: node %s: %w", n.id, err)
		}
	}
	return model, nil
}
