// Package federation implements the distributed-learning mechanics of
// §III-A and §IV: participant nodes that quantize their local data and
// train models incrementally over query-supporting clusters, a leader
// that ranks and selects participants per query, and the two
// prediction-aggregation rules (Model Averaging, Eq. 6, and ranking-
// Weighted Averaging, Eq. 7).
//
// The leader talks to participants through the Client interface, so
// the same orchestration code runs over in-process nodes (LocalClient,
// used by the experiments) and over TCP (internal/transport).
package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qens/internal/cluster"
	"qens/internal/dataset"
	"qens/internal/engine"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/rng"
)

// Node is a participant edge node: it owns a local dataset, a k-means
// quantization of that dataset, and the compute to train models on
// request. It never ships raw data — only cluster summaries, model
// parameters and scalar losses.
//
// All node state transits through an internal/engine.Engine: jobs
// (Train/Evaluate) execute against epoch-pinned snapshots under a
// bounded-concurrency executor, and mutations (AddSamples/Requantize)
// publish fresh snapshots copy-on-write, so a Node is safe for fully
// concurrent use.
type Node struct {
	id  string
	k   int
	src *rng.Source
	eng *engine.Engine

	// ingestMu guards ingest, the optional streaming ingestion state
	// (see ingest.go); nil means the classic full-requantize path.
	ingestMu sync.Mutex
	ingest   *ingester
}

// NodeOption customizes node construction.
type NodeOption func(*nodeOptions)

type nodeOptions struct {
	trainConcurrency int
}

// WithTrainConcurrency bounds how many Train/Evaluate jobs the node
// executes at once (the engine's semaphore width); excess requests
// queue. Zero or negative keeps the default (GOMAXPROCS).
func WithTrainConcurrency(n int) NodeOption {
	return func(o *nodeOptions) { o.trainConcurrency = n }
}

// NewNode quantizes data into k clusters and returns the participant.
func NewNode(id string, data *dataset.Dataset, k int, src *rng.Source, opts ...NodeOption) (*Node, error) {
	if id == "" {
		return nil, errors.New("federation: empty node id")
	}
	if data == nil || data.Len() == 0 {
		return nil, fmt.Errorf("federation: node %s has no data", id)
	}
	if k < 1 {
		return nil, fmt.Errorf("federation: node %s: invalid cluster count %d", id, k)
	}
	quant, err := cluster.Quantize(data, cluster.Config{K: k}, src.Split())
	if err != nil {
		return nil, fmt.Errorf("federation: node %s: %w", id, err)
	}
	return newNode(id, data, quant, k, src, opts), nil
}

// NewNodeFromQuantization builds a participant around a pre-computed
// quantization (e.g. cluster.GridQuantize), for deployments that use a
// synopsis other than k-means. Requantize on such a node re-runs
// k-means with K equal to the current cluster count.
func NewNodeFromQuantization(id string, quant *cluster.Quantization, src *rng.Source, opts ...NodeOption) (*Node, error) {
	if id == "" {
		return nil, errors.New("federation: empty node id")
	}
	if quant == nil || quant.Data == nil || quant.Data.Len() == 0 {
		return nil, fmt.Errorf("federation: node %s has no quantization", id)
	}
	return newNode(id, quant.Data, quant, len(quant.Result.Clusters), src, opts), nil
}

// newNode wires the engine around the initial snapshot (epoch 1).
func newNode(id string, data *dataset.Dataset, quant *cluster.Quantization, k int, src *rng.Source, opts []NodeOption) *Node {
	var o nodeOptions
	for _, opt := range opts {
		opt(&o)
	}
	eng := engine.New(engine.Config{NodeID: id, Parallelism: o.trainConcurrency}, data, quant)
	return &Node{id: id, k: k, src: src, eng: eng}
}

// AddSamples appends newly collected rows to the node's local dataset
// and re-runs the quantization so the next advertisement reflects the
// fresh data space (the leader must InvalidateSummaries to pick it
// up). Rows must match the node's schema.
//
// The update is copy-on-write: concurrent Train/Evaluate jobs keep the
// snapshot they started with and the new state becomes visible — with
// a bumped epoch — only to jobs admitted after AddSamples returns.
//
// With streaming ingestion enabled (EnableIngest) the rows instead
// enter the bounded ingest buffer and reach the quantization through
// incremental mini-batch updates; see ingest.go.
func (n *Node) AddSamples(rows [][]float64) error {
	n.ingestMu.Lock()
	ing := n.ingest
	n.ingestMu.Unlock()
	if ing != nil {
		return n.Ingest(rows)
	}
	err := n.eng.Mutate(func(cur *engine.Snapshot) (*dataset.Dataset, *cluster.Quantization, error) {
		data, err := cur.Data.CopyAppend(rows)
		if err != nil {
			return nil, nil, err
		}
		quant, err := cluster.Quantize(data, cluster.Config{K: n.k}, n.src.Split())
		if err != nil {
			return nil, nil, err
		}
		return data, quant, nil
	})
	if err != nil {
		return fmt.Errorf("federation: node %s: %w", n.id, err)
	}
	return nil
}

// Requantize recomputes the node's k-means quantization over the
// current local dataset and bumps the advertisement epoch, so leaders
// that see the new epoch echoed on later RPCs know their cached
// summaries drifted.
// With streaming ingestion enabled this is the forced full re-run
// (the SIGHUP path): it drains the ingest buffer and re-anchors the
// drift detector through the same machinery autonomous escalation
// uses.
func (n *Node) Requantize() error {
	n.ingestMu.Lock()
	ing := n.ingest
	n.ingestMu.Unlock()
	if ing != nil {
		return n.forceFullRequantize(ing)
	}
	err := n.eng.Mutate(func(cur *engine.Snapshot) (*dataset.Dataset, *cluster.Quantization, error) {
		quant, err := cluster.Quantize(cur.Data, cluster.Config{K: n.k}, n.src.Split())
		if err != nil {
			return nil, nil, err
		}
		return cur.Data, quant, nil
	})
	if err != nil {
		return fmt.Errorf("federation: node %s: %w", n.id, err)
	}
	return nil
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.id }

// Data exposes the current local dataset snapshot for in-process test
// evaluation; the federation protocol itself never reads it remotely.
func (n *Node) Data() *dataset.Dataset { return n.eng.Current().Data }

// Engine exposes the node's training engine (metrics, concurrency
// introspection); primarily for daemons and tests.
func (n *Node) Engine() *engine.Engine { return n.eng }

// SummaryEpoch returns the node's current advertisement version.
func (n *Node) SummaryEpoch() uint64 { return n.eng.Epoch() }

// OnAdvertise registers fn to run after every mutation that bumps the
// advertisement epoch — the node-push seam. Immaterial incremental
// batches (published under the current epoch) do not fire it. fn runs
// on the mutating goroutine and should hand off quickly; it receives
// the freshly advertised summary. The returned func removes the
// registration (see engine.OnEpochBump).
func (n *Node) OnAdvertise(fn func(cluster.NodeSummary)) (unsubscribe func()) {
	return n.eng.OnEpochBump(func(uint64) {
		fn(n.Summary())
	})
}

// Summary returns the cluster advertisement sent to the leader,
// stamped with the node's current epoch. The quantization and epoch
// come from one snapshot, so a concurrent requantization can never
// produce a torn advertisement.
func (n *Node) Summary() cluster.NodeSummary {
	snap := n.eng.Current()
	s := snap.Quant.Summarize(n.id)
	s.Epoch = snap.Epoch
	return s
}

// TrainRequest asks a node to continue training a model locally.
type TrainRequest struct {
	// Spec describes the model architecture (must match Params).
	Spec ml.Spec `json:"spec"`
	// Params is the current global model w sent by the leader.
	Params ml.Params `json:"params"`
	// Clusters lists the supporting clusters to train on, in order;
	// nil means train on the whole local dataset (baseline
	// behaviour).
	Clusters []int `json:"clusters,omitempty"`
	// LocalEpochs is the paper's E: rounds of local iterations per
	// supporting cluster (or over the whole dataset when Clusters
	// is nil).
	LocalEpochs int `json:"local_epochs"`
	// TraceID/SpanID optionally attribute this round to the
	// originating query's trace (see internal/telemetry); transports
	// propagate them so remote daemon logs are correlatable.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// NodeSpan is one node-side timed phase of an RPC, piggybacked on the
// response when the request carried a trace context. The node reports
// only name + wall-clock interval; the leader mints span IDs and
// parents the span under the RPC span it holds, reassembling the
// cross-process trace tree without a separate span-shipping channel.
// On the v2 wire these travel in a dedicated self-delimiting section
// (skipped by length by older peers); on v1 JSON they are an optional
// field omitted when empty.
type NodeSpan struct {
	// Name identifies the phase: "node.queue" (engine admission
	// wait), "node.stage" (cluster staging/filter scan), "node.fit"
	// (model compute), "node.eval" (batched prediction scoring).
	Name string `json:"name"`
	// StartUnixNS is the phase start as Unix nanoseconds on the
	// node's clock.
	StartUnixNS int64 `json:"start_unix_ns"`
	// DurationNS is the phase length in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
}

// Start returns the phase start as a time.Time.
func (s NodeSpan) Start() time.Time { return time.Unix(0, s.StartUnixNS) }

// End returns the phase end as a time.Time.
func (s NodeSpan) End() time.Time { return time.Unix(0, s.StartUnixNS+s.DurationNS) }

// phaseSpans converts an engine phase report into the piggybacked
// span list. The queue span starts at admission; stage and fit are
// laid out sequentially after it, which matches how the engine
// actually interleaves them closely enough for attribution (their
// durations are exact; only their ordering within the slot is
// flattened). evalName swaps the compute span's name for evaluations.
func phaseSpans(p engine.Phases, evalName string) []NodeSpan {
	if p.QueuedAt.IsZero() {
		return nil
	}
	out := make([]NodeSpan, 0, 3)
	cursor := p.QueuedAt
	add := func(name string, d time.Duration) {
		if d <= 0 {
			return
		}
		out = append(out, NodeSpan{Name: name, StartUnixNS: cursor.UnixNano(), DurationNS: int64(d)})
		cursor = cursor.Add(d)
	}
	add("node.queue", p.Queue)
	add("node.stage", p.Stage)
	fitName := "node.fit"
	if evalName != "" {
		fitName = evalName
	}
	add(fitName, p.Fit)
	return out
}

// TrainResponse carries the updated local model and accounting.
type TrainResponse struct {
	// Params is the locally updated model w_i^E.
	Params ml.Params `json:"params"`
	// SamplesUsed is how many local samples participated.
	SamplesUsed int `json:"samples_used"`
	// TotalSamples is the node's |D_i|.
	TotalSamples int `json:"total_samples"`
	// TrainTime is the wall-clock training duration on the node,
	// including any time spent queued for an engine slot.
	TrainTime time.Duration `json:"train_time"`
	// SummaryEpoch echoes the advertisement version of the snapshot
	// the round actually trained on. A value newer than what the
	// leader's registry snapshot recorded means the node requantized
	// since the advertisement was fetched — the drift signal that
	// triggers a registry refresh.
	SummaryEpoch uint64 `json:"summary_epoch,omitempty"`
	// Spans reports the node-side phase timings when the request
	// carried a trace context (see NodeSpan); empty otherwise.
	Spans []NodeSpan `json:"spans,omitempty"`
}

// Train implements the §IV-B participant step: load the global model,
// then run E epochs over each requested supporting cluster in turn
// (each cluster acting as a mini-batch per the §IV-A Remark), or over
// the whole dataset when no clusters are specified.
func (n *Node) Train(req TrainRequest) (TrainResponse, error) {
	return n.TrainContext(context.Background(), req)
}

// TrainContext is Train with deadline/cancellation support: the
// context is honored while the job queues for an engine slot, between
// supporting clusters, and at every mini-batch boundary inside the
// fit, so an expired query stops consuming node compute promptly.
func (n *Node) TrainContext(ctx context.Context, req TrainRequest) (TrainResponse, error) {
	if err := ctx.Err(); err != nil {
		return TrainResponse{}, fmt.Errorf("federation: node %s: %w", n.id, err)
	}
	if req.LocalEpochs < 1 {
		return TrainResponse{}, fmt.Errorf("federation: node %s: local epochs %d < 1", n.id, req.LocalEpochs)
	}
	start := time.Now()
	res, err := n.eng.Train(ctx, engine.TrainJob{
		Spec:     req.Spec,
		Seed:     uint64(n.src.Int63()),
		Params:   req.Params,
		Clusters: req.Clusters,
		Epochs:   req.LocalEpochs,
	})
	if err != nil {
		return TrainResponse{}, fmt.Errorf("federation: node %s: %w", n.id, err)
	}
	out := TrainResponse{
		Params:       res.Params,
		SamplesUsed:  res.SamplesUsed,
		TotalSamples: res.TotalSamples,
		TrainTime:    time.Since(start),
		SummaryEpoch: res.Epoch,
	}
	if req.TraceID != "" {
		out.Spans = phaseSpans(res.Phases, "")
	}
	return out, nil
}

// EvalRequest asks a node to score a model against its local data.
type EvalRequest struct {
	Spec   ml.Spec   `json:"spec"`
	Params ml.Params `json:"params"`
	// Bounds optionally restricts evaluation to local samples
	// falling inside the rectangle (used to score per-query loss
	// on the query's data subspace). Nil evaluates on everything.
	Bounds *geometry.Rect `json:"bounds,omitempty"`
	// TraceID/SpanID optionally attribute this evaluation to the
	// originating query's trace.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// EvalResponse carries the local loss.
type EvalResponse struct {
	// MSE is the mean squared error over the evaluated samples.
	MSE float64 `json:"mse"`
	// Samples is how many local samples were evaluated.
	Samples int `json:"samples"`
	// SummaryEpoch echoes the advertisement version of the snapshot
	// the evaluation ran against, so evaluations double as drift
	// signals exactly like training responses.
	SummaryEpoch uint64 `json:"summary_epoch,omitempty"`
	// Spans reports the node-side phase timings when the request
	// carried a trace context (see NodeSpan); empty otherwise.
	Spans []NodeSpan `json:"spans,omitempty"`
}

// Evaluate implements the pre-test and scoring step: the node runs the
// provided model over (a subspace of) its local data and reports the
// loss — the data itself never leaves the node.
func (n *Node) Evaluate(req EvalRequest) (EvalResponse, error) {
	return n.EvaluateContext(context.Background(), req)
}

// EvaluateContext is Evaluate with deadline/cancellation support: the
// context is honored while queued, during the subspace filter scan
// (huge nodes cancel mid-scan) and between prediction mini-batches.
func (n *Node) EvaluateContext(ctx context.Context, req EvalRequest) (EvalResponse, error) {
	if err := ctx.Err(); err != nil {
		return EvalResponse{}, fmt.Errorf("federation: node %s: %w", n.id, err)
	}
	res, err := n.eng.Evaluate(ctx, engine.EvalJob{
		Spec:   req.Spec,
		Seed:   uint64(n.src.Int63()),
		Params: req.Params,
		Bounds: req.Bounds,
	})
	if err != nil {
		return EvalResponse{}, fmt.Errorf("federation: node %s: %w", n.id, err)
	}
	out := EvalResponse{MSE: res.MSE, Samples: res.Samples, SummaryEpoch: res.Epoch}
	if req.TraceID != "" {
		out.Spans = phaseSpans(res.Phases, "node.eval")
	}
	return out, nil
}
