package federation

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

func ctxb() context.Context { return context.Background() }

func TestAdaptiveCacheValidation(t *testing.T) {
	if _, err := NewAdaptiveCache(0.8, 4, ApproxConfig{MaxPredictedError: -1}); err == nil {
		t.Fatal("accepted negative error bound")
	}
	if _, err := NewAdaptiveCache(0.8, 4, ApproxConfig{MaxPredictedError: 0.3, MinCoverage: 2}); err == nil {
		t.Fatal("accepted coverage > 1")
	}
	if _, err := NewAdaptiveCache(0.8, 4, ApproxConfig{MaxPredictedError: 0.3, ResidualAlpha: -0.1}); err == nil {
		t.Fatal("accepted negative residual alpha")
	}
	// Disabled configs may carry tuning values without tripping anything.
	if _, err := NewAdaptiveCache(0.8, 4, ApproxConfig{MinCoverage: 0.25, ProbeEvery: 8}); err != nil {
		t.Fatal(err)
	}
	c, err := NewAdaptiveCache(0.8, 4, ApproxConfig{MaxPredictedError: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Approx(); got.MinCoverage != 0.5 || got.ProbeEvery != 8 || got.ResidualAlpha != 0.25 {
		t.Fatalf("defaults not applied: %+v", got)
	}
}

// TestAdaptiveApproxServes: a query that misses the exact IoU tier but
// whose rectangle is well covered by a cached ensemble's training
// rectangles is answered from the cache with zero training RPCs.
func TestAdaptiveApproxServes(t *testing.T) {
	fleet := testFleet(t)
	cache, err := NewAdaptiveCache(0.9, 8, ApproxConfig{
		MaxPredictedError: 0.9, MinCoverage: 0.05, ProbeEvery: -1, // never probe
	})
	if err != nil {
		t.Fatal(err)
	}
	sel := selection.QueryDriven{Epsilon: 0.6, TopL: 2}

	res1, kind, err := fleet.Leader.ExecuteAdaptiveContext(ctxb(), cache, midQuery(t), sel, WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if kind != ServeFresh {
		t.Fatalf("first execution served %v, want fresh", kind)
	}
	if res1.TrainDims == 0 || len(res1.TrainMins) == 0 {
		t.Fatal("fresh result carries no training rectangles")
	}

	// Shrunk query: IoU with [10,40] is 20/30 < 0.9 (exact miss) but the
	// training rectangles blanket it.
	inner, _ := query.New("q-inner", geometry.MustRect([]float64{15, -50}, []float64{35, 150}))
	res2, kind, err := fleet.Leader.ExecuteAdaptiveContext(ctxb(), cache, inner, sel, WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if kind != ServeApprox {
		t.Fatalf("covered query served %v, want approx", kind)
	}
	if res2 != res1 {
		t.Fatal("approx hit returned a different result object")
	}
	st := cache.CacheStats()
	if st.ApproxHits != 1 || !st.ApproxEnabled {
		t.Fatalf("stats %+v: want 1 approx hit", st)
	}

	// A far-away query must fall through to training (fallback).
	far, _ := query.New("q-far", geometry.MustRect([]float64{60, 50}, []float64{90, 200}))
	if _, kind, err = fleet.Leader.ExecuteAdaptiveContext(ctxb(), cache, far, sel, WeightedAveraging); err != nil {
		t.Fatal(err)
	}
	if kind != ServeFresh {
		t.Fatalf("disjoint query served %v, want fresh", kind)
	}
	// Two fallbacks: the cold-cache first query and the disjoint one.
	if st = cache.CacheStats(); st.Fallbacks != 2 {
		t.Fatalf("stats %+v: want 2 fallbacks", st)
	}
}

// TestAdaptiveProbeTrainsAndScores: with ProbeEvery=1 every approx-
// servable query becomes a ground-truth round — trained fresh, scored
// against the cached answer, and stored.
func TestAdaptiveProbeTrainsAndScores(t *testing.T) {
	fleet := testFleet(t)
	cache, err := NewAdaptiveCache(0.9, 8, ApproxConfig{
		MaxPredictedError: 0.9, MinCoverage: 0.05, ProbeEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sel := selection.QueryDriven{Epsilon: 0.6, TopL: 2}
	res1, _, err := fleet.Leader.ExecuteAdaptiveContext(ctxb(), cache, midQuery(t), sel, WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}

	inner, _ := query.New("q-inner", geometry.MustRect([]float64{15, -50}, []float64{35, 150}))
	res2, kind, err := fleet.Leader.ExecuteAdaptiveContext(ctxb(), cache, inner, sel, WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if kind != ServeProbe {
		t.Fatalf("probe round served %v, want probe", kind)
	}
	if res2 == res1 {
		t.Fatal("probe round must return the freshly trained result")
	}
	st := cache.CacheStats()
	if st.Probes != 1 {
		t.Fatalf("stats %+v: want 1 probe", st)
	}
	if cache.Len() != 2 {
		t.Fatalf("probe result not stored: len %d", cache.Len())
	}
}

// TestAdaptiveResidualEviction: an entry whose probe-measured residual
// outgrows the serve bound is removed by the feedback loop.
func TestAdaptiveResidualEviction(t *testing.T) {
	cache, err := NewAdaptiveCache(0.9, 4, ApproxConfig{
		MaxPredictedError: 0.3, MinCoverage: 0.1, ResidualAlpha: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := query.New("s", geometry.MustRect([]float64{0, 0}, []float64{10, 10}))
	res := &Result{Query: q, Ensemble: &Ensemble{},
		TrainMins: []float64{0, 0}, TrainMaxs: []float64{10, 10}, TrainDims: 2}
	cache.Store(res)
	ent := cache.view.Load().entries[0]

	// A good probe keeps the entry.
	cache.recordProbe(ent, 0.1, 0.05)
	if cache.Len() != 1 {
		t.Fatal("well-predicted entry evicted")
	}
	// A terrible one pushes the residual past the bound and evicts.
	cache.recordProbe(ent, 0.1, 1.0)
	if cache.Len() != 0 {
		t.Fatal("entry with residual past the bound survived")
	}
	st := cache.CacheStats()
	if st.Evictions != 1 || st.Probes != 2 {
		t.Fatalf("stats %+v: want 1 eviction, 2 probes", st)
	}
}

// TestAdaptiveAnswerTiers exercises the no-fleet Answer entry point the
// gateway uses before rejecting a query with 422.
func TestAdaptiveAnswerTiers(t *testing.T) {
	cache, err := NewAdaptiveCache(0.9, 4, ApproxConfig{MaxPredictedError: 0.6, MinCoverage: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := query.New("s", geometry.MustRect([]float64{0, 0}, []float64{10, 10}))
	cache.Store(&Result{Query: q, Ensemble: &Ensemble{},
		TrainMins: []float64{0, 0}, TrainMaxs: []float64{10, 10}, TrainDims: 2})

	exact, _ := query.New("p1", geometry.MustRect([]float64{0, 0}, []float64{10, 10}))
	if _, kind, ok := cache.Answer(exact, 0); !ok || kind != ServeExact {
		t.Fatalf("identical query: ok=%v kind=%v, want exact", ok, kind)
	}
	covered, _ := query.New("p2", geometry.MustRect([]float64{2, 2}, []float64{8, 8}))
	if _, kind, ok := cache.Answer(covered, 0); !ok || kind != ServeApprox {
		t.Fatalf("covered query: ok=%v kind=%v, want approx", ok, kind)
	}
	far, _ := query.New("p3", geometry.MustRect([]float64{100, 100}, []float64{110, 110}))
	if _, _, ok := cache.Answer(far, 0); ok {
		t.Fatal("disjoint query answered")
	}
}

// seedReuseCache reimplements the pre-R-tree cache verbatim (mutex-held
// linear scan, best-IoU with first-entry tie-break, FIFO eviction,
// epoch pruning) as the golden reference for the rewrite.
type seedReuseCache struct {
	minIoU  float64
	cap     int
	entries []*Result
}

func (c *seedReuseCache) lookup(q query.Query, epoch uint64) (*Result, bool) {
	var best *Result
	bestIoU := 0.0
	for _, r := range c.entries {
		if r.Query.Dims() != q.Dims() {
			continue
		}
		if epoch != 0 && r.Epoch != 0 && r.Epoch != epoch {
			continue
		}
		if iou := geometry.IoU(q.Bounds, r.Query.Bounds); iou >= c.minIoU && iou > bestIoU {
			best, bestIoU = r, iou
		}
	}
	return best, best != nil
}

func (c *seedReuseCache) store(res *Result) {
	if res == nil || res.Ensemble == nil {
		return
	}
	if res.Epoch != 0 {
		kept := c.entries[:0]
		for _, r := range c.entries {
			if r.Epoch != 0 && r.Epoch < res.Epoch {
				continue
			}
			kept = append(kept, r)
		}
		c.entries = kept
	}
	if len(c.entries) == c.cap {
		copy(c.entries, c.entries[1:])
		c.entries = c.entries[:len(c.entries)-1]
	}
	c.entries = append(c.entries, res)
}

// TestAdaptiveDisabledGoldenReplay replays a 200-query bursty workload
// through two identically seeded fleets: one on the seed-era serving
// loop (linear-scan cache reimplemented above + ExecuteContext), one on
// the rewritten pipeline with the approximate tier disabled. Every
// decision (hit vs train), every participant list and every trained
// parameter must be bit-exact — the R-tree lookup, the Store rewrite
// and the adaptive plumbing may not move a single RNG draw.
func TestAdaptiveDisabledGoldenReplay(t *testing.T) {
	ref := testFleet(t)
	cur := testFleet(t)
	refCache := &seedReuseCache{minIoU: 0.8, cap: 4}
	curCache, err := NewReuseCache(0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	sel := selection.QueryDriven{Epsilon: 0.6, TopL: 2}

	// Bursty workload: a few hot rectangles revisited with jitter, plus
	// cold scans across the fleet's x range.
	src := rng.New(77)
	queries := make([]query.Query, 0, 200)
	hot := [][2]float64{{10, 40}, {25, 55}, {55, 85}}
	for i := 0; i < 200; i++ {
		var lo, hi float64
		if i%3 != 0 {
			h := hot[(i/3)%len(hot)]
			j := src.Uniform(-1, 1)
			lo, hi = h[0]+j, h[1]+j
		} else {
			lo = src.Uniform(0, 65)
			hi = lo + src.Uniform(8, 25)
		}
		q, qerr := query.New(fmt.Sprintf("g-%d", i), geometry.MustRect(
			[]float64{lo, -100}, []float64{hi, 300}))
		if qerr != nil {
			t.Fatal(qerr)
		}
		queries = append(queries, q)
	}

	for i, q := range queries {
		if i == 80 || i == 150 {
			// Epoch bump on both twins: the fence must invalidate the
			// same entries on both sides.
			ref.Leader.InvalidateSummaries()
			cur.Leader.InvalidateSummaries()
		}

		// Reference: the seed's ExecuteWithReuseContext inlined.
		refEpoch := ref.Leader.Registry().ReuseEpoch()
		refRes, refReused := refCache.lookup(q, refEpoch)
		var refErr error
		if !refReused {
			refRes, refErr = ref.Leader.ExecuteContext(ctxb(), q, sel, WeightedAveraging)
			if refErr == nil {
				refCache.store(refRes)
			}
		}

		curRes, curReused, curErr := cur.Leader.ExecuteWithReuse(curCache, q, sel, WeightedAveraging)

		if (refErr == nil) != (curErr == nil) {
			t.Fatalf("q%d: error divergence: ref=%v cur=%v", i, refErr, curErr)
		}
		if refErr != nil {
			continue
		}
		if refReused != curReused {
			t.Fatalf("q%d: reuse decision diverged: ref=%v cur=%v", i, refReused, curReused)
		}
		if len(refRes.Participants) != len(curRes.Participants) {
			t.Fatalf("q%d: participant count %d vs %d", i, len(refRes.Participants), len(curRes.Participants))
		}
		for j := range refRes.Participants {
			if refRes.Participants[j].NodeID != curRes.Participants[j].NodeID {
				t.Fatalf("q%d: participant %d: %s vs %s", i, j,
					refRes.Participants[j].NodeID, curRes.Participants[j].NodeID)
			}
		}
		if len(refRes.LocalParams) != len(curRes.LocalParams) {
			t.Fatalf("q%d: param set %d vs %d", i, len(refRes.LocalParams), len(curRes.LocalParams))
		}
		for j := range refRes.LocalParams {
			a, b := refRes.LocalParams[j].Values, curRes.LocalParams[j].Values
			if len(a) != len(b) {
				t.Fatalf("q%d: params %d length %d vs %d", i, j, len(a), len(b))
			}
			for k := range a {
				if math.Float64bits(a[k]) != math.Float64bits(b[k]) {
					t.Fatalf("q%d: params %d[%d] diverged: %v vs %v", i, j, k, a[k], b[k])
				}
			}
		}
	}
	if len(refCache.entries) != curCache.Len() {
		t.Fatalf("final cache size diverged: ref=%d cur=%d", len(refCache.entries), curCache.Len())
	}
}

// TestReuseCacheConcurrentStress hammers Store / Lookup / LookupEpoch /
// Answer / CacheStats / Len from many goroutines, with mixed dims
// (forcing the linear fallback), advancing epochs (exercising the
// prune-on-store path) and capacity churn. Run under -race (make check
// does); the assertions are only internal-consistency ones.
func TestReuseCacheConcurrentStress(t *testing.T) {
	for _, tc := range []struct {
		name   string
		approx ApproxConfig
	}{
		{"exact-only", ApproxConfig{}},
		{"approx-on", ApproxConfig{MaxPredictedError: 0.5, MinCoverage: 0.1, ProbeEvery: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cache, err := NewAdaptiveCache(0.7, 16, tc.approx)
			if err != nil {
				t.Fatal(err)
			}
			mk := func(i int) *Result {
				lo := float64(i % 50)
				dims := []float64{lo, 0}
				his := []float64{lo + 5, 10}
				if i%17 == 0 { // mixed dimensionality
					dims = []float64{lo, 0, 0}
					his = []float64{lo + 5, 10, 10}
				}
				q, _ := query.New(fmt.Sprintf("s-%d", i), geometry.MustRect(dims, his))
				return &Result{
					Query: q, Ensemble: &Ensemble{}, Epoch: uint64(1 + i/400),
					TrainMins: append([]float64(nil), dims...),
					TrainMaxs: append([]float64(nil), his...),
					TrainDims: len(dims),
				}
			}
			const workers, ops = 8, 800
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						n := w*ops + i
						switch i % 5 {
						case 0:
							cache.Store(mk(n))
						case 1:
							q, _ := query.New("p", geometry.MustRect(
								[]float64{float64(n % 50), 0}, []float64{float64(n%50) + 5, 10}))
							cache.Lookup(q)
						case 2:
							q, _ := query.New("p", geometry.MustRect(
								[]float64{float64(n % 50), 0}, []float64{float64(n%50) + 5, 10}))
							cache.LookupEpoch(q, uint64(1+n/400))
						case 3:
							q, _ := query.New("p", geometry.MustRect(
								[]float64{float64(n%50) + 1, 1}, []float64{float64(n%50) + 4, 9}))
							cache.Answer(q, 0)
						case 4:
							st := cache.CacheStats()
							if st.Size < 0 || st.Size > 16 {
								panic(fmt.Sprintf("size %d out of bounds", st.Size))
							}
							_ = cache.Len()
						}
					}
				}(w)
			}
			wg.Wait()
			if cache.Len() > 16 {
				t.Fatalf("capacity breached: %d", cache.Len())
			}
		})
	}
}
