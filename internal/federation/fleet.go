package federation

import (
	"fmt"

	"qens/internal/dataset"
	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// Fleet bundles a leader with its in-process participant nodes plus
// the held-out test split used for scoring — the simulated edge
// environment every experiment runs on.
type Fleet struct {
	Leader *Leader
	Nodes  []*Node
	// Test is the union of every node's held-out split; per-query
	// evaluation filters it to the query rectangle.
	Test *dataset.Dataset
}

// FleetOptions controls fleet construction.
type FleetOptions struct {
	// TestFraction is held out of every node's data for evaluation
	// (default 0.2).
	TestFraction float64
	// LeaderDataIndex selects which node's training split doubles
	// as the leader's local data for the §II pre-test (default 0).
	LeaderDataIndex int
}

// NewSimulatedFleet builds nodes node-0..node-(n-1) from the given
// datasets, holds out a test fraction from each, and wires them to a
// leader via in-process clients.
func NewSimulatedFleet(data []*dataset.Dataset, cfg Config, opts FleetOptions) (*Fleet, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("federation: fleet needs at least one dataset")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.TestFraction == 0 {
		opts.TestFraction = 0.2
	}
	if opts.TestFraction < 0 || opts.TestFraction >= 1 {
		return nil, fmt.Errorf("federation: test fraction %v outside [0,1)", opts.TestFraction)
	}
	if opts.LeaderDataIndex < 0 || opts.LeaderDataIndex >= len(data) {
		return nil, fmt.Errorf("federation: leader data index %d out of range", opts.LeaderDataIndex)
	}

	root := rng.New(cfg.Seed)
	test := data[0].Empty()
	nodes := make([]*Node, len(data))
	clients := make([]Client, len(data))
	var leaderData *dataset.Dataset
	for i, d := range data {
		if !data[0].SameSchema(d) {
			return nil, fmt.Errorf("federation: dataset %d has a different schema", i)
		}
		train, held := d.Split(opts.TestFraction, root.Split())
		if err := test.Merge(held); err != nil {
			return nil, err
		}
		node, err := NewNode(fmt.Sprintf("node-%d", i), train, cfg.ClusterK, root.Split())
		if err != nil {
			return nil, err
		}
		nodes[i] = node
		clients[i] = LocalClient{Node: node}
		if i == opts.LeaderDataIndex {
			leaderData = train
		}
	}
	leader, err := NewLeader(cfg, leaderData, clients)
	if err != nil {
		return nil, err
	}
	return &Fleet{Leader: leader, Nodes: nodes, Test: test}, nil
}

// Space returns the global data space: the union of all node bounds,
// used to draw the query workload.
func (f *Fleet) Space() (geometry.Rect, error) {
	summaries, err := f.Leader.Summaries()
	if err != nil {
		return geometry.Rect{}, err
	}
	bounds := make([]geometry.Rect, 0, len(summaries))
	for _, s := range summaries {
		node := s.Clusters[0].Bounds.Clone()
		for _, c := range s.Clusters[1:] {
			node = node.Union(c.Bounds)
		}
		bounds = append(bounds, node)
	}
	return query.GlobalSpace(bounds)
}

// Execute runs a query and returns the result; a convenience wrapper
// over the leader.
func (f *Fleet) Execute(q query.Query, sel selection.Selector, agg Aggregation) (*Result, error) {
	return f.Leader.Execute(q, sel, agg)
}
