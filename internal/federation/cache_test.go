package federation

import (
	"testing"

	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/selection"
)

func TestNewReuseCacheValidation(t *testing.T) {
	if _, err := NewReuseCache(0, 5); err == nil {
		t.Fatal("accepted IoU 0")
	}
	if _, err := NewReuseCache(1.5, 5); err == nil {
		t.Fatal("accepted IoU > 1")
	}
	if _, err := NewReuseCache(0.8, 0); err == nil {
		t.Fatal("accepted capacity 0")
	}
}

func TestReuseCacheHitAndMiss(t *testing.T) {
	fleet := testFleet(t)
	cache, err := NewReuseCache(0.7, 8)
	if err != nil {
		t.Fatal(err)
	}
	sel := selection.QueryDriven{Epsilon: 0.6, TopL: 2}
	q := midQuery(t)

	res1, reused, err := fleet.Leader.ExecuteWithReuse(cache, q, sel, WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("first execution cannot be a cache hit")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache len %d", cache.Len())
	}

	// An almost identical query must hit.
	near, _ := query.New("q-near", geometry.MustRect(
		[]float64{10.5, -50}, []float64{40, 150}))
	res2, reused, err := fleet.Leader.ExecuteWithReuse(cache, near, sel, WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Fatal("near-identical query missed the cache")
	}
	if res2 != res1 {
		t.Fatal("hit returned a different result object")
	}

	// A far-away query (still supported by the fleet) must miss.
	far, _ := query.New("q-far", geometry.MustRect(
		[]float64{60, 50}, []float64{90, 200}))
	_, reused, err = fleet.Leader.ExecuteWithReuse(cache, far, sel, WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("disjoint query hit the cache")
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats %d/%d, want 1/2", hits, misses)
	}
}

func TestReuseCacheEviction(t *testing.T) {
	cache, _ := NewReuseCache(0.99, 2)
	mk := func(lo float64) *Result {
		q, _ := query.New("q", geometry.MustRect([]float64{lo, 0}, []float64{lo + 1, 1}))
		return &Result{Query: q, Ensemble: &Ensemble{}}
	}
	cache.Store(mk(0))
	cache.Store(mk(10))
	cache.Store(mk(20)) // evicts the first
	if cache.Len() != 2 {
		t.Fatalf("len %d", cache.Len())
	}
	q0, _ := query.New("probe", geometry.MustRect([]float64{0, 0}, []float64{1, 1}))
	if _, ok := cache.Lookup(q0); ok {
		t.Fatal("evicted entry still served")
	}
	q20, _ := query.New("probe", geometry.MustRect([]float64{20, 0}, []float64{21, 1}))
	if _, ok := cache.Lookup(q20); !ok {
		t.Fatal("fresh entry missing")
	}
}

func TestReuseCacheIgnoresNilResults(t *testing.T) {
	cache, _ := NewReuseCache(0.9, 2)
	cache.Store(nil)
	cache.Store(&Result{}) // no ensemble
	if cache.Len() != 0 {
		t.Fatalf("len %d", cache.Len())
	}
}

// TestReuseCacheEpochFencing pins the versioned-lookup contract:
// epoch-stamped entries only match their own epoch, Epoch-0 entries
// (legacy callers) match anything, and storing a newer-epoch result
// prunes the strictly older generations.
func TestReuseCacheEpochFencing(t *testing.T) {
	cache, _ := NewReuseCache(0.9, 8)
	mk := func(id string, lo float64, epoch uint64) *Result {
		q, _ := query.New(id, geometry.MustRect([]float64{lo, 0}, []float64{lo + 1, 1}))
		return &Result{Query: q, Ensemble: &Ensemble{}, Epoch: epoch}
	}
	cache.Store(mk("old", 0, 1))
	cache.Store(mk("legacy", 10, 0))

	probe, _ := query.New("p", geometry.MustRect([]float64{0, 0}, []float64{1, 1}))
	if _, ok := cache.LookupEpoch(probe, 1); !ok {
		t.Fatal("same-epoch lookup missed")
	}
	if _, ok := cache.LookupEpoch(probe, 2); ok {
		t.Fatal("stale epoch-1 entry served at epoch 2")
	}
	if _, ok := cache.Lookup(probe); !ok {
		t.Fatal("unversioned Lookup must ignore epochs")
	}
	legacyProbe, _ := query.New("p", geometry.MustRect([]float64{10, 0}, []float64{11, 1}))
	if _, ok := cache.LookupEpoch(legacyProbe, 7); !ok {
		t.Fatal("Epoch-0 entry must match any epoch")
	}

	// Storing an epoch-3 result prunes the epoch-1 entry but keeps the
	// legacy Epoch-0 one.
	cache.Store(mk("new", 20, 3))
	if cache.Len() != 2 {
		t.Fatalf("len %d after pruning, want 2 (legacy + new)", cache.Len())
	}
	if _, ok := cache.LookupEpoch(probe, 1); ok {
		t.Fatal("pruned epoch-1 entry still served")
	}
}

// TestExecuteWithReuseEpochInvalidation is the end-to-end version of
// the stale-ensemble fix: after InvalidateSummaries the advertisement
// epoch moves, the cached result stops matching, and the same query
// retrains instead of serving the pre-invalidation ensemble.
func TestExecuteWithReuseEpochInvalidation(t *testing.T) {
	fleet := testFleet(t)
	cache, err := NewReuseCache(0.9, 8)
	if err != nil {
		t.Fatal(err)
	}
	sel := selection.QueryDriven{Epsilon: 0.6, TopL: 2}
	q := midQuery(t)

	res1, reused, err := fleet.Leader.ExecuteWithReuse(cache, q, sel, WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("first execution cannot be a hit")
	}
	if res1.Epoch == 0 {
		t.Fatal("result missing the advertisement epoch stamp")
	}
	if _, reused, _ = fleet.Leader.ExecuteWithReuse(cache, q, sel, WeightedAveraging); !reused {
		t.Fatal("identical query at the same epoch must hit")
	}

	fleet.Leader.InvalidateSummaries()

	res2, reused, err := fleet.Leader.ExecuteWithReuse(cache, q, sel, WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("post-invalidation query served the stale ensemble")
	}
	if res2.Epoch <= res1.Epoch {
		t.Fatalf("epoch did not advance: %d then %d", res1.Epoch, res2.Epoch)
	}
	// The fresh result replaced the stale generation in the cache and
	// now serves hits at the new epoch.
	if _, reused, _ = fleet.Leader.ExecuteWithReuse(cache, q, sel, WeightedAveraging); !reused {
		t.Fatal("retrained result not cached at the new epoch")
	}
}

func TestIoU(t *testing.T) {
	a := geometry.MustRect([]float64{0, 0}, []float64{10, 10})
	if got := geometry.IoU(a, a); got != 1 {
		t.Fatalf("self IoU %v", got)
	}
	b := geometry.MustRect([]float64{5, 0}, []float64{15, 10})
	// inter 50, union 150.
	if got := geometry.IoU(a, b); got < 0.33 || got > 0.34 {
		t.Fatalf("half-shift IoU %v", got)
	}
	c := geometry.MustRect([]float64{100, 100}, []float64{110, 110})
	if got := geometry.IoU(a, c); got != 0 {
		t.Fatalf("disjoint IoU %v", got)
	}
	// Degenerate point rectangles.
	p := geometry.MustRect([]float64{5, 5}, []float64{5, 5})
	if got := geometry.IoU(p, p); got != 1 {
		t.Fatalf("point self IoU %v", got)
	}
}
