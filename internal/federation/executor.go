package federation

import (
	"context"
	"fmt"
	"sync"
	"time"

	"qens/internal/plan"
	"qens/internal/registry"
	"qens/internal/selection"
	"qens/internal/telemetry"
)

// Executor is the I/O-bound half of the query pipeline: given an
// immutable Plan it distributes the initial global model, drives one
// training round per selected participant (sequentially or fanned
// out), watches the responses for node-side advertisement drift, and
// aggregates the local models into the query's ensemble. It holds no
// state of its own beyond the leader reference, so one Executor serves
// all concurrent queries.
type Executor struct {
	l *Leader
}

// NewExecutor builds an executor bound to the leader's fleet.
func NewExecutor(l *Leader) *Executor {
	return &Executor{l: l}
}

// Run executes the plan sequentially (one training round at a time).
// The returned Result owns deep copies of the plan's participants, so
// releasing the plan afterwards is safe.
func (e *Executor) Run(ctx context.Context, pl *plan.Plan, agg Aggregation) (_ *Result, retErr error) {
	return e.trace(ctx, pl, agg, false)
}

// RunParallel executes the plan with the training fan-out running
// concurrently across participants — the deployment-realistic mode for
// TCP clients.
func (e *Executor) RunParallel(ctx context.Context, pl *plan.Plan, agg Aggregation) (_ *Result, retErr error) {
	return e.trace(ctx, pl, agg, true)
}

// trace wraps run with its own root span and wall-clock accounting for
// callers that executed a pre-built plan directly (the leader's
// Execute* methods manage their own spans and call run).
func (e *Executor) trace(ctx context.Context, pl *plan.Plan, agg Aggregation, parallel bool) (_ *Result, retErr error) {
	if pl == nil {
		return nil, fmt.Errorf("federation: execute: nil plan")
	}
	start := time.Now()
	qspan := e.l.activeTracer().StartTrace("query")
	qspan.SetAttr("query", pl.Query.ID)
	qspan.SetAttr("selector", pl.Selector)
	defer func() { qspan.End(retErr) }()
	res, err := e.run(ctx, qspan, pl, agg, parallel)
	if err != nil {
		return nil, err
	}
	res.Stats.WallTime = time.Since(start)
	e.l.metrics.query(pl.Selector, 0, len(res.Failed))
	return res, nil
}

// run is the shared execution core. It fills everything in the Result
// except SelectionTime and WallTime, which belong to the caller's
// accounting scope.
func (e *Executor) run(ctx context.Context, qspan *telemetry.SpanHandle, pl *plan.Plan, agg Aggregation, parallel bool) (*Result, error) {
	l := e.l

	// Initial global model w.
	spec := l.cfg.Spec
	spec.Seed = uint64(l.src.Int63())
	global, err := spec.New()
	if err != nil {
		return nil, err
	}
	initial := global.Params()
	paramBytes := int64(8 * len(initial.Values))

	participants := pl.CopyParticipants()
	res := &Result{
		Query:        pl.Query,
		Epoch:        pl.Epoch,
		Selector:     pl.Selector,
		Aggregation:  agg,
		Participants: participants,
	}
	if snap := pl.Snapshot(); snap != nil {
		res.Stats.SamplesAllNodes = snap.TotalSamples
		captureTrainingBounds(res, snap, participants)
	}

	type trainOut struct {
		resp    TrainResponse
		elapsed time.Duration
		err     error
	}
	outs := make([]trainOut, len(participants))

	if parallel {
		var wg sync.WaitGroup
		for i, p := range participants {
			wg.Add(1)
			go func(i int, p participantRef) {
				defer wg.Done()
				roundStart := time.Now()
				c, err := l.client(p.NodeID)
				if err != nil {
					outs[i] = trainOut{err: err, elapsed: time.Since(roundStart)}
					return
				}
				tspan := startTrainSpan(qspan, p.NodeID, 0)
				resp, err := c.Train(ctx, TrainRequest{
					Spec:        l.cfg.Spec,
					Params:      initial,
					Clusters:    p.Clusters,
					LocalEpochs: l.cfg.LocalEpochs,
					TraceID:     tspan.TraceID(),
					SpanID:      tspan.SpanID(),
				})
				recordNodeSpans(l.activeTracer(), tspan, p.NodeID, resp.Spans)
				tspan.End(err)
				outs[i] = trainOut{resp: resp, err: err, elapsed: time.Since(roundStart)}
			}(i, participantRef{NodeID: p.NodeID, Clusters: p.Clusters})
		}
		wg.Wait()
	} else {
		for i, p := range participants {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			tspan := startTrainSpan(qspan, p.NodeID, 0)
			roundStart := time.Now()
			resp, err := l.trainOn(ctx, p, initial, tspan)
			elapsed := time.Since(roundStart)
			recordNodeSpans(l.activeTracer(), tspan, p.NodeID, resp.Spans)
			tspan.End(err)
			outs[i] = trainOut{resp: resp, err: err, elapsed: elapsed}
			if err != nil && !l.cfg.TolerateFailures {
				// Mirror the legacy sequential contract: abort on the
				// first failure without contacting later participants.
				l.metrics.round(p.NodeID, elapsed)
				l.health.ObserveRound(p.NodeID, elapsed, err.Error())
				res.NodeRounds = append(res.NodeRounds, NodeRound{
					NodeID: p.NodeID, Elapsed: elapsed, Err: err.Error(),
				})
				return nil, fmt.Errorf("federation: training on %s: %w", p.NodeID, err)
			}
		}
	}

	// Collect outcomes in participant order. A failed round aborts the
	// query unless Config.TolerateFailures is set, in which case the
	// failure stays visible in NodeRounds/Failed and the survivors form
	// the ensemble.
	ranks := make([]float64, 0, len(participants))
	var firstErr error
	for i, o := range outs {
		p := participants[i]
		round := NodeRound{NodeID: p.NodeID, Elapsed: o.elapsed}
		l.metrics.round(p.NodeID, o.elapsed)
		if o.err != nil {
			round.Err = o.err.Error()
			l.health.ObserveRound(p.NodeID, o.elapsed, round.Err)
			res.NodeRounds = append(res.NodeRounds, round)
			if l.cfg.TolerateFailures {
				res.Failed = append(res.Failed, p.NodeID)
				continue
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("federation: training on %s: %w", p.NodeID, o.err)
			}
			continue
		}
		l.health.ObserveRound(p.NodeID, o.elapsed, "")
		e.observeEpoch(p.NodeID, o.resp.SummaryEpoch)
		res.NodeRounds = append(res.NodeRounds, round)
		res.LocalParams = append(res.LocalParams, o.resp.Params)
		ranks = append(ranks, p.Rank)
		res.Stats.TrainTime += o.resp.TrainTime
		res.Stats.SamplesUsed += o.resp.SamplesUsed
		res.Stats.SamplesSelectedNodes += o.resp.TotalSamples
		res.Stats.BytesUp += paramBytes
		res.Stats.BytesDown += int64(8 * len(o.resp.Params.Values))
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if len(res.LocalParams) == 0 {
		return nil, fmt.Errorf("federation: every selected participant failed for %s", pl.Query.ID)
	}

	aggSpan := qspan.Child("aggregation")
	ensemble, err := NewEnsemble(l.cfg.Spec, res.LocalParams, ranks, agg)
	aggSpan.End(err)
	if err != nil {
		return nil, err
	}
	res.Ensemble = ensemble
	return res, nil
}

// captureTrainingBounds copies the supporting-cluster rectangles of
// every participant out of the plan snapshot into the Result, before
// the plan (and its snapshot reference) is released. A participant
// with a nil cluster directive trains on its whole dataset, so all of
// its advertised cluster rectangles count. The copy is a few hundred
// floats at most and never touches the RNG, so seeded replays are
// unaffected.
func captureTrainingBounds(res *Result, snap *registry.Snapshot, participants []selection.Participant) {
	d := snap.Dims
	if d <= 0 {
		return
	}
	byID := make(map[string]*registry.NodeGeom, len(snap.Nodes))
	for i := range snap.Nodes {
		byID[snap.Nodes[i].NodeID] = &snap.Nodes[i]
	}
	for _, p := range participants {
		g, ok := byID[p.NodeID]
		if !ok {
			continue
		}
		if p.Clusters == nil {
			res.TrainMins = append(res.TrainMins, g.Mins...)
			res.TrainMaxs = append(res.TrainMaxs, g.Maxs...)
			continue
		}
		for _, k := range p.Clusters {
			if k < 0 || (k+1)*d > len(g.Mins) {
				continue
			}
			res.TrainMins = append(res.TrainMins, g.Mins[k*d:(k+1)*d]...)
			res.TrainMaxs = append(res.TrainMaxs, g.Maxs[k*d:(k+1)*d]...)
		}
	}
	if len(res.TrainMins) > 0 {
		res.TrainDims = d
	}
}

// participantRef is the copy handed to training goroutines (avoids
// capturing the loop variable's backing Participant).
type participantRef struct {
	NodeID   string
	Clusters []int
}

// observeEpoch feeds a node-reported advertisement version back into
// the registry: when it is newer than the snapshot the plan was built
// from, the node requantized mid-flight (data drift) and the registry
// is invalidated so the next query replans against fresh summaries.
func (e *Executor) observeEpoch(nodeID string, epoch uint64) {
	if epoch == 0 {
		return
	}
	e.l.reg.SignalNodeEpoch(nodeID, epoch)
}
