package federation

import (
	"context"
	"fmt"
	"testing"

	"qens/internal/dataset"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// benchReplayQueries builds the deterministic serving workload for
// BenchmarkReuseReplay: three wide "anchor" rectangles that arrive
// early and then a stream dominated by jittered sub-windows of those
// anchors (the contained-query pattern the approximate tier exists
// for: exact IoU misses because the areas differ, but the anchor's
// training rectangles blanket the sub-window), with every fourth
// query a cold scan neither mode can reuse.
func benchReplayQueries(b *testing.B, n int) []query.Query {
	b.Helper()
	src := rng.New(2024)
	anchors := [][2]float64{{0, 40}, {25, 65}, {50, 90}}
	qs := make([]query.Query, 0, n)
	add := func(i int, lo, hi float64) {
		q, err := query.New(fmt.Sprintf("replay-%d", i),
			geometry.MustRect([]float64{lo, -20}, []float64{hi, 200}))
		if err != nil {
			b.Fatal(err)
		}
		qs = append(qs, q)
	}
	for i := 0; i < len(anchors) && i < n; i++ {
		add(i, anchors[i][0], anchors[i][1])
	}
	for i := len(anchors); i < n; i++ {
		if i%4 == 0 {
			lo := src.Uniform(0, 70)
			add(i, lo, lo+src.Uniform(10, 22))
			continue
		}
		a := anchors[i%len(anchors)]
		lo := a[0] + src.Uniform(1, 12)
		hi := a[1] - src.Uniform(1, 12)
		add(i, lo, hi)
	}
	return qs
}

func benchReplayFleet(b *testing.B) *Fleet {
	b.Helper()
	data := []*dataset.Dataset{
		lineDataset(200, 2, 1, 0, 30, 10),
		lineDataset(200, 2, 1, 20, 60, 11),
		lineDataset(200, 2, 1, 50, 90, 12),
	}
	cfg := Config{Spec: ml.PaperLR(1), ClusterK: 4, LocalEpochs: 5, Seed: 7}
	fleet, err := NewSimulatedFleet(data, cfg, FleetOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return fleet
}

// BenchmarkReuseReplay replays the same 48-query workload through the
// original exact-only reuse cache (mode=seed) and through the
// adaptive cache with the approximate model-answer tier enabled
// (mode=approx). Beyond ns/op it reports the two numbers the serving
// contract is written in:
//
//	trained_queries — federated training executions per replay (fresh
//	                  plus probe rounds); the approximate tier's whole
//	                  purpose is driving this down.
//	mse             — mean held-out MSE of the served answers over the
//	                  query subspace, so the training savings can be
//	                  priced in answer quality.
//
// scripts/bench_reuse.sh gates on trained_queries[approx] being at
// least 30% below trained_queries[seed] with mse within 1.5x.
func BenchmarkReuseReplay(b *testing.B) {
	const replayLen = 48
	sel := selection.QueryDriven{Epsilon: 0.4, TopL: 2}
	modes := []struct {
		name  string
		build func() (*ReuseCache, error)
	}{
		{"mode=seed", func() (*ReuseCache, error) {
			return NewReuseCache(0.9, 16)
		}},
		{"mode=approx", func() (*ReuseCache, error) {
			return NewAdaptiveCache(0.9, 16, ApproxConfig{
				MaxPredictedError: 0.35,
				MinCoverage:       0.5,
				ProbeEvery:        8,
			})
		}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			fleet := benchReplayFleet(b)
			queries := benchReplayQueries(b, replayLen)
			ctx := context.Background()

			var trained, served int
			var sumMSE float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cache, err := mode.build()
				if err != nil {
					b.Fatal(err)
				}
				for _, q := range queries {
					res, kind, err := fleet.Leader.ExecuteAdaptiveContext(ctx, cache, q, sel, WeightedAveraging)
					if err != nil {
						b.Fatal(err)
					}
					if kind == ServeFresh || kind == ServeProbe {
						trained++
					}
					if mse, _, ok := EvaluateResult(res, fleet.Test); ok {
						sumMSE += mse
						served++
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(trained)/float64(b.N), "trained_queries")
			if served > 0 {
				b.ReportMetric(sumMSE/float64(served), "mse")
			}
		})
	}
}
