package federation

import "qens/internal/cluster"

// Client is the leader's view of a participant node. The in-process
// implementation below wraps *Node directly; internal/transport
// provides a TCP-backed implementation with the same semantics, so the
// leader's orchestration is agnostic to where participants run.
type Client interface {
	// ID returns the participant's node id.
	ID() string
	// Summary fetches the cluster advertisement.
	Summary() (cluster.NodeSummary, error)
	// Train runs a local training round.
	Train(TrainRequest) (TrainResponse, error)
	// Evaluate scores a model on the node's local data.
	Evaluate(EvalRequest) (EvalResponse, error)
}

// LocalClient adapts an in-process Node to the Client interface.
type LocalClient struct {
	Node *Node
}

// ID implements Client.
func (c LocalClient) ID() string { return c.Node.ID() }

// Summary implements Client.
func (c LocalClient) Summary() (cluster.NodeSummary, error) { return c.Node.Summary(), nil }

// Train implements Client.
func (c LocalClient) Train(req TrainRequest) (TrainResponse, error) { return c.Node.Train(req) }

// Evaluate implements Client.
func (c LocalClient) Evaluate(req EvalRequest) (EvalResponse, error) { return c.Node.Evaluate(req) }
