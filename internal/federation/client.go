package federation

import (
	"context"

	"qens/internal/cluster"
)

// Client is the leader's view of a participant node. The in-process
// implementation below wraps *Node directly; internal/transport
// provides a TCP-backed implementation with the same semantics, so the
// leader's orchestration is agnostic to where participants run.
//
// Every method takes a context.Context carrying the originating
// query's deadline and cancellation: the serving path
// (internal/gateway) threads a per-request context from the HTTP
// handler through Leader.ExecuteContext down to the wire, so an
// expired query stops consuming node compute as early as possible.
// Implementations must return promptly with ctx.Err() (or an error
// wrapping it) once the context is done.
type Client interface {
	// ID returns the participant's node id.
	ID() string
	// Summary fetches the cluster advertisement.
	Summary(ctx context.Context) (cluster.NodeSummary, error)
	// Train runs a local training round.
	Train(ctx context.Context, req TrainRequest) (TrainResponse, error)
	// Evaluate scores a model on the node's local data.
	Evaluate(ctx context.Context, req EvalRequest) (EvalResponse, error)
}

// DeltaSummaryClient is an optional Client capability used by the
// registry's delta refresh: an epoch-conditional summary probe that
// answers unchanged=true (no summary body) when the node's
// advertisement still carries the epoch the leader already holds.
// Clients without the capability are probed with a plain Summary call
// — correct, just not byte-proportional to churn.
type DeltaSummaryClient interface {
	SummaryIfChanged(ctx context.Context, known uint64) (cluster.NodeSummary, bool, error)
}

// PushSummaryClient is an optional Client capability inverting the
// summary-freshness flow: instead of the leader polling, the node
// pushes its fresh advertisement whenever its epoch bumps (ingest
// drift, requantization). SubscribeSummaries registers the handler and
// returns ok=false (nil error) when the participant cannot push — an
// old daemon or a v1 connection — in which case the leader keeps
// pulling on the TTL as before. Handlers may be invoked from the
// participant's own goroutines and must hand off quickly.
type PushSummaryClient interface {
	SubscribeSummaries(ctx context.Context, handler func(cluster.NodeSummary)) (bool, error)
}

// LocalClient adapts an in-process Node to the Client interface.
type LocalClient struct {
	Node *Node
}

// ID implements Client.
func (c LocalClient) ID() string { return c.Node.ID() }

// Summary implements Client.
func (c LocalClient) Summary(ctx context.Context) (cluster.NodeSummary, error) {
	if err := ctx.Err(); err != nil {
		return cluster.NodeSummary{}, err
	}
	return c.Node.Summary(), nil
}

// SummaryIfChanged implements DeltaSummaryClient. The epoch check and
// the summary read race benignly with a concurrent requantize: a stale
// "unchanged" answer is impossible because the node bumps its epoch
// before publishing the new summary, so at worst the probe returns the
// fresh summary for an epoch that was current a moment ago.
func (c LocalClient) SummaryIfChanged(ctx context.Context, known uint64) (cluster.NodeSummary, bool, error) {
	if err := ctx.Err(); err != nil {
		return cluster.NodeSummary{}, false, err
	}
	if known != 0 && known == c.Node.SummaryEpoch() {
		return cluster.NodeSummary{}, true, nil
	}
	return c.Node.Summary(), false, nil
}

// SubscribeSummaries implements PushSummaryClient for an in-process
// node: the handler hangs off the node engine's epoch-bump watcher
// list, so every material advertisement change (incremental ingest or
// full requantize) is delivered push-style, exactly like a remote
// daemon's push frame.
func (c LocalClient) SubscribeSummaries(ctx context.Context, handler func(cluster.NodeSummary)) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	c.Node.OnAdvertise(handler)
	return true, nil
}

// Train implements Client. Training is CPU-bound and in-process, so
// cancellation is checked between supporting clusters rather than
// mid-epoch (see Node.TrainContext).
func (c LocalClient) Train(ctx context.Context, req TrainRequest) (TrainResponse, error) {
	return c.Node.TrainContext(ctx, req)
}

// Evaluate implements Client. Cancellation propagates into the node's
// engine: the job honors ctx while queued, during the subspace filter
// scan and between prediction mini-batches.
func (c LocalClient) Evaluate(ctx context.Context, req EvalRequest) (EvalResponse, error) {
	return c.Node.EvaluateContext(ctx, req)
}
