package federation

import (
	"context"

	"qens/internal/cluster"
)

// Client is the leader's view of a participant node. The in-process
// implementation below wraps *Node directly; internal/transport
// provides a TCP-backed implementation with the same semantics, so the
// leader's orchestration is agnostic to where participants run.
//
// Every method takes a context.Context carrying the originating
// query's deadline and cancellation: the serving path
// (internal/gateway) threads a per-request context from the HTTP
// handler through Leader.ExecuteContext down to the wire, so an
// expired query stops consuming node compute as early as possible.
// Implementations must return promptly with ctx.Err() (or an error
// wrapping it) once the context is done.
type Client interface {
	// ID returns the participant's node id.
	ID() string
	// Summary fetches the cluster advertisement.
	Summary(ctx context.Context) (cluster.NodeSummary, error)
	// Train runs a local training round.
	Train(ctx context.Context, req TrainRequest) (TrainResponse, error)
	// Evaluate scores a model on the node's local data.
	Evaluate(ctx context.Context, req EvalRequest) (EvalResponse, error)
}

// LocalClient adapts an in-process Node to the Client interface.
type LocalClient struct {
	Node *Node
}

// ID implements Client.
func (c LocalClient) ID() string { return c.Node.ID() }

// Summary implements Client.
func (c LocalClient) Summary(ctx context.Context) (cluster.NodeSummary, error) {
	if err := ctx.Err(); err != nil {
		return cluster.NodeSummary{}, err
	}
	return c.Node.Summary(), nil
}

// Train implements Client. Training is CPU-bound and in-process, so
// cancellation is checked between supporting clusters rather than
// mid-epoch (see Node.TrainContext).
func (c LocalClient) Train(ctx context.Context, req TrainRequest) (TrainResponse, error) {
	return c.Node.TrainContext(ctx, req)
}

// Evaluate implements Client. Cancellation propagates into the node's
// engine: the job honors ctx while queued, during the subspace filter
// scan and between prediction mini-batches.
func (c LocalClient) Evaluate(ctx context.Context, req EvalRequest) (EvalResponse, error) {
	return c.Node.EvaluateContext(ctx, req)
}
