package federation

import (
	"context"
	"sync"
	"testing"

	"qens/internal/cluster"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/rng"
)

// TestNodeConcurrentMutationAndTraining is the regression test for the
// AddSamples/Train data race the engine refactor fixes: writers
// (AddSamples, Requantize) and readers (Train, Evaluate, Summary) hammer
// one node concurrently. Run under -race (make check does), any torn
// snapshot or in-place mutation of pinned data trips the detector; the
// assertions below additionally pin the copy-on-write semantics —
// every response must be internally consistent with SOME published
// epoch.
func TestNodeConcurrentMutationAndTraining(t *testing.T) {
	d := lineDataset(240, 2, 1, 0, 10, 31)
	node, err := NewNode("race", d, 4, rng.New(31), WithTrainConcurrency(4))
	if err != nil {
		t.Fatal(err)
	}
	spec := ml.PaperLR(1)

	const (
		writers   = 2
		trainers  = 3
		rounds    = 20
		appendsOf = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers*rounds+trainers*rounds*2+rounds)

	// Writers: half append fresh rows (epoch bump + COW dataset), half
	// requantize in place (epoch bump, same dataset).
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(1000 + w))
			for r := 0; r < rounds; r++ {
				if w%2 == 0 {
					rows := make([][]float64, appendsOf)
					for i := range rows {
						x := src.Uniform(0, 10)
						rows[i] = []float64{x, 2*x + 1}
					}
					if err := node.AddSamples(rows); err != nil {
						errs <- err
						return
					}
				} else if err := node.Requantize(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	// Trainers: alternate cluster-restricted training and bounded
	// evaluation against whatever snapshot admission pins.
	for g := 0; g < trainers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bounds := &geometry.Rect{Min: []float64{0, -1e9}, Max: []float64{5, 1e9}}
			for r := 0; r < rounds; r++ {
				resp, err := node.Train(TrainRequest{Spec: spec, Clusters: []int{0, 1, 2, 3}, LocalEpochs: 1})
				if err != nil {
					errs <- err
					return
				}
				// COW consistency: the response's accounting must come
				// from one snapshot — a round can never use more
				// samples than the dataset it trained on held.
				if resp.SamplesUsed > resp.TotalSamples || resp.SummaryEpoch == 0 {
					t.Errorf("torn train response: used=%d total=%d epoch=%d",
						resp.SamplesUsed, resp.TotalSamples, resp.SummaryEpoch)
					return
				}
				ev, err := node.EvaluateContext(context.Background(), EvalRequest{Spec: spec, Bounds: bounds})
				if err != nil {
					errs <- err
					return
				}
				if ev.SummaryEpoch == 0 {
					t.Error("evaluation response missing snapshot epoch")
					return
				}
			}
		}()
	}

	// Summary readers: advertisements must never tear (Summary reads
	// quantization and epoch from one snapshot).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			s := node.Summary()
			if err := s.Validate(); err != nil {
				errs <- err
				return
			}
			if s.Epoch == 0 {
				t.Error("summary missing epoch")
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// All writer mutations landed: epoch advanced by every successful
	// mutate, and the appended rows are all visible.
	wantAppends := (writers / 2) * rounds * appendsOf
	if got := node.Data().Len(); got != 240+wantAppends {
		t.Fatalf("final dataset has %d rows, want %d", got, 240+wantAppends)
	}
	if got := node.SummaryEpoch(); got != uint64(1+writers*rounds) {
		t.Fatalf("final epoch %d, want %d", got, 1+writers*rounds)
	}
}

// TestNodeFromGridQuantization covers satellite (d): a node built
// around a grid synopsis (NewNodeFromQuantization over GridQuantize)
// must advertise epoch 1, train normally, and Requantize must bump the
// epoch while preserving the cluster count K.
func TestNodeFromGridQuantization(t *testing.T) {
	d := lineDataset(200, 1.5, -2, 0, 20, 8)
	quant, err := cluster.GridQuantize(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	k := len(quant.Result.Clusters)
	if k < 2 {
		t.Fatalf("grid produced %d clusters, fixture too small", k)
	}
	node, err := NewNodeFromQuantization("grid", quant, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if node.SummaryEpoch() != 1 {
		t.Fatalf("initial epoch %d", node.SummaryEpoch())
	}
	s := node.Summary()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.K() != k {
		t.Fatalf("summary K %d, want %d", s.K(), k)
	}

	// Training against grid clusters works like any other synopsis.
	all := make([]int, k)
	for i := range all {
		all[i] = i
	}
	resp, err := node.Train(TrainRequest{Spec: ml.PaperLR(1), Clusters: all, LocalEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.SamplesUsed != 200 || resp.SummaryEpoch != 1 {
		t.Fatalf("train over grid clusters: used=%d epoch=%d", resp.SamplesUsed, resp.SummaryEpoch)
	}

	// Requantize swaps the synopsis to k-means with the same K and
	// bumps the advertisement epoch.
	if err := node.Requantize(); err != nil {
		t.Fatal(err)
	}
	if node.SummaryEpoch() != 2 {
		t.Fatalf("epoch after requantize %d, want 2", node.SummaryEpoch())
	}
	s2 := node.Summary()
	if s2.K() != k {
		t.Fatalf("requantize changed K: %d -> %d", s.K(), s2.K())
	}
	if s2.Epoch != 2 {
		t.Fatalf("summary epoch %d, want 2", s2.Epoch)
	}

	// Validation: nil / empty quantizations are rejected.
	if _, err := NewNodeFromQuantization("", quant, rng.New(1)); err == nil {
		t.Fatal("accepted empty id")
	}
	if _, err := NewNodeFromQuantization("x", nil, rng.New(1)); err == nil {
		t.Fatal("accepted nil quantization")
	}
}
