package federation

import (
	"testing"

	"qens/internal/cluster"
	"qens/internal/dataset"
	"qens/internal/geometry"
	"qens/internal/ml"
	"qens/internal/rng"
)

// goldenOp is one request of the seeded workload: a training round or
// an evaluation, for one model family.
type goldenOp struct {
	train    bool
	family   string // "lr" | "nn"
	clusters []int  // nil = whole dataset
	epochs   int
	bounds   *geometry.Rect
}

// goldenWorkload deterministically generates a 200-request mixed
// workload over k clusters and the dataset's bounds.
func goldenWorkload(d *dataset.Dataset, k int) []goldenOp {
	wl := rng.New(2024)
	lo, _ := d.Bounds()
	hi := lo.Max
	lo2 := lo.Min
	ops := make([]goldenOp, 0, 200)
	for i := 0; i < 200; i++ {
		op := goldenOp{train: wl.Float64() < 0.6}
		if wl.Bool(0.5) {
			op.family = "lr"
		} else {
			op.family = "nn"
		}
		if op.train {
			op.epochs = 1 + wl.Intn(2)
			switch wl.Intn(3) {
			case 0: // whole dataset
			case 1: // every cluster in order
				op.clusters = make([]int, k)
				for c := range op.clusters {
					op.clusters[c] = c
				}
			default: // random supporting subset
				op.clusters = wl.SampleWithoutReplacement(k, 1+wl.Intn(k-1))
			}
		} else if wl.Float64() < 0.5 {
			// Evaluate on a random subspace rectangle; occasionally an
			// empty one, which must still consume the node's seed draw.
			rect := geometry.Rect{Min: make([]float64, len(hi)), Max: make([]float64, len(hi))}
			for j := range hi {
				a := wl.Uniform(lo2[j], hi[j])
				b := wl.Uniform(lo2[j], hi[j])
				if a > b {
					a, b = b, a
				}
				rect.Min[j], rect.Max[j] = a, b
			}
			if wl.Float64() < 0.1 {
				for j := range rect.Min {
					rect.Min[j] = hi[j] + 1
					rect.Max[j] = hi[j] + 2
				}
			}
			op.bounds = &rect
		}
		ops = append(ops, op)
	}
	return ops
}

// legacyNode reimplements the pre-engine Node request path with its
// own RNG: one Int63 draw per request, fresh model per request,
// materialized cluster data, [][]float64 PartialFit, PredictBatch +
// ml.MSE evaluation. It is the bit-exact reference the engine-backed
// Node is replayed against.
type legacyNode struct {
	data  *dataset.Dataset
	quant *cluster.Quantization
	src   *rng.Source
}

func (n *legacyNode) buildModel(spec ml.Spec, params ml.Params) (ml.Model, error) {
	spec.Seed = uint64(n.src.Int63())
	model, err := spec.New()
	if err != nil {
		return nil, err
	}
	if len(params.Values) > 0 {
		if err := model.SetParams(params); err != nil {
			return nil, err
		}
	}
	return model, nil
}

func (n *legacyNode) train(spec ml.Spec, params ml.Params, clusters []int, epochs int) (ml.Params, error) {
	model, err := n.buildModel(spec, params)
	if err != nil {
		return ml.Params{}, err
	}
	if len(clusters) == 0 {
		x, y := n.data.XY()
		if err := model.PartialFit(x, y, epochs); err != nil {
			return ml.Params{}, err
		}
		return model.Params(), nil
	}
	for _, c := range clusters {
		cd, err := n.quant.ClusterData(c)
		if err != nil {
			return ml.Params{}, err
		}
		if cd.Len() == 0 {
			continue
		}
		x, y := cd.XY()
		if err := model.PartialFit(x, y, epochs); err != nil {
			return ml.Params{}, err
		}
	}
	return model.Params(), nil
}

func (n *legacyNode) evaluate(spec ml.Spec, params ml.Params, bounds *geometry.Rect) (float64, int, error) {
	model, err := n.buildModel(spec, params)
	if err != nil {
		return 0, 0, err
	}
	data := n.data
	if bounds != nil {
		data = n.data.FilterInRectCopy(*bounds)
	}
	if data.Len() == 0 {
		return 0, 0, nil
	}
	x, y := data.XY()
	return ml.MSE(y, model.PredictBatch(x)), data.Len(), nil
}

// TestEngineTrainGoldenEquivalence replays a seeded 200-request
// workload (mixed Train/Evaluate, LR and NN, whole-data / all-cluster
// / subset rounds, bounded and empty-subspace evaluations) through the
// engine-backed Node and through a reimplementation of the pre-engine
// request path driven by a mirrored RNG. Every response must match
// bit-exactly: same params, same MSE, same sample counts. This is the
// refactor's core acceptance criterion — the engine changes the data
// plane (views, pooled models, flat batches), never the arithmetic.
func TestEngineTrainGoldenEquivalence(t *testing.T) {
	// Shared shard + quantization: both sides see identical state.
	d := dataset.MustNew([]string{"x0", "x1", "x2", "y"}, "y")
	src := rng.New(42)
	for i := 0; i < 500; i++ {
		x0 := src.Uniform(0, 100)
		x1 := src.Uniform(-50, 50)
		x2 := src.Uniform(0, 10)
		d.MustAppend([]float64{x0, x1, x2, 3*x0 - 2*x1 + 5*x2 + src.Normal(0, 4)})
	}
	const k = 5
	quant, err := cluster.Quantize(d, cluster.Config{K: k}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}

	// NewNodeFromQuantization draws nothing from the node source at
	// construction, so the legacy mirror starts from identical RNG
	// state.
	node, err := NewNodeFromQuantization("golden", quant, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	legacy := &legacyNode{data: d, quant: quant, src: rng.New(77)}

	specs := map[string]ml.Spec{"lr": ml.PaperLR(3), "nn": ml.PaperNN(3)}
	// Rolling per-family global params, updated from each side's own
	// train responses — divergence compounds, so a single ULP
	// difference anywhere surfaces within a few requests.
	cur := map[string]ml.Params{}
	curLegacy := map[string]ml.Params{}

	for i, op := range goldenWorkload(d, k) {
		spec := specs[op.family]
		if op.train {
			resp, err := node.Train(TrainRequest{
				Spec: spec, Params: cur[op.family], Clusters: op.clusters, LocalEpochs: op.epochs,
			})
			if err != nil {
				t.Fatalf("op %d: engine train: %v", i, err)
			}
			want, err := legacy.train(spec, curLegacy[op.family], op.clusters, op.epochs)
			if err != nil {
				t.Fatalf("op %d: legacy train: %v", i, err)
			}
			if len(resp.Params.Values) != len(want.Values) {
				t.Fatalf("op %d (%s): param lengths %d vs %d", i, op.family, len(resp.Params.Values), len(want.Values))
			}
			for j := range want.Values {
				if resp.Params.Values[j] != want.Values[j] {
					t.Fatalf("op %d (%s, clusters=%v, epochs=%d): param %d: engine %v != legacy %v",
						i, op.family, op.clusters, op.epochs, j, resp.Params.Values[j], want.Values[j])
				}
			}
			cur[op.family] = resp.Params
			curLegacy[op.family] = want
		} else {
			resp, err := node.Evaluate(EvalRequest{Spec: spec, Params: cur[op.family], Bounds: op.bounds})
			if err != nil {
				t.Fatalf("op %d: engine eval: %v", i, err)
			}
			mse, samples, err := legacy.evaluate(spec, curLegacy[op.family], op.bounds)
			if err != nil {
				t.Fatalf("op %d: legacy eval: %v", i, err)
			}
			if resp.Samples != samples || resp.MSE != mse {
				t.Fatalf("op %d (%s, bounds=%v): engine (mse=%v n=%d) != legacy (mse=%v n=%d)",
					i, op.family, op.bounds != nil, resp.MSE, resp.Samples, mse, samples)
			}
		}
	}
	// Both families must actually have been trained for the replay to
	// mean anything.
	for fam := range specs {
		if len(cur[fam].Values) == 0 {
			t.Fatalf("workload never trained family %s", fam)
		}
	}
}

// TestGoldenSeedDrawOrderOnEmptySubspace verifies an evaluation over
// an empty subspace still consumes exactly one seed draw (the engine
// builds the model before filtering, mirroring the legacy order) —
// otherwise every subsequent response in a replay would diverge.
func TestGoldenSeedDrawOrderOnEmptySubspace(t *testing.T) {
	d := lineDataset(60, 1, 0, 0, 10, 5)
	node, err := NewNode("n", d, 3, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := NewNode("n", d, 3, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	empty := &geometry.Rect{Min: []float64{1e9, 1e9}, Max: []float64{2e9, 2e9}}
	if resp, err := node.Evaluate(EvalRequest{Spec: ml.PaperLR(1), Bounds: empty}); err != nil || resp.Samples != 0 {
		t.Fatalf("empty-subspace eval: %+v, %v", resp, err)
	}
	// The mirror skips the empty evaluation: its next train must
	// DIFFER from the node's (proving the node consumed a draw) …
	r1, err := node.Train(TrainRequest{Spec: ml.PaperNN(1), LocalEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mirror.Train(TrainRequest{Spec: ml.PaperNN(1), LocalEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Params.Values {
		if r1.Params.Values[i] != r2.Params.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("empty-subspace evaluation did not consume a seed draw")
	}
	// … and after the mirror burns one draw too, they re-align.
	if _, err := mirror.Evaluate(EvalRequest{Spec: ml.PaperLR(1), Bounds: empty}); err != nil {
		t.Fatal(err)
	}
	r3, err := node.Train(TrainRequest{Spec: ml.PaperNN(1), LocalEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := mirror.Train(TrainRequest{Spec: ml.PaperNN(1), LocalEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r3.Params.Values {
		if r3.Params.Values[i] != r4.Params.Values[i] {
			t.Fatalf("param %d diverged after realignment: %v != %v", i, r3.Params.Values[i], r4.Params.Values[i])
		}
	}
}
