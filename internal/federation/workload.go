package federation

import (
	"fmt"
	"time"

	"qens/internal/dataset"
	"qens/internal/query"
	"qens/internal/selection"
)

// Workload execution: the convenience driver for running a whole query
// stream through a leader and collecting per-query and aggregate
// outcomes — what every experiment, example and benchmark otherwise
// re-implements by hand.

// WorkloadOutcome is one query's result within a workload run.
type WorkloadOutcome struct {
	Query query.Query
	// Result is nil when the query failed (e.g. no supporting node).
	Result *Result
	// Err records why the query failed.
	Err error
	// TestMSE is the loss over test data inside the query rectangle;
	// valid only when Scored is true.
	TestMSE float64
	Scored  bool
}

// WorkloadReport aggregates a run.
type WorkloadReport struct {
	Outcomes []WorkloadOutcome
	// Executed counts queries that produced a result.
	Executed int
	// Scored counts queries with test data to evaluate on.
	Scored int
	// MeanMSE is the mean TestMSE over scored queries.
	MeanMSE float64
	// MeanDataFraction is the mean fraction of federation data used.
	MeanDataFraction float64
	// TotalTrainTime sums node-reported training time.
	TotalTrainTime time.Duration
}

// RunWorkload executes every query with the given selector and
// aggregation, scoring against test (which may be nil to skip
// scoring). Individual query failures are recorded, not fatal; the
// run only errors when no query at all executes.
func RunWorkload(l *Leader, queries []query.Query, sel selection.Selector, agg Aggregation, test *dataset.Dataset) (*WorkloadReport, error) {
	if l == nil {
		return nil, fmt.Errorf("federation: nil leader")
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("federation: empty workload")
	}
	report := &WorkloadReport{Outcomes: make([]WorkloadOutcome, 0, len(queries))}
	sumMSE, sumFrac := 0.0, 0.0
	for _, q := range queries {
		outcome := WorkloadOutcome{Query: q}
		res, err := l.Execute(q, sel, agg)
		if err != nil {
			outcome.Err = err
			report.Outcomes = append(report.Outcomes, outcome)
			continue
		}
		outcome.Result = res
		report.Executed++
		report.TotalTrainTime += res.Stats.TrainTime
		sumFrac += res.Stats.DataFraction()
		if test != nil {
			if mse, _, ok := EvaluateResult(res, test); ok {
				outcome.TestMSE = mse
				outcome.Scored = true
				report.Scored++
				sumMSE += mse
			}
		}
		report.Outcomes = append(report.Outcomes, outcome)
	}
	if report.Executed == 0 {
		return nil, fmt.Errorf("federation: no query in the workload executed")
	}
	report.MeanDataFraction = sumFrac / float64(report.Executed)
	if report.Scored > 0 {
		report.MeanMSE = sumMSE / float64(report.Scored)
	}
	return report, nil
}

// FailedQueries returns the ids of queries that produced no result.
func (r *WorkloadReport) FailedQueries() []string {
	var out []string
	for _, o := range r.Outcomes {
		if o.Err != nil {
			out = append(out, o.Query.ID)
		}
	}
	return out
}
