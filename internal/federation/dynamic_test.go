package federation

import (
	"testing"

	"qens/internal/ml"
	"qens/internal/rng"
)

func TestNodeAddSamplesRequantizes(t *testing.T) {
	d := lineDataset(100, 1, 0, 0, 10, 50)
	n, err := NewNode("n", d, 4, rng.New(50))
	if err != nil {
		t.Fatal(err)
	}
	before := n.Summary()
	if before.TotalSamples != 100 {
		t.Fatalf("before total %d", before.TotalSamples)
	}
	// New data in a previously unseen region must widen the
	// advertised space.
	var rows [][]float64
	for i := 0; i < 50; i++ {
		x := 100 + float64(i)
		rows = append(rows, []float64{x, x})
	}
	if err := n.AddSamples(rows); err != nil {
		t.Fatal(err)
	}
	after := n.Summary()
	if after.TotalSamples != 150 {
		t.Fatalf("after total %d", after.TotalSamples)
	}
	hi := 0.0
	for _, c := range after.Clusters {
		if c.Bounds.Max[0] > hi {
			hi = c.Bounds.Max[0]
		}
	}
	if hi < 149 {
		t.Fatalf("advertised space not widened: max x %v", hi)
	}
}

func TestNodeAddSamplesValidation(t *testing.T) {
	d := lineDataset(50, 1, 0, 0, 10, 51)
	n, _ := NewNode("n", d, 3, rng.New(51))
	if err := n.AddSamples([][]float64{{1}}); err == nil {
		t.Fatal("accepted wrong-width row")
	}
}

func TestLeaderSeesRequantizedData(t *testing.T) {
	d := lineDataset(100, 1, 0, 0, 10, 52)
	n, _ := NewNode("n", d, 3, rng.New(52))
	leader, err := NewLeader(Config{Spec: pLR(), Seed: 1}, nil, []Client{LocalClient{n}})
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := leader.Summaries()
	if s1[0].TotalSamples != 100 {
		t.Fatal("bad initial summary")
	}
	if err := n.AddSamples([][]float64{{50, 50}, {51, 51}}); err != nil {
		t.Fatal(err)
	}
	// Cached summaries are stale until invalidated — by design.
	s2, _ := leader.Summaries()
	if s2[0].TotalSamples != 100 {
		t.Fatal("cache unexpectedly refreshed")
	}
	leader.InvalidateSummaries()
	s3, _ := leader.Summaries()
	if s3[0].TotalSamples != 102 {
		t.Fatalf("refreshed total %d, want 102", s3[0].TotalSamples)
	}
}

// pLR is a shorthand for the Table III LR spec used in these tests.
func pLR() ml.Spec { return ml.PaperLR(1) }
