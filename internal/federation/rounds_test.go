package federation

import (
	"math"
	"testing"

	"qens/internal/cluster"
	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/selection"
)

func TestExecuteRounds(t *testing.T) {
	fleet := testFleet(t)
	q := midQuery(t)
	sel := selection.QueryDriven{Epsilon: 0.6, TopL: 2}
	res, err := fleet.Leader.ExecuteRounds(q, sel, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 || len(res.RoundDeltas) != 3 {
		t.Fatalf("rounds %d deltas %d", res.Rounds, len(res.RoundDeltas))
	}
	// The converged single global model must predict the line.
	if res.Ensemble.Size() != 1 {
		t.Fatalf("ensemble size %d, want 1", res.Ensemble.Size())
	}
	got := res.Ensemble.Predict([]float64{25})
	if math.Abs(got-51) > 10 {
		t.Fatalf("fedavg model predicts %v at x=25, want ~51", got)
	}
	// Parameter movement should not blow up over rounds.
	if res.RoundDeltas[2] > res.RoundDeltas[0]*10 {
		t.Fatalf("rounds diverging: deltas %v", res.RoundDeltas)
	}
	// Accounting scales with rounds.
	if res.Stats.SamplesUsed <= 0 || res.Stats.BytesUp <= res.Stats.BytesDown/10 {
		t.Fatalf("stats look wrong: %+v", res.Stats)
	}
}

func TestExecuteRoundsValidation(t *testing.T) {
	fleet := testFleet(t)
	sel := selection.QueryDriven{Epsilon: 0.6, TopL: 2}
	if _, err := fleet.Leader.ExecuteRounds(midQuery(t), sel, 0); err == nil {
		t.Fatal("accepted 0 rounds")
	}
}

func TestExecuteRoundsImprovesOverOneRound(t *testing.T) {
	fleet := testFleet(t)
	q := midQuery(t)
	sel := selection.QueryDriven{Epsilon: 0.6, TopL: 2}
	one, err := fleet.Leader.ExecuteRounds(q, sel, 1)
	if err != nil {
		t.Fatal(err)
	}
	five, err := fleet.Leader.ExecuteRounds(q, sel, 5)
	if err != nil {
		t.Fatal(err)
	}
	mse1, _, ok1 := EvaluateResult(&one.Result, fleet.Test)
	mse5, _, ok5 := EvaluateResult(&five.Result, fleet.Test)
	if !ok1 || !ok5 {
		t.Fatal("no test data in query")
	}
	// Five rounds must not be dramatically worse than one (usually
	// better); a 2x regression indicates a broken aggregation loop.
	if mse5 > mse1*2 {
		t.Fatalf("5 rounds (%v) much worse than 1 (%v)", mse5, mse1)
	}
}

func TestExecuteParallelMatchesSequentialSelection(t *testing.T) {
	fleet := testFleet(t)
	q := midQuery(t)
	sel := selection.QueryDriven{Epsilon: 0.6, TopL: 2}
	res, err := fleet.Leader.ExecuteParallel(q, sel, WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Participants) == 0 || res.Ensemble == nil {
		t.Fatal("parallel execute incomplete")
	}
	for _, p := range res.Participants {
		if p.NodeID == "node-3" {
			t.Fatal("parallel execute selected the adversarial node")
		}
	}
	if res.Stats.SamplesUsed == 0 || res.Stats.TrainTime <= 0 {
		t.Fatalf("stats missing: %+v", res.Stats)
	}
	// Quality parity with the sequential path.
	seq, err := fleet.Execute(q, sel, WeightedAveraging)
	if err != nil {
		t.Fatal(err)
	}
	mseP, _, _ := EvaluateResult(res, fleet.Test)
	mseS, _, _ := EvaluateResult(seq, fleet.Test)
	if mseP > mseS*3 && mseP > mseS+20 {
		t.Fatalf("parallel quality %v far from sequential %v", mseP, mseS)
	}
}

func TestExecuteParallelErrorPropagates(t *testing.T) {
	fleet := testFleet(t)
	// A selector that demands a nonexistent cluster index triggers a
	// node-side training error, which must surface.
	bad := badClusterSelector{}
	if _, err := fleet.Leader.ExecuteParallel(midQuery(t), bad, ModelAveraging); err == nil {
		t.Fatal("parallel execute swallowed a node error")
	}
}

// badClusterSelector selects node-0 with an out-of-range cluster.
type badClusterSelector struct{}

func (badClusterSelector) Name() string { return "bad" }

func (badClusterSelector) Select(_ query.Query, _ []cluster.NodeSummary, _ *selection.Context) ([]selection.Participant, error) {
	return []selection.Participant{{NodeID: "node-0", Rank: 1, Clusters: []int{99}}}, nil
}

func TestEvaluateGlobal(t *testing.T) {
	fleet := testFleet(t)
	q := midQuery(t)
	sel := selection.QueryDriven{Epsilon: 0.6, TopL: 2}
	res, err := fleet.Leader.ExecuteRounds(q, sel, 2)
	if err != nil {
		t.Fatal(err)
	}
	mse, n, err := fleet.Leader.EvaluateGlobal(res.GlobalParams, q.Bounds)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no in-query samples across the federation")
	}
	if mse <= 0 || mse > 200 {
		t.Fatalf("pooled MSE %v", mse)
	}
	// Bounds with no data anywhere: zero samples, no error.
	far := geometry.MustRect([]float64{1e6, 1e6}, []float64{2e6, 2e6})
	mse, n, err = fleet.Leader.EvaluateGlobal(res.GlobalParams, far)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || mse != 0 {
		t.Fatalf("far bounds gave mse=%v n=%d", mse, n)
	}
}
