package cluster

import (
	"math"
	"testing"

	"qens/internal/rng"
)

func TestInertiaCurveMonotone(t *testing.T) {
	src := rng.New(41)
	points, _ := threeBlobs(300, src)
	curve, err := InertiaCurve(points, []int{1, 2, 3, 4}, Config{Restarts: 5}, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]*1.01 {
			t.Fatalf("inertia curve rose at index %d: %v", i, curve)
		}
	}
}

func TestChooseKElbowFindsBlobs(t *testing.T) {
	src := rng.New(42)
	points, _ := threeBlobs(450, src)
	k, err := ChooseKElbow(points, 8, Config{Restarts: 5}, src)
	if err != nil {
		t.Fatal(err)
	}
	// Three well-separated blobs: the elbow must land on or next to 3.
	if k < 2 || k > 4 {
		t.Fatalf("elbow chose K=%d for 3 blobs", k)
	}
}

func TestChooseKElbowValidation(t *testing.T) {
	src := rng.New(43)
	points, _ := threeBlobs(30, src)
	if _, err := ChooseKElbow(points, 1, Config{}, src); err == nil {
		t.Fatal("accepted maxK=1")
	}
}

func TestChooseKElbowDegenerate(t *testing.T) {
	// All-identical points: inertia never decreases; K=1 is right.
	points := make([][]float64, 20)
	for i := range points {
		points[i] = []float64{5, 5}
	}
	k, err := ChooseKElbow(points, 5, Config{}, rng.New(44))
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("degenerate data chose K=%d, want 1", k)
	}
}

func TestSilhouetteSeparatedVsMixed(t *testing.T) {
	src := rng.New(45)
	points, labels := threeBlobs(150, src)
	good, err := Silhouette(points, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if good < 0.7 {
		t.Fatalf("separated blobs silhouette %v, want > 0.7", good)
	}
	// A random assignment must score much worse.
	bad := make([]int, len(points))
	for i := range bad {
		bad[i] = src.Intn(3)
	}
	worse, err := Silhouette(points, bad, 3)
	if err != nil {
		t.Fatal(err)
	}
	if worse > good-0.5 {
		t.Fatalf("random assignment silhouette %v not clearly below %v", worse, good)
	}
}

func TestSilhouetteValidation(t *testing.T) {
	pts := [][]float64{{0}, {1}}
	if _, err := Silhouette(pts, []int{0}, 2); err == nil {
		t.Fatal("accepted length mismatch")
	}
	if _, err := Silhouette(pts, []int{0, 5}, 2); err == nil {
		t.Fatal("accepted out-of-range assignment")
	}
	if _, err := Silhouette(pts, []int{0, 1}, 1); err == nil {
		t.Fatal("accepted k=1")
	}
}

func TestSilhouetteBounded(t *testing.T) {
	src := rng.New(46)
	points, _ := threeBlobs(90, src)
	res, err := KMeans(points, Config{K: 4}, src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Silhouette(points, res.Assignments, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s < -1 || s > 1 {
		t.Fatalf("silhouette %v outside [-1,1]", s)
	}
}

func TestMiniBatchKMeans(t *testing.T) {
	src := rng.New(47)
	points, labels := threeBlobs(600, src)
	res, err := MiniBatchKMeans(points, Config{K: 3, MaxIterations: 60}, 64, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("%d clusters", len(res.Clusters))
	}
	// Compare against exact Lloyd: mini-batch inertia should be within
	// 2x (usually much closer) for well-separated blobs.
	exact, err := KMeans(points, Config{K: 3, Restarts: 3}, rng.New(48))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > exact.Inertia*2 {
		t.Fatalf("mini-batch inertia %v vs exact %v", res.Inertia, exact.Inertia)
	}
	// Blob purity: majority label per cluster should dominate.
	for c := range res.Clusters {
		counts := map[int]int{}
		for _, m := range res.Clusters[c].Members {
			counts[labels[m]]++
		}
		best, total := 0, 0
		for _, n := range counts {
			total += n
			if n > best {
				best = n
			}
		}
		if total > 0 && float64(best)/float64(total) < 0.9 {
			t.Fatalf("cluster %d impure: %v", c, counts)
		}
	}
}

func TestMiniBatchKMeansValidation(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}}
	if _, err := MiniBatchKMeans(pts, Config{K: 2}, 0, rng.New(1)); err == nil {
		t.Fatal("accepted batch size 0")
	}
	if _, err := MiniBatchKMeans(pts, Config{K: 5}, 2, rng.New(1)); err == nil {
		t.Fatal("accepted K > n")
	}
	// Oversized batch clamps rather than failing.
	if _, err := MiniBatchKMeans(pts, Config{K: 2, MaxIterations: 5}, 100, rng.New(1)); err != nil {
		t.Fatal(err)
	}
}

func TestMiniBatchBoundsContainMembers(t *testing.T) {
	src := rng.New(49)
	points, _ := threeBlobs(300, src)
	res, err := MiniBatchKMeans(points, Config{K: 4, MaxIterations: 40}, 32, src)
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range res.Clusters {
		for _, m := range c.Members {
			if !c.Bounds.Contains(points[m]) {
				t.Fatalf("cluster %d bounds exclude member %d", ci, m)
			}
		}
	}
	if math.IsNaN(res.Inertia) {
		t.Fatal("NaN inertia")
	}
}

func TestChooseKSilhouette(t *testing.T) {
	src := rng.New(50)
	points, _ := threeBlobs(240, src)
	k, score, err := ChooseKSilhouette(points, 6, Config{Restarts: 4}, src)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Fatalf("silhouette chose K=%d for 3 blobs (score %v)", k, score)
	}
	if score < 0.6 {
		t.Fatalf("best silhouette %v suspiciously low", score)
	}
	if _, _, err := ChooseKSilhouette(points, 1, Config{}, src); err == nil {
		t.Fatal("accepted maxK=1")
	}
}
