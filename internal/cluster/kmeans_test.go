package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"qens/internal/matrix"
	"qens/internal/rng"
)

// threeBlobs generates three well-separated Gaussian blobs.
func threeBlobs(n int, src *rng.Source) (points [][]float64, labels []int) {
	centers := [][]float64{{0, 0}, {20, 0}, {0, 20}}
	for i := 0; i < n; i++ {
		c := i % 3
		points = append(points, []float64{
			src.Normal(centers[c][0], 1),
			src.Normal(centers[c][1], 1),
		})
		labels = append(labels, c)
	}
	return points, labels
}

func TestKMeansRecoversBlobs(t *testing.T) {
	src := rng.New(1)
	points, labels := threeBlobs(300, src)
	res, err := KMeans(points, Config{K: 3}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("%d clusters", len(res.Clusters))
	}
	// Every pair of points from the same blob must share a cluster.
	blobToCluster := map[int]int{}
	for i := range points {
		b := labels[i]
		if c, ok := blobToCluster[b]; ok {
			if res.Assignments[i] != c {
				t.Fatalf("blob %d split across clusters", b)
			}
		} else {
			blobToCluster[b] = res.Assignments[i]
		}
	}
	if len(blobToCluster) != 3 {
		t.Fatal("blobs merged")
	}
}

func TestKMeansInertiaConsistent(t *testing.T) {
	src := rng.New(2)
	points, _ := threeBlobs(150, src)
	res, err := KMeans(points, Config{K: 3}, src)
	if err != nil {
		t.Fatal(err)
	}
	recomputed := Inertia(points, res.Clusters, res.Assignments)
	if math.Abs(recomputed-res.Inertia) > 1e-9 {
		t.Fatalf("inertia %v, recomputed %v", res.Inertia, recomputed)
	}
}

func TestKMeansErrors(t *testing.T) {
	src := rng.New(1)
	if _, err := KMeans([][]float64{{1}}, Config{K: 2}, src); err == nil {
		t.Fatal("accepted fewer points than clusters")
	}
	if _, err := KMeans([][]float64{{1}, {2}}, Config{K: 0}, src); err == nil {
		t.Fatal("accepted K=0")
	}
	if _, err := KMeans([][]float64{{1, 2}, {1}}, Config{K: 1}, src); err == nil {
		t.Fatal("accepted ragged points")
	}
}

func TestKMeansSinglePointPerCluster(t *testing.T) {
	points := [][]float64{{0, 0}, {10, 10}, {20, 20}}
	res, err := KMeans(points, Config{K: 3}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-12 {
		t.Fatalf("exact clustering should have zero inertia, got %v", res.Inertia)
	}
	for _, c := range res.Clusters {
		if c.Size != 1 {
			t.Fatalf("cluster size %d, want 1", c.Size)
		}
	}
}

func TestKMeansK1(t *testing.T) {
	src := rng.New(4)
	points, _ := threeBlobs(90, src)
	res, err := KMeans(points, Config{K: 1}, src)
	if err != nil {
		t.Fatal(err)
	}
	// The single centroid must be the global mean.
	mean := make([]float64, 2)
	for _, p := range points {
		matrix.AxpyVec(mean, 1, p)
	}
	matrix.ScaleVec(mean, 1/float64(len(points)))
	if matrix.Dist(mean, res.Clusters[0].Centroid) > 1e-6 {
		t.Fatalf("K=1 centroid %v, want mean %v", res.Clusters[0].Centroid, mean)
	}
	if res.Clusters[0].Size != len(points) {
		t.Fatal("K=1 cluster must hold all points")
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}, {5, 5}}
	res, err := KMeans(points, Config{K: 2}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.Clusters {
		total += c.Size
	}
	if total != 4 {
		t.Fatalf("cluster sizes sum to %d", total)
	}
}

func TestKMeansBoundsContainMembers(t *testing.T) {
	src := rng.New(6)
	points, _ := threeBlobs(200, src)
	res, err := KMeans(points, Config{K: 4}, src)
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range res.Clusters {
		for _, m := range c.Members {
			if !c.Bounds.Contains(points[m]) {
				t.Fatalf("cluster %d bounds exclude member %d", ci, m)
			}
		}
	}
}

func TestKMeansRestartsNotWorse(t *testing.T) {
	src1, src2 := rng.New(7), rng.New(7)
	points, _ := threeBlobs(200, rng.New(8))
	one, err := KMeans(points, Config{K: 5, Restarts: 1}, src1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := KMeans(points, Config{K: 5, Restarts: 8}, src2)
	if err != nil {
		t.Fatal(err)
	}
	if many.Inertia > one.Inertia*(1+1e-9) {
		t.Fatalf("restarts made inertia worse: %v vs %v", many.Inertia, one.Inertia)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	points, _ := threeBlobs(120, rng.New(9))
	a, _ := KMeans(points, Config{K: 3}, rng.New(10))
	b, _ := KMeans(points, Config{K: 3}, rng.New(10))
	if a.Inertia != b.Inertia {
		t.Fatalf("non-deterministic inertia: %v vs %v", a.Inertia, b.Inertia)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("non-deterministic assignments")
		}
	}
}

// Property: every point is assigned to its genuinely nearest centroid
// after convergence (Lloyd's invariant).
func TestKMeansNearestAssignmentInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		points, _ := threeBlobs(60, src)
		res, err := KMeans(points, Config{K: 3}, src)
		if err != nil {
			return false
		}
		for i, p := range points {
			assigned := matrix.SqDist(p, res.Clusters[res.Assignments[i]].Centroid)
			for _, c := range res.Clusters {
				if matrix.SqDist(p, c.Centroid) < assigned-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: inertia never increases when K increases (with shared
// seeding and enough restarts this holds empirically for blobs).
func TestInertiaDecreasesWithK(t *testing.T) {
	points, _ := threeBlobs(300, rng.New(11))
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		res, err := KMeans(points, Config{K: k, Restarts: 6}, rng.New(12))
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev*(1+0.01) {
			t.Fatalf("inertia rose at K=%d: %v after %v", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}
