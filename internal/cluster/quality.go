package cluster

import (
	"fmt"
	"math"

	"qens/internal/matrix"
	"qens/internal/rng"
)

// Clustering-quality utilities. The paper fixes K = 5 "to avoid
// biases"; these functions support the K ablation by quantifying what
// other choices would do — the elbow heuristic over the Eq. 1
// quantization loss, and the silhouette coefficient.

// InertiaCurve runs k-means for each K in ks and returns the
// corresponding inertias (Eq. 1 losses).
func InertiaCurve(points [][]float64, ks []int, cfg Config, src *rng.Source) ([]float64, error) {
	out := make([]float64, len(ks))
	for i, k := range ks {
		c := cfg
		c.K = k
		res, err := KMeans(points, c, src.Split())
		if err != nil {
			return nil, fmt.Errorf("cluster: inertia curve at K=%d: %w", k, err)
		}
		out[i] = res.Inertia
	}
	return out, nil
}

// ChooseKElbow picks K by the maximum-curvature (elbow) heuristic over
// the inertia curve for K = 1..maxK: the K whose point is farthest
// from the line joining the curve's endpoints.
func ChooseKElbow(points [][]float64, maxK int, cfg Config, src *rng.Source) (int, error) {
	if maxK < 2 {
		return 0, fmt.Errorf("cluster: elbow needs maxK >= 2, got %d", maxK)
	}
	if maxK > len(points) {
		maxK = len(points)
	}
	ks := make([]int, maxK)
	for i := range ks {
		ks[i] = i + 1
	}
	inertias, err := InertiaCurve(points, ks, cfg, src)
	if err != nil {
		return 0, err
	}
	// Distance from each curve point to the endpoint chord, in a
	// normalized coordinate system so scale does not dominate.
	x0, y0 := float64(ks[0]), inertias[0]
	x1, y1 := float64(ks[len(ks)-1]), inertias[len(ks)-1]
	spanX, spanY := x1-x0, y0-y1
	if spanY <= 0 {
		// Inertia did not decrease: the data is degenerate
		// (duplicate points); a single cluster describes it.
		return 1, nil
	}
	best, bestDist := ks[0], -1.0
	for i, k := range ks {
		nx := (float64(k) - x0) / spanX
		ny := (y0 - inertias[i]) / spanY
		// Distance to the y = x chord in normalized space.
		d := math.Abs(ny-nx) / math.Sqrt2
		if ny >= nx && d > bestDist { // above the chord = convex side
			best, bestDist = k, d
		}
	}
	return best, nil
}

// Silhouette returns the mean silhouette coefficient of an assignment
// in [-1, 1]; higher is better-separated. Points in singleton clusters
// contribute 0, matching the standard convention. O(n²) — intended for
// node-scale datasets, not corpora.
func Silhouette(points [][]float64, assign []int, k int) (float64, error) {
	if len(points) != len(assign) {
		return 0, fmt.Errorf("cluster: %d points, %d assignments", len(points), len(assign))
	}
	if len(points) < 2 || k < 2 {
		return 0, fmt.Errorf("cluster: silhouette needs >= 2 points and >= 2 clusters")
	}
	counts := make([]int, k)
	for i, a := range assign {
		if a < 0 || a >= k {
			return 0, fmt.Errorf("cluster: assignment %d out of range at point %d", a, i)
		}
		counts[a]++
	}
	total := 0.0
	for i, p := range points {
		// Mean distance to every cluster.
		sums := make([]float64, k)
		for j, q := range points {
			if i == j {
				continue
			}
			sums[assign[j]] += matrix.Dist(p, q)
		}
		own := assign[i]
		if counts[own] <= 1 {
			continue // convention: silhouette 0 for singletons
		}
		a := sums[own] / float64(counts[own]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue // only one non-empty cluster
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(len(points)), nil
}

// MiniBatchKMeans is the web-scale variant (Sculley 2010): each
// iteration samples batchSize points and moves their nearest centroids
// by a per-centroid decaying learning rate. It trades a slightly worse
// Eq. 1 loss for an order-of-magnitude less work on large nodes; the
// result carries full assignments and bounds like KMeans.
func MiniBatchKMeans(points [][]float64, cfg Config, batchSize int, src *rng.Source) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(len(points)); err != nil {
		return nil, err
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("cluster: batch size %d < 1", batchSize)
	}
	if batchSize > len(points) {
		batchSize = len(points)
	}
	centroids := seedPlusPlus(points, cfg.K, src)
	counts := make([]float64, cfg.K)
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		for b := 0; b < batchSize; b++ {
			p := points[src.Intn(len(points))]
			k := nearest(p, centroids)
			counts[k]++
			eta := 1 / counts[k]
			for j := range centroids[k] {
				centroids[k][j] += eta * (p[j] - centroids[k][j])
			}
		}
	}
	assign := make([]int, len(points))
	for i, p := range points {
		assign[i] = nearest(p, centroids)
	}
	return buildResult(points, centroids, assign, cfg.MaxIterations), nil
}

// ChooseKSilhouette picks K in [2, maxK] maximizing the mean
// silhouette coefficient. It is O(maxK · n²); intended for node-scale
// data. Returns the best K and its silhouette.
func ChooseKSilhouette(points [][]float64, maxK int, cfg Config, src *rng.Source) (int, float64, error) {
	if maxK < 2 {
		return 0, 0, fmt.Errorf("cluster: silhouette chooser needs maxK >= 2, got %d", maxK)
	}
	if maxK > len(points) {
		maxK = len(points)
	}
	bestK, bestScore := 0, -2.0
	for k := 2; k <= maxK; k++ {
		res, err := KMeans(points, withK(cfg, k), src.Split())
		if err != nil {
			return 0, 0, err
		}
		score, err := Silhouette(points, res.Assignments, k)
		if err != nil {
			return 0, 0, err
		}
		if score > bestScore {
			bestK, bestScore = k, score
		}
	}
	return bestK, bestScore, nil
}

func withK(cfg Config, k int) Config {
	cfg.K = k
	return cfg
}
