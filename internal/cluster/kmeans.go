// Package cluster implements the k-means quantization each edge node
// applies to its local data space (paper §III-C, Eq. 1): Lloyd's
// algorithm with k-means++ seeding, the quantization loss (inertia),
// and the cluster summaries — bounding rectangles, representatives and
// sizes — that nodes ship to the leader. Shipping only these summaries
// is what gives the paper its O(1) communication claim.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"qens/internal/geometry"
	"qens/internal/matrix"
	"qens/internal/rng"
)

// Config controls a k-means run.
type Config struct {
	// K is the number of clusters (the paper fixes K = 5 for all
	// nodes "to avoid biases", §V-A).
	K int
	// MaxIterations bounds Lloyd's algorithm (default 100).
	MaxIterations int
	// Tolerance stops iteration when no centroid moves farther than
	// this Euclidean distance (default 1e-6).
	Tolerance float64
	// Restarts runs the algorithm this many times with different
	// seedings and keeps the lowest-inertia result (default 1).
	Restarts int
}

func (c Config) withDefaults() Config {
	if c.MaxIterations == 0 {
		c.MaxIterations = 100
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1e-6
	}
	if c.Restarts == 0 {
		c.Restarts = 1
	}
	return c
}

// Validate checks the configuration against a dataset of n points.
func (c Config) Validate(n int) error {
	if c.K < 1 {
		return fmt.Errorf("cluster: K must be positive, got %d", c.K)
	}
	if n < c.K {
		return fmt.Errorf("%w: %d points for K=%d", ErrTooFewPoints, n, c.K)
	}
	return nil
}

// ErrTooFewPoints reports fewer points than clusters.
var ErrTooFewPoints = errors.New("cluster: fewer points than clusters")

// Cluster is one quantization cell: its representative (the paper's
// u_k), the tight bounding rectangle of its members (the paper's
// boundary vector k), the member indices into the clustered data, and
// the member count.
type Cluster struct {
	Centroid []float64
	Bounds   geometry.Rect
	Members  []int
	Size     int
}

// Result is the outcome of a k-means run.
type Result struct {
	Clusters []Cluster
	// Inertia is the quantization loss of Eq. 1: the sum of squared
	// distances from every point to its assigned representative.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
	// Assignments maps each input point to its cluster index.
	Assignments []int
}

// KMeans clusters points (each a d-dimensional sample, the paper's ξ)
// into cfg.K cells.
func KMeans(points [][]float64, cfg Config, src *rng.Source) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(len(points)); err != nil {
		return nil, err
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("cluster: point %d has %d dims, want %d", i, len(p), d)
		}
	}

	var best *Result
	for r := 0; r < cfg.Restarts; r++ {
		res := lloyd(points, cfg, src)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// lloyd runs one seeded Lloyd optimization.
func lloyd(points [][]float64, cfg Config, src *rng.Source) *Result {
	centroids := seedPlusPlus(points, cfg.K, src)
	d := len(points[0])
	assign := make([]int, len(points))
	counts := make([]int, cfg.K)
	sums := make([][]float64, cfg.K)
	for k := range sums {
		sums[k] = make([]float64, d)
	}

	iterations := 0
	for ; iterations < cfg.MaxIterations; iterations++ {
		// Assignment step (parallel across GOMAXPROCS; bit-exact).
		assignPoints(points, centroids, assign)
		// Update step.
		for k := range sums {
			counts[k] = 0
			for j := range sums[k] {
				sums[k][j] = 0
			}
		}
		for i, p := range points {
			k := assign[i]
			counts[k]++
			matrix.AxpyVec(sums[k], 1, p)
		}
		moved := 0.0
		for k := range centroids {
			if counts[k] == 0 {
				// Empty cluster: reseed at the point farthest from
				// its current centroid, a standard Lloyd repair.
				far := farthestPoint(points, centroids, assign)
				copy(centroids[k], points[far])
				assign[far] = k
				moved = math.Inf(1)
				continue
			}
			inv := 1 / float64(counts[k])
			for j := range centroids[k] {
				next := sums[k][j] * inv
				moved = math.Max(moved, math.Abs(next-centroids[k][j]))
				centroids[k][j] = next
			}
		}
		if moved <= cfg.Tolerance {
			iterations++
			break
		}
	}

	// Final assignment with the settled centroids.
	assignPoints(points, centroids, assign)
	return buildResult(points, centroids, assign, iterations)
}

// assignParallelThreshold is the dataset size below which sharding the
// assignment step costs more in goroutine churn than it saves. Small
// node partitions (the common per-edge case) stay on the sequential
// path.
const assignParallelThreshold = 2048

// assignPoints computes assign[i] = nearest(points[i], centroids),
// sharding the loop across GOMAXPROCS workers for large datasets.
// Each point's nearest centroid depends only on that point and the
// (read-only) centroids, and every worker writes a disjoint slice of
// assign, so the parallel result is bit-for-bit identical to the
// sequential loop — the update and inertia accumulations, whose float
// summation order matters, stay sequential in the caller.
func assignPoints(points [][]float64, centroids [][]float64, assign []int) {
	workers := runtime.GOMAXPROCS(0)
	if len(points) < assignParallelThreshold || workers < 2 {
		for i, p := range points {
			assign[i] = nearest(p, centroids)
		}
		return
	}
	if workers > len(points) {
		workers = len(points)
	}
	chunk := (len(points) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(points) {
			hi = len(points)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				assign[i] = nearest(points[i], centroids)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// seedPlusPlus performs k-means++ initialization.
func seedPlusPlus(points [][]float64, k int, src *rng.Source) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := src.Intn(len(points))
	centroids = append(centroids, matrix.CloneVec(points[first]))

	dist := make([]float64, len(points))
	for i, p := range points {
		dist[i] = matrix.SqDist(p, centroids[0])
	}
	for len(centroids) < k {
		idx := src.Choice(dist)
		centroids = append(centroids, matrix.CloneVec(points[idx]))
		for i, p := range points {
			if d2 := matrix.SqDist(p, centroids[len(centroids)-1]); d2 < dist[i] {
				dist[i] = d2
			}
		}
	}
	return centroids
}

// nearest returns the index of the centroid closest to p.
func nearest(p []float64, centroids [][]float64) int {
	best, bestDist := 0, math.Inf(1)
	for k, c := range centroids {
		if d2 := matrix.SqDist(p, c); d2 < bestDist {
			best, bestDist = k, d2
		}
	}
	return best
}

// farthestPoint returns the index of the point farthest from its
// assigned centroid, used to repair empty clusters.
func farthestPoint(points [][]float64, centroids [][]float64, assign []int) int {
	best, bestDist := 0, -1.0
	for i, p := range points {
		if d2 := matrix.SqDist(p, centroids[assign[i]]); d2 > bestDist {
			best, bestDist = i, d2
		}
	}
	return best
}

// buildResult assembles clusters, bounds and inertia.
func buildResult(points [][]float64, centroids [][]float64, assign []int, iterations int) *Result {
	k := len(centroids)
	clusters := make([]Cluster, k)
	for c := range clusters {
		clusters[c].Centroid = matrix.CloneVec(centroids[c])
	}
	inertia := 0.0
	for i, p := range points {
		c := assign[i]
		clusters[c].Members = append(clusters[c].Members, i)
		inertia += matrix.SqDist(p, centroids[c])
	}
	for c := range clusters {
		clusters[c].Size = len(clusters[c].Members)
		memberPoints := make([][]float64, 0, clusters[c].Size)
		for _, idx := range clusters[c].Members {
			memberPoints = append(memberPoints, points[idx])
		}
		if rect, ok := geometry.BoundingRect(memberPoints); ok {
			clusters[c].Bounds = rect
		} else {
			// Empty cluster (possible only at K > distinct points):
			// degenerate rectangle at the centroid.
			clusters[c].Bounds = geometry.Rect{
				Min: matrix.CloneVec(clusters[c].Centroid),
				Max: matrix.CloneVec(clusters[c].Centroid),
			}
		}
	}
	out := &Result{
		Clusters:    clusters,
		Inertia:     inertia,
		Iterations:  iterations,
		Assignments: append([]int(nil), assign...),
	}
	return out
}

// Inertia recomputes Eq. 1 for a given assignment; exposed for tests
// and diagnostics.
func Inertia(points [][]float64, clusters []Cluster, assign []int) float64 {
	total := 0.0
	for i, p := range points {
		total += matrix.SqDist(p, clusters[assign[i]].Centroid)
	}
	return total
}
