package cluster

import (
	"testing"

	"qens/internal/dataset"
	"qens/internal/rng"
)

func TestGridQuantizeBasics(t *testing.T) {
	d := testDataset(t, 300, 30)
	q, err := GridQuantize(d, 3) // up to 9 cells in 2-D
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Result.Clusters) == 0 || len(q.Result.Clusters) > 9 {
		t.Fatalf("%d cells", len(q.Result.Clusters))
	}
	total := 0
	for ci, c := range q.Result.Clusters {
		if c.Size != len(c.Members) {
			t.Fatalf("cell %d size mismatch", ci)
		}
		total += c.Size
		for _, m := range c.Members {
			if !c.Bounds.Contains(d.Row(m)) {
				t.Fatalf("cell %d bounds exclude member %d", ci, m)
			}
			if q.Result.Assignments[m] != ci {
				t.Fatalf("assignment mismatch for row %d", m)
			}
		}
	}
	if total != 300 {
		t.Fatalf("cells cover %d rows", total)
	}
}

func TestGridQuantizeSummary(t *testing.T) {
	d := testDataset(t, 200, 31)
	q, err := GridQuantize(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Summarize("grid-node")
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.TotalSamples != 200 {
		t.Fatalf("total %d", s.TotalSamples)
	}
}

func TestGridQuantizeDeterministic(t *testing.T) {
	d := testDataset(t, 150, 32)
	a, _ := GridQuantize(d, 3)
	b, _ := GridQuantize(d, 3)
	if len(a.Result.Clusters) != len(b.Result.Clusters) {
		t.Fatal("non-deterministic cell count")
	}
	for i := range a.Result.Assignments {
		if a.Result.Assignments[i] != b.Result.Assignments[i] {
			t.Fatal("non-deterministic assignment")
		}
	}
}

func TestGridQuantizeErrors(t *testing.T) {
	if _, err := GridQuantize(dataset.MustNew([]string{"x", "y"}, "y"), 3); err == nil {
		t.Fatal("accepted empty dataset")
	}
	d := testDataset(t, 10, 33)
	if _, err := GridQuantize(d, 0); err == nil {
		t.Fatal("accepted zero buckets")
	}
}

func TestGridQuantizeSingleBucket(t *testing.T) {
	d := testDataset(t, 50, 34)
	q, err := GridQuantize(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Result.Clusters) != 1 || q.Result.Clusters[0].Size != 50 {
		t.Fatalf("single bucket: %d cells", len(q.Result.Clusters))
	}
}

func TestGridQuantizeConstantColumn(t *testing.T) {
	d := dataset.MustNew([]string{"x", "y"}, "y")
	for i := 0; i < 30; i++ {
		d.MustAppend([]float64{5, float64(i)})
	}
	q, err := GridQuantize(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Constant x collapses to one bucket in that dimension.
	if len(q.Result.Clusters) > 3 {
		t.Fatalf("%d cells for a constant column", len(q.Result.Clusters))
	}
}

func TestGridVsKMeansInertia(t *testing.T) {
	d := testDataset(t, 400, 35)
	grid, err := GridQuantize(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	km, err := Quantize(d, Config{K: len(grid.Result.Clusters), Restarts: 3}, rng.New(36))
	if err != nil {
		t.Fatal(err)
	}
	// k-means optimizes Eq. 1 directly; at equal cell counts it must
	// not be (much) worse than the data-oblivious grid.
	if km.Result.Inertia > grid.Result.Inertia*1.1 {
		t.Fatalf("k-means inertia %v worse than grid %v", km.Result.Inertia, grid.Result.Inertia)
	}
}
