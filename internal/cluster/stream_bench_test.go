package cluster

import (
	"testing"

	"qens/internal/rng"
)

// benchPoints draws n 2-dim rows from a k-mode Gaussian mixture, the
// shape a node's data space takes in the simulated fleets.
func benchPoints(n, modes int, src *rng.Source) [][]float64 {
	points := make([][]float64, n)
	for i := range points {
		m := float64(src.Intn(modes))
		points[i] = []float64{
			m*20 + src.Normal(0, 2),
			m*-15 + src.Normal(0, 2),
		}
	}
	return points
}

// BenchmarkRequantize10k is the streaming-ingestion speed contract: at
// 10k samples with 1%-sized mini-batches, one incremental step (absorb
// a batch, then a single assignment pass to rebuild bounds and sizes)
// must beat a full Lloyd re-quantization by >=3x. scripts/bench_ingest.sh
// gates CI on the ratio.
func BenchmarkRequantize10k(b *testing.B) {
	const (
		n     = 10_000
		batch = n / 100
		k     = 5
	)
	points := benchPoints(n, k, rng.New(7))
	base, err := KMeans(points, Config{K: k}, rng.New(7))
	if err != nil {
		b.Fatal(err)
	}

	b.Run("mode=full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := KMeans(points, Config{K: k}, rng.New(uint64(i)+1)); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("mode=incremental", func(b *testing.B) {
		sq, err := NewStreamQuantizer(base)
		if err != nil {
			b.Fatal(err)
		}
		fresh := benchPoints(batch, k, rng.New(11))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sq.Absorb(fresh); err != nil {
				b.Fatal(err)
			}
			if _, err := sq.Requantize(points); err != nil {
				b.Fatal(err)
			}
		}
	})
}
