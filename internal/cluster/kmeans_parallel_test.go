package cluster

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"qens/internal/rng"
)

// TestAssignPointsMatchesSequential pins the parallel assignment step
// to the sequential loop, element for element, on a dataset large
// enough to cross assignParallelThreshold. Nearest-centroid lookup is
// a pure per-point function, so any divergence is a sharding bug.
func TestAssignPointsMatchesSequential(t *testing.T) {
	src := rng.New(41)
	n := assignParallelThreshold * 2
	points := make([][]float64, n)
	for i := range points {
		points[i] = []float64{src.Float64() * 10, src.Float64() * 10, src.Float64() * 10}
	}
	centroids := make([][]float64, 7)
	for k := range centroids {
		centroids[k] = []float64{src.Float64() * 10, src.Float64() * 10, src.Float64() * 10}
	}

	want := make([]int, n)
	for i, p := range points {
		want[i] = nearest(p, centroids)
	}
	got := make([]int, n)
	assignPoints(points, centroids, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assign[%d] = %d parallel, %d sequential", i, got[i], want[i])
		}
	}
}

// TestKMeansParallelDeterminism runs the full algorithm on a large
// dataset at GOMAXPROCS=1 (forcing the sequential path through the
// worker-count guard) and again at the ambient parallelism, and
// requires bit-identical results: same assignments, same iteration
// count, and float-bit-equal centroids and inertia. This is the
// satellite's contract that parallelizing Lloyd's assignment step
// changes wall-clock time and nothing else.
func TestKMeansParallelDeterminism(t *testing.T) {
	src := rng.New(42)
	n := assignParallelThreshold + 512
	points := make([][]float64, n)
	for i := range points {
		c := float64(i % 3 * 8)
		points[i] = []float64{c + src.Normal(0, 1), c + src.Normal(0, 1)}
	}

	prev := runtime.GOMAXPROCS(1)
	seq, err := KMeans(points, Config{K: 5}, rng.New(7))
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if prev < 2 {
		t.Log("single-CPU runner: parallel and sequential paths coincide")
	}
	par, err := KMeans(points, Config{K: 5}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}

	if math.Float64bits(seq.Inertia) != math.Float64bits(par.Inertia) {
		t.Fatalf("inertia differs: %v sequential, %v parallel", seq.Inertia, par.Inertia)
	}
	if seq.Iterations != par.Iterations {
		t.Fatalf("iterations differ: %d sequential, %d parallel", seq.Iterations, par.Iterations)
	}
	if !reflect.DeepEqual(seq.Assignments, par.Assignments) {
		t.Fatal("assignments differ between sequential and parallel runs")
	}
	for k := range seq.Clusters {
		for j := range seq.Clusters[k].Centroid {
			a := math.Float64bits(seq.Clusters[k].Centroid[j])
			b := math.Float64bits(par.Clusters[k].Centroid[j])
			if a != b {
				t.Fatalf("centroid %d dim %d differs in bits: %x vs %x", k, j, a, b)
			}
		}
	}
}

// BenchmarkAssignPoints measures the assignment step both ways so the
// speedup (and the small-N break-even) is visible in bench output.
func BenchmarkAssignPoints(b *testing.B) {
	src := rng.New(43)
	n := 32768
	points := make([][]float64, n)
	for i := range points {
		points[i] = []float64{src.Float64(), src.Float64(), src.Float64(), src.Float64()}
	}
	centroids := make([][]float64, 8)
	for k := range centroids {
		centroids[k] = []float64{src.Float64(), src.Float64(), src.Float64(), src.Float64()}
	}
	assign := make([]int, n)

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, p := range points {
				assign[j] = nearest(p, centroids)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			assignPoints(points, centroids, assign)
		}
	})
}
