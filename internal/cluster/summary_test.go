package cluster

import (
	"testing"

	"qens/internal/dataset"
	"qens/internal/geometry"
	"qens/internal/rng"
)

func testDataset(t *testing.T, n int, seed uint64) *dataset.Dataset {
	t.Helper()
	src := rng.New(seed)
	d := dataset.MustNew([]string{"x", "y"}, "y")
	for i := 0; i < n; i++ {
		x := src.Uniform(0, 100)
		d.MustAppend([]float64{x, 2*x + src.Normal(0, 1)})
	}
	return d
}

func TestQuantize(t *testing.T) {
	d := testDataset(t, 200, 1)
	q, err := Quantize(d, Config{K: 5}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Result.Clusters) != 5 {
		t.Fatalf("%d clusters", len(q.Result.Clusters))
	}
	total := 0
	for _, c := range q.Result.Clusters {
		total += c.Size
	}
	if total != 200 {
		t.Fatalf("cluster members sum to %d", total)
	}
}

func TestQuantizeEmpty(t *testing.T) {
	d := dataset.MustNew([]string{"x", "y"}, "y")
	if _, err := Quantize(d, Config{K: 2}, rng.New(1)); err == nil {
		t.Fatal("quantized empty dataset")
	}
}

func TestSummarize(t *testing.T) {
	d := testDataset(t, 150, 3)
	q, err := Quantize(d, Config{K: 4}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	s := q.Summarize("node-7")
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NodeID != "node-7" || s.K() != 4 || s.TotalSamples != 150 {
		t.Fatalf("summary %+v", s)
	}
	sum := 0
	for _, c := range s.Clusters {
		if c.Bounds.Dims() != 2 {
			t.Fatalf("bounds dims %d", c.Bounds.Dims())
		}
		if len(c.Centroid) != 2 {
			t.Fatalf("centroid dims %d", len(c.Centroid))
		}
		sum += c.Size
	}
	if sum != 150 {
		t.Fatalf("summary sizes sum to %d", sum)
	}
}

func TestSummarizeIndependentOfSource(t *testing.T) {
	d := testDataset(t, 100, 5)
	q, _ := Quantize(d, Config{K: 3}, rng.New(6))
	s := q.Summarize("n")
	// Mutating the summary must not corrupt the quantization.
	s.Clusters[0].Bounds.Min[0] = -1e9
	s.Clusters[0].Centroid[0] = -1e9
	if q.Result.Clusters[0].Bounds.Min[0] == -1e9 || q.Result.Clusters[0].Centroid[0] == -1e9 {
		t.Fatal("Summarize aliases internal state")
	}
}

func TestClusterData(t *testing.T) {
	d := testDataset(t, 120, 7)
	q, _ := Quantize(d, Config{K: 3}, rng.New(8))
	for k := 0; k < 3; k++ {
		cd, err := q.ClusterData(k)
		if err != nil {
			t.Fatal(err)
		}
		if cd.Len() != q.Result.Clusters[k].Size {
			t.Fatalf("cluster %d data len %d, size %d", k, cd.Len(), q.Result.Clusters[k].Size)
		}
		// Every row must fall inside the cluster bounds.
		for i := 0; i < cd.Len(); i++ {
			if !q.Result.Clusters[k].Bounds.Contains(cd.Row(i)) {
				t.Fatalf("cluster %d row %d outside bounds", k, i)
			}
		}
	}
	if _, err := q.ClusterData(99); err == nil {
		t.Fatal("accepted out-of-range cluster")
	}
	if _, err := q.ClusterData(-1); err == nil {
		t.Fatal("accepted negative cluster")
	}
}

func TestNodeSummaryValidate(t *testing.T) {
	good := NodeSummary{
		NodeID: "n",
		Clusters: []Summary{{
			Bounds: geometry.MustRect([]float64{0}, []float64{1}),
			Size:   5,
		}},
		TotalSamples: 5,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []NodeSummary{
		{}, // missing everything
		{NodeID: "n"},
		{NodeID: "n", Clusters: []Summary{{Bounds: geometry.MustRect([]float64{0}, []float64{1}), Size: -1}}, TotalSamples: 5},
		{NodeID: "n", Clusters: []Summary{{Bounds: geometry.MustRect([]float64{0}, []float64{1}), Size: 10}}, TotalSamples: 5},
		{NodeID: "n", Clusters: []Summary{
			{Bounds: geometry.MustRect([]float64{0}, []float64{1}), Size: 1},
			{Bounds: geometry.MustRect([]float64{0, 0}, []float64{1, 1}), Size: 1},
		}, TotalSamples: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad summary %d accepted", i)
		}
	}
}

func TestSummaryDriftIdentical(t *testing.T) {
	d := testDataset(t, 150, 20)
	q, _ := Quantize(d, Config{K: 4}, rng.New(21))
	s := q.Summarize("n")
	drift, err := SummaryDrift(s, s)
	if err != nil {
		t.Fatal(err)
	}
	if drift > 1e-12 {
		t.Fatalf("identical summaries drift %v", drift)
	}
}

func TestSummaryDriftDisjoint(t *testing.T) {
	mk := func(offset float64) NodeSummary {
		return NodeSummary{
			NodeID: "n",
			Clusters: []Summary{{
				Bounds: geometry.MustRect([]float64{offset}, []float64{offset + 1}),
				Size:   10,
			}},
			TotalSamples: 10,
		}
	}
	drift, err := SummaryDrift(mk(0), mk(100))
	if err != nil {
		t.Fatal(err)
	}
	if drift != 1 {
		t.Fatalf("disjoint summaries drift %v, want 1", drift)
	}
}

func TestSummaryDriftPartial(t *testing.T) {
	// Data grows slightly: drift must be strictly between 0 and 1.
	d := testDataset(t, 200, 22)
	q1, _ := Quantize(d, Config{K: 4}, rng.New(23))
	before := q1.Summarize("n")
	grown := d.Clone()
	for i := 0; i < 40; i++ {
		grown.MustAppend([]float64{150 + float64(i), 300 + float64(i)})
	}
	q2, _ := Quantize(grown, Config{K: 4}, rng.New(23))
	after := q2.Summarize("n")
	drift, err := SummaryDrift(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if drift <= 0 || drift >= 1 {
		t.Fatalf("partial drift %v, want in (0,1)", drift)
	}
}

func TestSummaryDriftErrors(t *testing.T) {
	good := NodeSummary{
		NodeID: "n",
		Clusters: []Summary{{
			Bounds: geometry.MustRect([]float64{0}, []float64{1}), Size: 1,
		}},
		TotalSamples: 1,
	}
	if _, err := SummaryDrift(NodeSummary{}, good); err == nil {
		t.Fatal("accepted invalid old summary")
	}
	if _, err := SummaryDrift(good, NodeSummary{}); err == nil {
		t.Fatal("accepted invalid new summary")
	}
	other := NodeSummary{
		NodeID: "n",
		Clusters: []Summary{{
			Bounds: geometry.MustRect([]float64{0, 0}, []float64{1, 1}), Size: 1,
		}},
		TotalSamples: 1,
	}
	if _, err := SummaryDrift(good, other); err == nil {
		t.Fatal("accepted dims mismatch")
	}
}
