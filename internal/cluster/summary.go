package cluster

import (
	"errors"
	"fmt"

	"qens/internal/dataset"
	"qens/internal/geometry"
	"qens/internal/rng"
)

// Summary is what a node sends to the leader per cluster: the boundary
// rectangle, representative, and member count — never the raw data
// (paper §III-C: "The nodes just send to the leader the boundaries of
// their clusters and the number of the clusters per node").
type Summary struct {
	Bounds   geometry.Rect `json:"bounds"`
	Centroid []float64     `json:"centroid"`
	Size     int           `json:"size"`
}

// NodeSummary is the complete per-node advertisement.
type NodeSummary struct {
	NodeID   string    `json:"node_id"`
	Clusters []Summary `json:"clusters"`
	// TotalSamples is the node's |D_i|, used for the data-fraction
	// accounting of Fig. 9.
	TotalSamples int `json:"total_samples"`
	// Epoch is the node-side advertisement version: the node bumps it
	// every time it requantizes (or otherwise changes what it would
	// advertise). Zero means the producer predates versioning. The
	// leader's registry records it per node so drift echoed on later
	// RPCs can trigger an invalidation.
	Epoch uint64 `json:"epoch,omitempty"`
}

// ErrNoClusters reports an empty node summary.
var ErrNoClusters = errors.New("cluster: node summary has no clusters")

// Validate checks structural invariants of the summary.
func (s NodeSummary) Validate() error {
	if s.NodeID == "" {
		return errors.New("cluster: node summary missing node id")
	}
	if len(s.Clusters) == 0 {
		return ErrNoClusters
	}
	total := 0
	dims := -1
	for i, c := range s.Clusters {
		if err := c.Bounds.Validate(); err != nil {
			return fmt.Errorf("cluster %d: %w", i, err)
		}
		if dims == -1 {
			dims = c.Bounds.Dims()
		} else if c.Bounds.Dims() != dims {
			return fmt.Errorf("cluster %d: dims %d != %d", i, c.Bounds.Dims(), dims)
		}
		if c.Size < 0 {
			return fmt.Errorf("cluster %d: negative size", i)
		}
		total += c.Size
	}
	if s.TotalSamples < total {
		return fmt.Errorf("cluster: total samples %d smaller than cluster members %d", s.TotalSamples, total)
	}
	return nil
}

// K returns the number of clusters advertised (the paper's K).
func (s NodeSummary) K() int { return len(s.Clusters) }

// SummaryDrift measures how far a node's advertisement has moved
// between two quantization epochs, in [0, 1]: 0 means every cluster
// rectangle is unchanged, 1 means no old cluster overlaps any new one.
// Each old cluster is greedily matched to the new cluster with the
// highest rectangle IoU; the complement of the size-weighted mean best
// IoU is the drift. Nodes (or leaders) can use it to decide when a
// re-advertisement is worth the communication.
func SummaryDrift(old, new NodeSummary) (float64, error) {
	if err := old.Validate(); err != nil {
		return 0, fmt.Errorf("cluster: drift: old summary: %w", err)
	}
	if err := new.Validate(); err != nil {
		return 0, fmt.Errorf("cluster: drift: new summary: %w", err)
	}
	dims := old.Clusters[0].Bounds.Dims()
	if new.Clusters[0].Bounds.Dims() != dims {
		return 0, fmt.Errorf("cluster: drift: dims %d vs %d", dims, new.Clusters[0].Bounds.Dims())
	}
	totalWeight := 0.0
	matched := 0.0
	for _, oc := range old.Clusters {
		best := 0.0
		for _, nc := range new.Clusters {
			if iou := geometry.IoU(oc.Bounds, nc.Bounds); iou > best {
				best = iou
			}
		}
		w := float64(oc.Size)
		if w <= 0 {
			w = 1
		}
		totalWeight += w
		matched += w * best
	}
	return 1 - matched/totalWeight, nil
}

// Quantization couples a node's dataset with its k-means result so the
// node can later retrieve the raw member rows of a supporting cluster
// (the data-selectivity step of §IV-A).
type Quantization struct {
	Data   *dataset.Dataset
	Result *Result
}

// Quantize clusters a node dataset over the joint data space (all
// columns, the paper's ξ = (x, y) samples).
func Quantize(d *dataset.Dataset, cfg Config, src *rng.Source) (*Quantization, error) {
	if d.Len() == 0 {
		return nil, dataset.ErrEmpty
	}
	res, err := KMeans(d.Rows(), cfg, src)
	if err != nil {
		return nil, err
	}
	return &Quantization{Data: d, Result: res}, nil
}

// Summarize produces the NodeSummary advertisement for the leader.
func (q *Quantization) Summarize(nodeID string) NodeSummary {
	clusters := make([]Summary, len(q.Result.Clusters))
	for i, c := range q.Result.Clusters {
		clusters[i] = Summary{
			Bounds:   c.Bounds.Clone(),
			Centroid: append([]float64(nil), c.Centroid...),
			Size:     c.Size,
		}
	}
	return NodeSummary{NodeID: nodeID, Clusters: clusters, TotalSamples: q.Data.Len()}
}

// ClusterView returns the zero-copy view over the rows belonging to
// cluster k — the "mini-batch" the incremental training of §IV-B
// consumes. The cluster's member indices are already materialized by
// the quantizer, so building the view copies no sample data at all;
// this is the per-query inner loop of the training engine.
func (q *Quantization) ClusterView(k int) (dataset.View, error) {
	if k < 0 || k >= len(q.Result.Clusters) {
		return dataset.View{}, fmt.Errorf("cluster: index %d out of range (%d clusters)", k, len(q.Result.Clusters))
	}
	return q.Data.ViewOf(q.Result.Clusters[k].Members), nil
}

// ClusterData returns the rows belonging to cluster k as an
// independent dataset with the node's schema. It delegates to
// ClusterView and materializes the result; callers that only read
// should use ClusterView directly and skip the copy.
func (q *Quantization) ClusterData(k int) (*dataset.Dataset, error) {
	v, err := q.ClusterView(k)
	if err != nil {
		return nil, err
	}
	return v.Materialize(), nil
}
