package cluster

import (
	"fmt"

	"qens/internal/dataset"
	"qens/internal/geometry"
)

// Grid quantization: the classic database alternative to the paper's
// k-means ("each node has quantized its own data space, e.g., using
// the k-means algorithm" — §III-C leaves the quantizer open). An
// equi-width grid partitions each dimension into a fixed number of
// buckets; non-empty cells become cluster summaries. Grids are far
// cheaper to build (one pass, no iterations) and deterministic without
// seeds, at the cost of cells that follow axis boundaries rather than
// data structure — the k-means-vs-grid ablation quantifies the
// difference.

// GridQuantize partitions d's joint space into bucketsPerDim^dims
// equi-width cells and returns the non-empty ones as a Quantization.
// Cell bounding rectangles are tightened to their actual members (like
// k-means bounds), so downstream overlap math is identical.
func GridQuantize(d *dataset.Dataset, bucketsPerDim int) (*Quantization, error) {
	if d.Len() == 0 {
		return nil, dataset.ErrEmpty
	}
	if bucketsPerDim < 1 {
		return nil, fmt.Errorf("cluster: buckets per dim %d < 1", bucketsPerDim)
	}
	bounds, ok := d.Bounds()
	if !ok {
		return nil, dataset.ErrEmpty
	}
	dims := d.Dims()

	// Assign each row to its grid cell.
	cellOf := func(row []float64) string {
		key := make([]byte, 0, dims*3)
		for dim := 0; dim < dims; dim++ {
			span := bounds.Width(dim)
			idx := 0
			if span > 0 {
				idx = int(float64(bucketsPerDim) * (row[dim] - bounds.Min[dim]) / span)
				if idx == bucketsPerDim { // max value lands in the last bucket
					idx = bucketsPerDim - 1
				}
			}
			key = append(key, byte(idx), '|')
		}
		return string(key)
	}
	members := map[string][]int{}
	var order []string
	for i := 0; i < d.Len(); i++ {
		k := cellOf(d.Row(i))
		if _, seen := members[k]; !seen {
			order = append(order, k)
		}
		members[k] = append(members[k], i)
	}

	clusters := make([]Cluster, 0, len(order))
	assign := make([]int, d.Len())
	for ci, key := range order {
		idxs := members[key]
		points := make([][]float64, len(idxs))
		centroid := make([]float64, dims)
		for j, idx := range idxs {
			points[j] = d.Row(idx)
			assign[idx] = ci
			for dim, v := range d.Row(idx) {
				centroid[dim] += v
			}
		}
		for dim := range centroid {
			centroid[dim] /= float64(len(idxs))
		}
		rect, _ := geometry.BoundingRect(points)
		clusters = append(clusters, Cluster{
			Centroid: centroid,
			Bounds:   rect,
			Members:  append([]int(nil), idxs...),
			Size:     len(idxs),
		})
	}
	res := &Result{Clusters: clusters, Assignments: assign}
	res.Inertia = Inertia(d.Rows(), clusters, assign)
	return &Quantization{Data: d, Result: res}, nil
}
