// Streaming (incremental) requantization. A StreamQuantizer warm-starts
// from an existing k-means Result and folds mini-batches of new samples
// into the centroids with the same per-centroid decaying learning rate
// MiniBatchKMeans uses (Sculley 2010) — but without re-seeding, so the
// cluster identities survive across batches and the leader's summaries
// stay comparable between epochs. A full assignment pass over the whole
// dataset (the only O(n·K) step) then rebuilds bounds/sizes/inertia;
// there is no Lloyd iteration loop, which is where the ≥3× win over a
// full Quantize comes from.
package cluster

import (
	"errors"
	"fmt"

	"qens/internal/matrix"
)

// StreamQuantizer carries centroid state between incremental
// requantization batches. It is not safe for concurrent use; the
// engine's mutate lock serializes callers.
type StreamQuantizer struct {
	centroids [][]float64
	// counts is the per-centroid assignment mass driving the decaying
	// learning rate eta = 1/counts[k]. It is seeded from the cluster
	// sizes of the warm-start Result, so a centroid backed by n points
	// moves by ~1/n of the gap per absorbed sample — sticky under
	// stationary data, responsive on small clusters.
	counts []float64
	dims   int
}

// NewStreamQuantizer warm-starts from a full k-means result.
func NewStreamQuantizer(res *Result) (*StreamQuantizer, error) {
	if res == nil || len(res.Clusters) == 0 {
		return nil, errors.New("cluster: stream quantizer needs a non-empty result")
	}
	s := &StreamQuantizer{}
	s.Reset(res)
	return s, nil
}

// Reset re-anchors the quantizer on a fresh full result (after an
// escalated full requantization).
func (s *StreamQuantizer) Reset(res *Result) {
	s.centroids = make([][]float64, len(res.Clusters))
	s.counts = make([]float64, len(res.Clusters))
	for k, c := range res.Clusters {
		s.centroids[k] = matrix.CloneVec(c.Centroid)
		s.counts[k] = float64(c.Size)
		if s.counts[k] < 1 {
			s.counts[k] = 1
		}
	}
	s.dims = len(s.centroids[0])
}

// K returns the number of centroids tracked.
func (s *StreamQuantizer) K() int { return len(s.centroids) }

// BatchStats reports how one absorbed batch related to the centroids it
// moved: the drift detector's raw signals.
type BatchStats struct {
	// AssignCounts is how many batch points landed in each cluster.
	AssignCounts []int
	// SqErr is the summed squared distance from each batch point to its
	// nearest centroid (measured before that point's update), i.e. the
	// batch's reconstruction error against the pre-batch codebook.
	SqErr float64
}

// Absorb folds one mini-batch of new samples into the centroids
// (Sculley-style: assign to nearest, then move that centroid toward the
// point by eta = 1/counts). It returns the batch's assignment counts
// and pre-update reconstruction error for drift accounting.
func (s *StreamQuantizer) Absorb(batch [][]float64) (BatchStats, error) {
	st := BatchStats{AssignCounts: make([]int, len(s.centroids))}
	for i, p := range batch {
		if len(p) != s.dims {
			return st, fmt.Errorf("cluster: stream point %d has %d dims, want %d", i, len(p), s.dims)
		}
		k := nearest(p, s.centroids)
		st.AssignCounts[k]++
		st.SqErr += matrix.SqDist(p, s.centroids[k])
		s.counts[k]++
		eta := 1 / s.counts[k]
		for j := range s.centroids[k] {
			s.centroids[k][j] += eta * (p[j] - s.centroids[k][j])
		}
	}
	return st, nil
}

// Requantize rebuilds a full Result (assignments, bounds, sizes,
// inertia) for points against the current streamed centroids: one
// parallel assignment pass, no Lloyd iterations.
func (s *StreamQuantizer) Requantize(points [][]float64) (*Result, error) {
	if len(points) < len(s.centroids) {
		return nil, fmt.Errorf("%w: %d points for K=%d", ErrTooFewPoints, len(points), len(s.centroids))
	}
	for i, p := range points {
		if len(p) != s.dims {
			return nil, fmt.Errorf("cluster: point %d has %d dims, want %d", i, len(p), s.dims)
		}
	}
	assign := make([]int, len(points))
	assignPoints(points, s.centroids, assign)
	return buildResult(points, s.centroids, assign, 0), nil
}
