package plan

import (
	"context"
	"fmt"
	"testing"

	"qens/internal/cluster"
	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/rng"
	"qens/internal/selection"
)

// localizedSummaries builds an edge-realistic fleet for the at-scale
// rows: every node's clusters sit in a small neighbourhood of the
// node's own center (edge nodes see local data), with 1% of the fleet
// deliberately placed inside the [40,60]^d hotspot that hotspotQuery
// probes. Unlike synthSummaries' full-space scatter, this gives the
// R-tree real pruning work at high d: almost no cold node can overlap
// the query in ≥ ε of its dimensions.
func localizedSummaries(n, k, d int, seed uint64) []cluster.NodeSummary {
	src := rng.New(seed)
	out := make([]cluster.NodeSummary, 0, n)
	for i := 0; i < n; i++ {
		center := make([]float64, d)
		hot := i%100 == 0
		for j := 0; j < d; j++ {
			if hot {
				center[j] = src.Uniform(45, 55)
			} else {
				center[j] = src.Uniform(0, 100)
			}
		}
		s := cluster.NodeSummary{NodeID: fmt.Sprintf("node-%05d", i), Epoch: 1}
		total := 0
		for c := 0; c < k; c++ {
			min := make([]float64, d)
			max := make([]float64, d)
			for j := 0; j < d; j++ {
				lo := center[j] + src.Uniform(-2, 2)
				min[j], max[j] = lo, lo+src.Uniform(0.5, 4)
			}
			size := 10 + src.Intn(200)
			total += size
			s.Clusters = append(s.Clusters, cluster.Summary{
				Bounds: geometry.MustRect(min, max), Size: size,
			})
		}
		s.TotalSamples = total
		out = append(out, s)
	}
	return out
}

// hotspotQuery covers the localized fleet's hot region in every
// dimension, so the TopL candidates are the ~1% hot nodes.
func hotspotQuery(d int) query.Query {
	min := make([]float64, d)
	max := make([]float64, d)
	for j := 0; j < d; j++ {
		min[j], max[j] = 40, 60
	}
	q, err := query.New("bench-hotspot", geometry.MustRect(min, max))
	if err != nil {
		panic(err)
	}
	return q
}

// BenchmarkPlan measures the pure-CPU planning hot path — snapshot →
// Eq. 2–4 ranking → TopL selection — across fleet sizes N and query
// dimensionalities d. The query-driven fast path must stay at
// 0 allocs/op at every size (enforced hard by TestPlanZeroAlloc;
// visible here via -benchmem), and the N=10000 rows must stay
// sub-millisecond — both gated in CI by scripts/bench_plan.sh.
// The small-N rows keep the historical full-space scatter (weak
// pruning, kernel-bound); the N=10000 rows use the localized fleet at
// the paper's ε=0.6, where the R-tree does the heavy lifting.
func BenchmarkPlan(b *testing.B) {
	type row struct {
		n, d      int
		summaries []cluster.NodeSummary
		q         query.Query
		sel       selection.Selector
	}
	rows := make([]row, 0, 8)
	for _, n := range []int{10, 100, 1000} {
		for _, d := range []int{4, 16} {
			rows = append(rows, row{
				n: n, d: d,
				summaries: synthSummaries(n, 5, d, uint64(31*n+d)),
				q:         randomQuery("bench", d, rng.New(3)),
				// Box once: per-call interface boxing of the selector
				// struct would show up as a spurious alloc/op.
				sel: selection.Selector(selection.QueryDriven{Epsilon: 0.1, TopL: 5}),
			})
		}
	}
	for _, d := range []int{4, 16} {
		n := 10000
		rows = append(rows, row{
			n: n, d: d,
			summaries: localizedSummaries(n, 5, d, uint64(31*n+d)),
			q:         hotspotQuery(d),
			sel:       selection.Selector(selection.QueryDriven{Epsilon: 0.6, TopL: 5}),
		})
	}

	for _, r := range rows {
		b.Run(fmt.Sprintf("N=%d/d=%d", r.n, r.d), func(b *testing.B) {
			reg := staticRegistry(b, r.summaries)
			snap, err := reg.Snapshot(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			planner := NewPlanner(reg)

			// Warm the pool so the measured loop sees steady state.
			pl, err := planner.PlanOn(snap, r.q, r.sel, nil)
			if err != nil {
				b.Fatal(err)
			}
			pl.Release()

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pl, err := planner.PlanOn(snap, r.q, r.sel, nil)
				if err != nil {
					b.Fatal(err)
				}
				pl.Release()
			}
		})
	}
}

// BenchmarkPlanKey isolates the fingerprint used by the gateway's
// coalescing and reuse caches. The first call per plan renders and
// memoizes (one string copy, since keys outlive Release); steady-state
// calls — what this measures — must be allocation-free.
func BenchmarkPlanKey(b *testing.B) {
	summaries := synthSummaries(100, 5, 4, 77)
	reg := staticRegistry(b, summaries)
	snap, err := reg.Snapshot(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	planner := NewPlanner(reg)
	q := randomQuery("key", 4, rng.New(9))
	var sel selection.Selector = selection.QueryDriven{Epsilon: 0.1, TopL: 5}
	pl, err := planner.PlanOn(snap, q, sel, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer pl.Release()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pl.Key() == "" {
			b.Fatal("empty key")
		}
	}
}
