package plan

import (
	"context"
	"fmt"
	"testing"

	"qens/internal/rng"
	"qens/internal/selection"
)

// BenchmarkPlan measures the pure-CPU planning hot path — snapshot →
// Eq. 2–4 ranking → TopL selection — across fleet sizes N and query
// dimensionalities d. The query-driven fast path must stay at
// 0 allocs/op at every size (enforced hard by TestPlanZeroAlloc;
// visible here via -benchmem). `make bench` renders these results as
// BENCH_plan.json.
func BenchmarkPlan(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		for _, d := range []int{4, 16} {
			b.Run(fmt.Sprintf("N=%d/d=%d", n, d), func(b *testing.B) {
				summaries := synthSummaries(n, 5, d, uint64(31*n+d))
				reg := staticRegistry(b, summaries)
				snap, err := reg.Snapshot(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				planner := NewPlanner(reg)
				q := randomQuery("bench", d, rng.New(3))
				// Box once: per-call interface boxing of the selector
				// struct would show up as a spurious alloc/op.
				var sel selection.Selector = selection.QueryDriven{Epsilon: 0.1, TopL: 5}

				// Warm the pool so the measured loop sees steady state.
				pl, err := planner.PlanOn(snap, q, sel, nil)
				if err != nil {
					b.Fatal(err)
				}
				pl.Release()

				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pl, err := planner.PlanOn(snap, q, sel, nil)
					if err != nil {
						b.Fatal(err)
					}
					pl.Release()
				}
			})
		}
	}
}

// BenchmarkPlanKey isolates the fingerprint used by the gateway's
// coalescing and reuse caches (allocates one string per call by
// design — it escapes into cache keys).
func BenchmarkPlanKey(b *testing.B) {
	summaries := synthSummaries(100, 5, 4, 77)
	reg := staticRegistry(b, summaries)
	snap, err := reg.Snapshot(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	planner := NewPlanner(reg)
	q := randomQuery("key", 4, rng.New(9))
	var sel selection.Selector = selection.QueryDriven{Epsilon: 0.1, TopL: 5}
	pl, err := planner.PlanOn(snap, q, sel, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer pl.Release()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pl.Key() == "" {
			b.Fatal("empty key")
		}
	}
}
