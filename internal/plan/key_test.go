package plan

import (
	"context"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"

	"qens/internal/rng"
	"qens/internal/selection"
)

// legacyKey reimplements the pre-memoization fingerprint rendering so
// the format stays pinned: memoizing must not change a single byte,
// or coalescing/reuse keys would silently partition across versions.
func legacyKey(pl *Plan) string {
	var b strings.Builder
	b.WriteByte('e')
	b.WriteString(strconv.FormatUint(pl.Epoch, 10))
	b.WriteByte('|')
	b.WriteString(pl.Selector)
	for _, p := range pl.Participants {
		b.WriteByte('|')
		b.WriteString(p.NodeID)
		if p.Clusters != nil {
			b.WriteByte(':')
			for j, c := range p.Clusters {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Itoa(c))
			}
		}
	}
	return b.String()
}

// TestPlanKeyFormatPinned: the memoized key matches the legacy
// rendering byte-for-byte across selectors, and the memo survives
// repeated calls but not Release/replan.
func TestPlanKeyFormatPinned(t *testing.T) {
	summaries := synthSummaries(40, 4, 3, 21)
	reg := staticRegistry(t, summaries)
	snap, err := reg.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	planner := NewPlanner(reg)
	q := randomQuery("keyfmt", 3, rng.New(5))
	sels := []selection.Selector{
		selection.QueryDriven{Epsilon: 0.1, TopL: 5},
		selection.QueryDriven{Epsilon: 0.1, Psi: 0.8},
		selection.AllNodes{},
	}
	for _, sel := range sels {
		pl, err := planner.PlanOn(snap, q, sel, nil)
		if err != nil {
			t.Fatalf("%s: %v", sel.Name(), err)
		}
		want := legacyKey(pl)
		if got := pl.Key(); got != want {
			t.Fatalf("%s: key %q != legacy %q", sel.Name(), got, want)
		}
		if again := pl.Key(); again != want {
			t.Fatalf("%s: memoized key %q != first %q", sel.Name(), again, want)
		}
		pl.Release()
	}
}

// TestPlanKeyZeroAlloc pins the coalescing hot path: after the first
// render, repeated Key() calls on a live plan must not allocate.
func TestPlanKeyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	summaries := synthSummaries(100, 5, 4, 77)
	reg := staticRegistry(t, summaries)
	snap, err := reg.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	planner := NewPlanner(reg)
	q := randomQuery("keyalloc", 4, rng.New(9))
	var sel selection.Selector = selection.QueryDriven{Epsilon: 0.1, TopL: 5}
	pl, err := planner.PlanOn(snap, q, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Release()

	// Prime the memo (the single allowed string copy), then measure.
	if pl.Key() == "" {
		t.Fatal("empty key")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(200, func() {
		if pl.Key() == "" {
			panic("empty key")
		}
	})
	if allocs != 0 {
		t.Fatalf("memoized Key allocates %.1f objects/op, want 0", allocs)
	}
}
