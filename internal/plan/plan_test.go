package plan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"strings"
	"testing"

	"qens/internal/cluster"
	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/registry"
	"qens/internal/rng"
	"qens/internal/selection"
)

// synthSummaries builds a deterministic fleet advertisement: n nodes,
// k clusters each, d dims, cluster rectangles scattered over
// [0,100]^d. Roughly a third of the clusters are degenerate in one
// dimension (point intervals), exercising the kernel's edge cases.
func synthSummaries(n, k, d int, seed uint64) []cluster.NodeSummary {
	src := rng.New(seed)
	out := make([]cluster.NodeSummary, 0, n)
	for i := 0; i < n; i++ {
		s := cluster.NodeSummary{NodeID: fmt.Sprintf("node-%02d", i), Epoch: 1}
		total := 0
		for c := 0; c < k; c++ {
			min := make([]float64, d)
			max := make([]float64, d)
			for j := 0; j < d; j++ {
				lo := src.Uniform(0, 90)
				hi := lo + src.Uniform(0, 25)
				if (i+c+j)%3 == 0 {
					hi = lo // degenerate interval
				}
				min[j], max[j] = lo, hi
			}
			size := 10 + src.Intn(200)
			total += size
			s.Clusters = append(s.Clusters, cluster.Summary{
				Bounds: geometry.MustRect(min, max), Size: size,
			})
		}
		s.TotalSamples = total + src.Intn(50)
		out = append(out, s)
	}
	return out
}

// staticRegistry serves a fixed advertisement.
func staticRegistry(t testing.TB, summaries []cluster.NodeSummary) *registry.Registry {
	t.Helper()
	reg, err := registry.New(registry.Config{
		Fetch: func(context.Context) ([]cluster.NodeSummary, error) { return summaries, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// randomQuery draws a query rectangle inside [0,100]^d.
func randomQuery(id string, d int, src *rng.Source) query.Query {
	min := make([]float64, d)
	max := make([]float64, d)
	for j := 0; j < d; j++ {
		lo := src.Uniform(0, 80)
		min[j], max[j] = lo, lo+src.Uniform(1, 40)
	}
	q, err := query.New(id, geometry.MustRect(min, max))
	if err != nil {
		panic(err)
	}
	return q
}

// sameParticipants requires bit-exact agreement: same nodes in the
// same order, identical ranks, identical cluster directives.
func sameParticipants(a, b []selection.Participant) error {
	if len(a) != len(b) {
		return fmt.Errorf("len %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i].NodeID != b[i].NodeID {
			return fmt.Errorf("participant %d: node %s != %s", i, a[i].NodeID, b[i].NodeID)
		}
		if a[i].Rank != b[i].Rank {
			return fmt.Errorf("participant %d (%s): rank %v != %v", i, a[i].NodeID, a[i].Rank, b[i].Rank)
		}
		if (a[i].Clusters == nil) != (b[i].Clusters == nil) || len(a[i].Clusters) != len(b[i].Clusters) {
			return fmt.Errorf("participant %d (%s): clusters %v != %v", i, a[i].NodeID, a[i].Clusters, b[i].Clusters)
		}
		for j := range a[i].Clusters {
			if a[i].Clusters[j] != b[i].Clusters[j] {
				return fmt.Errorf("participant %d (%s): clusters %v != %v", i, a[i].NodeID, a[i].Clusters, b[i].Clusters)
			}
		}
	}
	return nil
}

// evalStub is a deterministic stand-in for the game-theory pre-test.
func evalStub(nodeID string) (float64, error) {
	h := 0.0
	for _, r := range nodeID {
		h = math.Mod(h*31+float64(r), 977)
	}
	return h, nil
}

// TestPlannerGoldenEquivalence replays a seeded 200-query workload
// through both pipelines — legacy Selector.Select over raw summaries
// vs. Planner.PlanOn over a registry snapshot — for every stateless
// mechanism (and Random with mirrored RNG streams) and requires
// bit-exact participant agreement.
func TestPlannerGoldenEquivalence(t *testing.T) {
	summaries := synthSummaries(12, 5, 3, 42)
	reg := staticRegistry(t, summaries)
	snap, err := reg.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	planner := NewPlanner(reg)

	caps := map[string]selection.Capabilities{
		"node-00": {Compute: 2, Bandwidth: 0.5, Battery: 0.9},
		"node-03": {Compute: 0.5, Bandwidth: 2, Battery: 0.2},
	}
	type selCase struct {
		name   string
		sel    selection.Selector
		legacy func() *selection.Context
		plan   func() *selection.Context
	}
	none := func() *selection.Context { return nil }
	cases := []selCase{
		{"query-driven-topl", selection.QueryDriven{Epsilon: 0.6, TopL: 3}, none, none},
		{"query-driven-topl-tight", selection.QueryDriven{Epsilon: 0.9, TopL: 2}, none, none},
		{"query-driven-psi", selection.QueryDriven{Epsilon: 0.3, Psi: 0.4}, none, none},
		{"all-nodes", selection.AllNodes{}, none, none},
		{"data-centric", selection.DataCentric{L: 4, Capabilities: caps}, none, none},
		{"reward", selection.Reward{L: 4, Capabilities: caps}, none, none},
		{
			"game-theory", selection.GameTheory{L: 3},
			func() *selection.Context { return &selection.Context{Evaluate: evalStub} },
			func() *selection.Context { return &selection.Context{Evaluate: evalStub} },
		},
	}
	// Random: two mirrored RNG streams, one per pipeline, seeded
	// identically so the draws stay in lock-step across 200 queries.
	legacyRNG, planRNG := rng.New(7), rng.New(7)
	cases = append(cases, selCase{
		"random", selection.Random{L: 3},
		func() *selection.Context { return &selection.Context{RNG: legacyRNG} },
		func() *selection.Context { return &selection.Context{RNG: planRNG} },
	})

	qsrc := rng.New(2024)
	queries := make([]query.Query, 200)
	for i := range queries {
		queries[i] = randomQuery(fmt.Sprintf("q-%03d", i), 3, qsrc)
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mismatches := 0
			for _, q := range queries {
				want, wantErr := tc.sel.Select(q, summaries, tc.legacy())
				pl, gotErr := planner.PlanOn(snap, q, tc.sel, tc.plan())
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("query %s: legacy err %v, planner err %v", q.ID, wantErr, gotErr)
				}
				if wantErr != nil {
					if errors.Is(wantErr, selection.ErrNoCandidates) != errors.Is(gotErr, selection.ErrNoCandidates) {
						t.Fatalf("query %s: error class diverged: legacy %v, planner %v", q.ID, wantErr, gotErr)
					}
					continue
				}
				if err := sameParticipants(want, pl.Participants); err != nil {
					t.Errorf("query %s: %v", q.ID, err)
					if mismatches++; mismatches > 3 {
						t.Fatal("too many mismatches")
					}
				}
				pl.Release()
			}
		})
	}
}

// TestPlannerIndexedMatchesBruteGolden replays a 200-query golden
// workload and requires the R-tree fast path (PlanOn over an indexed
// snapshot) to agree bit-exactly with the brute kernel (ExplainOn)
// for every stateless selector: identical participant sets, and for
// the query-driven rankings identical positive rows, with pruned rows
// surfacing only as explicit zeros.
func TestPlannerIndexedMatchesBruteGolden(t *testing.T) {
	summaries := synthSummaries(40, 4, 3, 314)
	reg := staticRegistry(t, summaries)
	snap, err := reg.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Index == nil {
		t.Fatal("snapshot carries no spatial index")
	}
	planner := NewPlanner(reg)

	caps := map[string]selection.Capabilities{
		"node-05": {Compute: 2, Bandwidth: 0.5, Battery: 0.9},
		"node-21": {Compute: 0.5, Bandwidth: 2, Battery: 0.2},
	}
	selectors := []selection.Selector{
		selection.QueryDriven{Epsilon: 0.6, TopL: 3},
		selection.QueryDriven{Epsilon: 0.9, TopL: 2},
		selection.QueryDriven{Epsilon: 0.3, Psi: 0.4},
		selection.AllNodes{},
		selection.DataCentric{L: 4, Capabilities: caps},
		selection.Reward{L: 4, Capabilities: caps},
	}

	qsrc := rng.New(2718)
	queries := make([]query.Query, 200)
	for i := range queries {
		queries[i] = randomQuery(fmt.Sprintf("ib-%03d", i), 3, qsrc)
	}

	before := reg.Stats()
	for _, sel := range selectors {
		t.Run(sel.Name(), func(t *testing.T) {
			for _, q := range queries {
				brute, bruteErr := planner.ExplainOn(snap, q, sel, nil)
				fast, fastErr := planner.PlanOn(snap, q, sel, nil)
				if (bruteErr == nil) != (fastErr == nil) {
					t.Fatalf("query %s: brute err %v, indexed err %v", q.ID, bruteErr, fastErr)
				}
				if bruteErr != nil {
					if errors.Is(bruteErr, selection.ErrNoCandidates) != errors.Is(fastErr, selection.ErrNoCandidates) {
						t.Fatalf("query %s: error class diverged: %v vs %v", q.ID, bruteErr, fastErr)
					}
					continue
				}
				if err := sameParticipants(brute.Participants, fast.Participants); err != nil {
					t.Fatalf("query %s: %v", q.ID, err)
				}
				fast.Release()
				brute.Release()
			}
		})
	}

	// The query-driven ranking surface: positive rows bit-exact, pruned
	// rows explicit zeros with no overlap detail.
	pruned := 0
	for _, q := range queries {
		want, wantEpoch, err := planner.RankOn(snap, q, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		got, gotEpoch, err := planner.RankQueryDrivenOn(snap, q, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		if wantEpoch != gotEpoch || len(want) != len(got) {
			t.Fatalf("query %s: shape %d@e%d vs %d@e%d", q.ID, len(want), wantEpoch, len(got), gotEpoch)
		}
		for i := range want {
			w, g := want[i], got[i]
			if w.NodeID != g.NodeID || w.TotalSamples != g.TotalSamples {
				t.Fatalf("query %s row %d: identity %s/%d vs %s/%d", q.ID, i, w.NodeID, w.TotalSamples, g.NodeID, g.TotalSamples)
			}
			if g.Overlaps == nil { // pruned row
				pruned++
				if w.Rank > 0 || g.Rank != 0 || g.Potential != 0 || g.Supporting != nil {
					t.Fatalf("query %s row %d: pruned node %s vs brute %+v", q.ID, i, g.NodeID, w)
				}
				continue
			}
			if w.Rank != g.Rank || w.Potential != g.Potential || w.SupportingSamples != g.SupportingSamples {
				t.Fatalf("query %s row %d (%s): %+v vs %+v", q.ID, i, w.NodeID, w, g)
			}
		}
	}
	if pruned == 0 {
		t.Fatal("workload exercised no pruning; tighten eps or spread the fleet")
	}

	after := reg.Stats()
	if after.IndexedPlans <= before.IndexedPlans {
		t.Fatalf("IndexedPlans did not advance: %d -> %d", before.IndexedPlans, after.IndexedPlans)
	}
	if after.BrutePlans <= before.BrutePlans {
		t.Fatalf("BrutePlans (EXPLAIN surface) did not advance: %d -> %d", before.BrutePlans, after.BrutePlans)
	}
	if after.NodesPruned <= before.NodesPruned {
		t.Fatalf("NodesPruned did not advance: %d -> %d", before.NodesPruned, after.NodesPruned)
	}
	if after.NodesRanked-before.NodesRanked <= after.NodesPruned-before.NodesPruned {
		t.Fatalf("ranked %d <= pruned %d over the workload", after.NodesRanked-before.NodesRanked, after.NodesPruned-before.NodesPruned)
	}
}

// TestPlannerRankingsMatchRankNodes checks the EXPLAIN surface too:
// the arena-backed per-node ranking must be bit-identical to
// selection.RankNodes (overlaps, supporting sets, potential, rank,
// sample accounting) across a seeded workload.
func TestPlannerRankingsMatchRankNodes(t *testing.T) {
	summaries := synthSummaries(8, 4, 2, 11)
	reg := staticRegistry(t, summaries)
	snap, err := reg.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	planner := NewPlanner(reg)

	qsrc := rng.New(5)
	for i := 0; i < 50; i++ {
		q := randomQuery(fmt.Sprintf("rq-%02d", i), 2, qsrc)
		eps := []float64{1e-9, 0.3, 0.6, 0.95}[i%4]
		want, err := selection.RankNodes(q, summaries, eps)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := planner.rank(snap, q, eps, "test")
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(pl.Rankings) {
			t.Fatalf("query %d: %d ranks != %d", i, len(want), len(pl.Rankings))
		}
		for j := range want {
			w, g := want[j], pl.Rankings[j]
			if w.NodeID != g.NodeID || w.Potential != g.Potential || w.Rank != g.Rank ||
				w.SupportingSamples != g.SupportingSamples || w.TotalSamples != g.TotalSamples {
				t.Fatalf("query %d node %s: legacy %+v != planner %+v", i, w.NodeID, w, g)
			}
			if len(w.Overlaps) != len(g.Overlaps) {
				t.Fatalf("query %d node %s: overlap count", i, w.NodeID)
			}
			for k := range w.Overlaps {
				if w.Overlaps[k] != g.Overlaps[k] {
					t.Fatalf("query %d node %s cluster %d: h %v != %v", i, w.NodeID, k, w.Overlaps[k], g.Overlaps[k])
				}
			}
			if (w.Supporting == nil) != (g.Supporting == nil) || len(w.Supporting) != len(g.Supporting) {
				t.Fatalf("query %d node %s: supporting %v != %v", i, w.NodeID, w.Supporting, g.Supporting)
			}
			for k := range w.Supporting {
				if w.Supporting[k] != g.Supporting[k] {
					t.Fatalf("query %d node %s: supporting %v != %v", i, w.NodeID, w.Supporting, g.Supporting)
				}
			}
		}
		pl.Release()
	}
}

// TestPlanZeroAlloc: the query-driven fast path must not allocate at
// steady state (pooled plan, pre-grown arenas, in-place sort).
func TestPlanZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; allocation accounting is not meaningful")
	}
	summaries := synthSummaries(100, 5, 4, 99)
	reg := staticRegistry(t, summaries)
	snap, err := reg.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	planner := NewPlanner(reg)
	q := randomQuery("alloc", 4, rng.New(3))
	// Box the selector into the interface once, outside the measured
	// loop — per-call boxing of the multi-word struct would count as
	// one allocation per plan and hide real regressions.
	var sel selection.Selector = selection.QueryDriven{Epsilon: 0.1, TopL: 5}

	// Warm the pool (first plan allocates the arenas), then freeze the
	// GC so the pool cannot be drained mid-measurement.
	pl, err := planner.PlanOn(snap, q, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	pl.Release()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	allocs := testing.AllocsPerRun(200, func() {
		pl, err := planner.PlanOn(snap, q, sel, nil)
		if err != nil {
			panic(err)
		}
		pl.Release()
	})
	if allocs != 0 {
		t.Fatalf("query-driven plan allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPlanEpochAndKey: plans carry the registry epoch, keys change
// when the epoch moves, and CopyParticipants survives Release.
func TestPlanEpochAndKey(t *testing.T) {
	summaries := synthSummaries(6, 4, 2, 17)
	reg := staticRegistry(t, summaries)
	planner := NewPlanner(reg)
	q := randomQuery("epoch", 2, rng.New(21))
	sel := selection.QueryDriven{Epsilon: 0.1, TopL: 3}

	pl1, err := planner.Plan(context.Background(), q, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl1.Epoch != reg.Epoch() || pl1.Epoch == 0 {
		t.Fatalf("plan epoch %d, registry %d", pl1.Epoch, reg.Epoch())
	}
	key1 := pl1.Key()
	if !strings.HasPrefix(key1, fmt.Sprintf("e%d|query-driven|", pl1.Epoch)) {
		t.Fatalf("key %q lacks epoch/selector prefix", key1)
	}
	parts := pl1.CopyParticipants()
	orig := pl1.Participants
	if err := sameParticipants(parts, orig); err != nil {
		t.Fatalf("copy diverged before release: %v", err)
	}
	pl1.Release()
	if len(parts) == 0 || parts[0].NodeID == "" {
		t.Fatal("copied participants did not survive release")
	}

	reg.Invalidate()
	pl2, err := planner.Plan(context.Background(), q, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pl2.Release()
	if pl2.Epoch <= pl1.Epoch && pl2.Epoch != reg.Epoch() {
		t.Fatalf("epoch did not advance: %d then %d", pl1.Epoch, pl2.Epoch)
	}
	if key2 := pl2.Key(); key2 == key1 {
		t.Fatalf("key unchanged across epochs: %q", key2)
	}
}

// TestPlanErrors pins the planner's error contract to the legacy
// shapes callers match on.
func TestPlanErrors(t *testing.T) {
	summaries := synthSummaries(4, 3, 2, 5)
	reg := staticRegistry(t, summaries)
	snap, err := reg.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	planner := NewPlanner(reg)
	q := randomQuery("err", 2, rng.New(8))

	if _, err := planner.PlanOn(nil, q, selection.AllNodes{}, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := planner.PlanOn(snap, q, selection.QueryDriven{Epsilon: 0.5}, nil); err == nil ||
		!strings.Contains(err.Error(), "exactly one of TopL") {
		t.Fatalf("TopL/Psi validation: %v", err)
	}
	if _, err := planner.PlanOn(snap, q, selection.QueryDriven{TopL: 2}, nil); err == nil ||
		!strings.Contains(err.Error(), "must be > 0") {
		t.Fatalf("epsilon validation: %v", err)
	}
	far, _ := query.New("far", geometry.MustRect([]float64{1000, 1000}, []float64{1001, 1001}))
	if _, err := planner.PlanOn(snap, far, selection.QueryDriven{Epsilon: 0.5, TopL: 2}, nil); !errors.Is(err, selection.ErrNoCandidates) {
		t.Fatalf("unsupported query: %v, want ErrNoCandidates", err)
	}
	q3, _ := query.New("3d", geometry.MustRect([]float64{0, 0, 0}, []float64{1, 1, 1}))
	if _, err := planner.PlanOn(snap, q3, selection.QueryDriven{Epsilon: 0.5, TopL: 2}, nil); err == nil ||
		!strings.Contains(err.Error(), "dims") {
		t.Fatalf("dims mismatch: %v", err)
	}
}
