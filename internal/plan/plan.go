// Package plan turns (query, registry snapshot) into an immutable
// execution Plan — the pure-CPU half of the leader's per-query work.
//
// The paper's leader does two very different things per query: CPU-only
// ranking over advertised cluster rectangles (Eqs. 2–4) and I/O-bound
// distributed training (§IV-B). This package isolates the first: a
// Planner reads a lock-free registry snapshot, scores every node's
// clusters with the batched flat-slice overlap kernel
// (geometry.OverlapRatesFlat), applies the selection policy, and emits
// a Plan carrying the chosen participants, the full per-node ranking,
// and the snapshot epoch it was derived from. Executors (see
// internal/federation) then run the I/O half against the plan, and
// gateways key reuse/coalescing caches on Plan.Key.
//
// The query-driven fast path is allocation-free at steady state: Plans
// are pooled, and every slice a Plan hands out (overlaps, supporting
// sets, participants) is a sub-slice of per-Plan arenas sized to the
// snapshot. Callers therefore MUST treat a Plan as frozen and call
// Release exactly once when done — after copying out anything that
// must outlive it.
package plan

import (
	"context"
	"fmt"
	"slices"
	"strconv"
	"strings"
	"sync"

	"qens/internal/geometry"
	"qens/internal/query"
	"qens/internal/registry"
	"qens/internal/selection"
)

// DefaultEpsilon is the permissive support threshold used to rank for
// selectors that carry no intrinsic ε (Random, AllNodes, Fairness, …):
// any overlap counts, so EXPLAIN output still shows which clusters
// touch the query even when the mechanism ignores the ranking. The
// region tier's root coordinator uses the same value so merged
// cross-region rankings match single-leader plans bit-for-bit.
const DefaultEpsilon = 1e-9

// Plan is one immutable planning outcome. All exported slices are
// either arena-backed (query-driven fast path) or selector-owned;
// either way they are frozen — do not mutate, and do not retain past
// Release.
type Plan struct {
	// Query is the workload rectangle the plan was built for.
	Query query.Query
	// Epoch is the registry snapshot epoch the plan derives from.
	// Everything cached against the plan (reuse entries, coalesced
	// results) dies when the epoch moves.
	Epoch uint64
	// Selector names the mechanism that chose the participants.
	Selector string
	// Epsilon is the ε the Rankings were thresholded at.
	Epsilon float64
	// Participants are the selected nodes in priority order, with
	// their supporting-cluster training directives.
	Participants []selection.Participant
	// Rankings holds the full per-node ranking in roster
	// (advertisement) order — the EXPLAIN view behind the selection.
	Rankings []selection.NodeRank

	snap    *registry.Snapshot
	planner *Planner

	// Arenas. overlapArena backs every NodeRank.Overlaps, supportArena
	// every NodeRank.Supporting and Participant.Clusters, rankArena
	// backs Rankings, partArena backs fast-path Participants, ranked
	// is the sort scratch, candArena the index walk's candidate roster
	// indices. They are pre-grown to the snapshot's totals before
	// filling, so mid-loop appends can never reallocate and invalidate
	// earlier sub-slices.
	overlapArena []float64
	supportArena []int
	rankArena    []selection.NodeRank
	partArena    []selection.Participant
	ranked       []selection.NodeRank
	candArena    []int

	// keyBuf is the persistent fingerprint arena Key() renders into;
	// key memoizes the rendered string for the plan's lifetime so
	// repeated Key() calls (coalescing probes, reuse lookups) cost
	// zero allocations. Cleared on Release, kept across pooling.
	keyBuf []byte
	key    string
}

// Snapshot returns the registry snapshot the plan was derived from.
func (pl *Plan) Snapshot() *registry.Snapshot { return pl.snap }

// NumCandidates returns the number of nodes ranked.
func (pl *Plan) NumCandidates() int { return len(pl.Rankings) }

// Key is the plan's identity fingerprint:
// "e<epoch>|<selector>|node:clusters|…". Two queries with equal keys
// selected the same participants with the same training directives
// against the same advertisement epoch, so their executions are
// interchangeable — which is exactly what result-reuse and coalescing
// caches want to key on. (Rank values are intentionally excluded: they
// only weight aggregation, and equal participant sets at one epoch
// imply equal ranks for deterministic selectors.)
//
// The first call renders into the plan's persistent key arena and pays
// one string copy (the key must outlive Release — schedulers retain it
// past the plan's lifetime, so it cannot alias pooled memory); every
// later call returns the memoized string for free.
func (pl *Plan) Key() string {
	if pl.key != "" {
		return pl.key
	}
	b := pl.keyBuf[:0]
	b = append(b, 'e')
	b = strconv.AppendUint(b, pl.Epoch, 10)
	b = append(b, '|')
	b = append(b, pl.Selector...)
	for _, p := range pl.Participants {
		b = append(b, '|')
		b = append(b, p.NodeID...)
		if p.Clusters != nil {
			b = append(b, ':')
			for j, c := range p.Clusters {
				if j > 0 {
					b = append(b, ',')
				}
				b = strconv.AppendInt(b, int64(c), 10)
			}
		}
	}
	pl.keyBuf = b
	pl.key = string(b)
	return pl.key
}

// CopyParticipants returns a deep copy of the participant list that
// survives Release — what executors embed into long-lived Results.
func (pl *Plan) CopyParticipants() []selection.Participant {
	out := make([]selection.Participant, len(pl.Participants))
	for i, p := range pl.Participants {
		out[i] = selection.Participant{NodeID: p.NodeID, Rank: p.Rank}
		if p.Clusters != nil {
			out[i].Clusters = append([]int(nil), p.Clusters...)
		}
	}
	return out
}

// Release returns the plan (and its arenas) to the planner's pool.
// Safe to call exactly once; the zero Plan and plans that already
// escaped a pool are no-ops.
func (pl *Plan) Release() {
	p := pl.planner
	if p == nil {
		return
	}
	pl.planner = nil
	pl.snap = nil
	pl.Query = query.Query{}
	pl.Participants = nil
	pl.Rankings = nil
	pl.key = ""
	p.pool.Put(pl)
}

// Planner builds Plans against a registry. It is safe for concurrent
// use; at steady state Plan is lock-free (one atomic snapshot load)
// and allocation-free for the query-driven mechanism.
type Planner struct {
	reg  *registry.Registry
	pool sync.Pool
}

// NewPlanner builds a planner over the registry.
func NewPlanner(reg *registry.Registry) *Planner {
	return &Planner{reg: reg}
}

// Registry exposes the underlying registry (epoch and stats access).
func (p *Planner) Registry() *registry.Registry { return p.reg }

// Plan resolves a fresh-enough snapshot from the registry and plans
// the query against it. sctx supplies selector dependencies (RNG,
// warm-up evaluator); it may be nil for selectors that need neither.
func (p *Planner) Plan(ctx context.Context, q query.Query, sel selection.Selector, sctx *selection.Context) (*Plan, error) {
	snap, err := p.reg.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	return p.PlanOn(snap, q, sel, sctx)
}

// PlanOn plans the query against an explicit snapshot (tests and
// benchmarks pin snapshots; the serving path uses Plan).
func (p *Planner) PlanOn(snap *registry.Snapshot, q query.Query, sel selection.Selector, sctx *selection.Context) (*Plan, error) {
	return p.planOn(snap, q, sel, sctx, false)
}

// ExplainOn is PlanOn with the R-tree fast path disabled: every
// ranking row carries full per-dimension overlap detail, including the
// nodes the index would prove zero. The participant set is identical
// to PlanOn's — this exists for EXPLAIN surfaces, which show the
// complete fleet ranking.
func (p *Planner) ExplainOn(snap *registry.Snapshot, q query.Query, sel selection.Selector, sctx *selection.Context) (*Plan, error) {
	return p.planOn(snap, q, sel, sctx, true)
}

func (p *Planner) planOn(snap *registry.Snapshot, q query.Query, sel selection.Selector, sctx *selection.Context, brute bool) (*Plan, error) {
	if snap == nil {
		return nil, fmt.Errorf("plan: nil snapshot")
	}
	// Fast path: the paper's query-driven mechanism, fully arena-backed.
	if s, ok := sel.(selection.QueryDriven); ok {
		return p.planQueryDriven(snap, q, s, brute)
	}

	eps := DefaultEpsilon
	if ec, ok := sel.(selection.EpsilonCarrier); ok {
		if e := ec.SupportEpsilon(); e > 0 {
			eps = e
		}
	}
	pl, err := p.rank(snap, q, eps, sel.Name())
	if err != nil {
		return nil, err
	}
	var parts []selection.Participant
	if cs, ok := sel.(selection.CandidateSelector); ok {
		set := selection.CandidateSet{Query: q, Epsilon: eps, Ranks: pl.Rankings}
		parts, err = cs.SelectFrom(&set, sctx)
	} else {
		// Opaque third-party selector: hand it the raw summaries,
		// exactly like the legacy path did.
		parts, err = sel.Select(q, snap.Summaries, sctx)
	}
	if err != nil {
		pl.Release()
		return nil, err
	}
	pl.Participants = parts
	return pl, nil
}

// Rank resolves a fresh-enough snapshot and computes the full Eq. 2–4
// ranking at the given ε without applying any selection policy. The
// returned rows own their memory (safe to retain, mutate or serialize
// after the call) and come with the snapshot epoch they derive from.
// This is the region-tier entry point: a regional leader ranks its own
// shard and ships the rows to the root coordinator, which merges them
// into a global candidate set — running the exact arena kernel the
// single-leader path uses keeps the cross-tier arithmetic bit-identical.
func (p *Planner) Rank(ctx context.Context, q query.Query, epsilon float64) ([]selection.NodeRank, uint64, error) {
	snap, err := p.reg.Snapshot(ctx)
	if err != nil {
		return nil, 0, err
	}
	return p.RankOn(snap, q, epsilon)
}

// RankOn is Rank against an explicit snapshot.
func (p *Planner) RankOn(snap *registry.Snapshot, q query.Query, epsilon float64) ([]selection.NodeRank, uint64, error) {
	if snap == nil {
		return nil, 0, fmt.Errorf("plan: nil snapshot")
	}
	pl, err := p.rank(snap, q, epsilon, "")
	if err != nil {
		return nil, 0, err
	}
	out := make([]selection.NodeRank, len(pl.Rankings))
	for i, r := range pl.Rankings {
		out[i] = r
		// Overlaps and Supporting are arena sub-slices that die with
		// Release; Sizes points into the immutable snapshot and is safe
		// to retain as-is.
		out[i].Overlaps = append([]float64(nil), r.Overlaps...)
		if r.Supporting != nil {
			out[i].Supporting = append([]int(nil), r.Supporting...)
		}
	}
	epoch := pl.Epoch
	pl.Release()
	return out, epoch, nil
}

// RankQueryDriven is Rank through the snapshot's spatial index, for
// callers serving the query-driven policy: nodes the index proves
// cannot reach ε are returned as explicit zero rows (rank 0, no
// overlap detail) instead of being scored by the kernel. Participant
// selection over these rows is bit-identical to the brute ranking —
// zero-rank nodes are never selected — but the rows are NOT a full
// EXPLAIN surface (pruned rows carry nil Overlaps). Falls back to the
// brute kernel when the snapshot has no index.
func (p *Planner) RankQueryDriven(ctx context.Context, q query.Query, epsilon float64) ([]selection.NodeRank, uint64, error) {
	snap, err := p.reg.Snapshot(ctx)
	if err != nil {
		return nil, 0, err
	}
	return p.RankQueryDrivenOn(snap, q, epsilon)
}

// RankQueryDrivenOn is RankQueryDriven against an explicit snapshot.
func (p *Planner) RankQueryDrivenOn(snap *registry.Snapshot, q query.Query, epsilon float64) ([]selection.NodeRank, uint64, error) {
	if snap == nil {
		return nil, 0, fmt.Errorf("plan: nil snapshot")
	}
	if snap.Index == nil {
		return p.RankOn(snap, q, epsilon)
	}
	pl, err := p.rankIndexed(snap, q, epsilon, "")
	if err != nil {
		return nil, 0, err
	}
	out := make([]selection.NodeRank, len(pl.Rankings))
	for i, r := range pl.Rankings {
		out[i] = r
		out[i].Overlaps = append([]float64(nil), r.Overlaps...)
		if r.Supporting != nil {
			out[i].Supporting = append([]int(nil), r.Supporting...)
		}
	}
	epoch := pl.Epoch
	pl.Release()
	return out, epoch, nil
}

// planQueryDriven is the allocation-free Eq. 2–4 pipeline. On indexed
// snapshots the ranking walks the R-tree first (see rankIndexed); the
// participant set is bit-identical either way.
func (p *Planner) planQueryDriven(snap *registry.Snapshot, q query.Query, s selection.QueryDriven, brute bool) (*Plan, error) {
	if (s.TopL > 0) == (s.Psi > 0) {
		return nil, fmt.Errorf("selection: query-driven needs exactly one of TopL (%d) or Psi (%v)", s.TopL, s.Psi)
	}
	var (
		pl  *Plan
		err error
	)
	if snap.Index != nil && !brute {
		pl, err = p.rankIndexed(snap, q, s.Epsilon, s.Name())
	} else {
		pl, err = p.rank(snap, q, s.Epsilon, s.Name())
		if err == nil && p.reg != nil {
			p.reg.RecordPlanBrute()
		}
	}
	if err != nil {
		return nil, err
	}

	// Sort only the positive-rank rows (descending rank, node id
	// tie-break — identical to selection.SortByRank) in the pooled
	// scratch. Dropping zero-rank rows before the sort cannot change
	// the outcome — TopL stops at the first Rank <= 0 and ψ is always
	// > 0 — and keeps the sort proportional to the candidate count,
	// not the fleet size.
	pl.ranked = pl.ranked[:0]
	for i := range pl.rankArena {
		if pl.rankArena[i].Rank > 0 {
			pl.ranked = append(pl.ranked, pl.rankArena[i])
		}
	}
	slices.SortStableFunc(pl.ranked, compareRank)

	pl.partArena = pl.partArena[:0]
	if s.TopL > 0 {
		for _, r := range pl.ranked {
			if len(pl.partArena) == s.TopL || r.Rank <= 0 {
				break
			}
			pl.partArena = append(pl.partArena, selection.Participant{
				NodeID: r.NodeID, Rank: r.Rank, Clusters: r.Supporting,
			})
		}
	} else {
		psi := s.Psi
		if psi <= 0 {
			psi = 1e-12 // mirror selection.AboveThreshold's degradation
		}
		for _, r := range pl.ranked {
			if r.Rank >= psi {
				pl.partArena = append(pl.partArena, selection.Participant{
					NodeID: r.NodeID, Rank: r.Rank, Clusters: r.Supporting,
				})
			}
		}
	}
	if len(pl.partArena) == 0 {
		pl.Release()
		return nil, selection.ErrNoCandidates
	}
	pl.Participants = pl.partArena
	return pl, nil
}

// compareRank orders descending by rank, ascending by node id.
func compareRank(a, b selection.NodeRank) int {
	if a.Rank != b.Rank {
		if a.Rank > b.Rank {
			return -1
		}
		return 1
	}
	return strings.Compare(a.NodeID, b.NodeID)
}

// rank acquires a pooled Plan and fills its ranking arenas: per-node
// Eq. 2 overlaps via the flat kernel, supporting sets, Eq. 3
// potentials and Eq. 4 ranks at the given ε. The arithmetic (operation
// order included) matches selection.RankNodes exactly, so the outcome
// is bit-identical to the legacy per-summary path.
func (p *Planner) rank(snap *registry.Snapshot, q query.Query, epsilon float64, selName string) (*Plan, error) {
	pl, err := p.acquire(snap, q, epsilon, selName)
	if err != nil {
		return nil, err
	}
	for gi := range snap.Nodes {
		pl.appendKernelRow(&snap.Nodes[gi], q, epsilon)
	}
	pl.Rankings = pl.rankArena
	return pl, nil
}

// rankIndexed is rank through the snapshot's R-tree: the index walk
// collects the roster indices whose covering rectangle overlaps the
// query in at least an ε fraction of dimensions — the only nodes Eq. 2
// can score at or above ε (per-cluster rates are per-dimension means,
// and every cluster nests inside its node's covering rectangle). The
// kernel runs on those candidates only; every pruned node is emitted
// as an explicit zero row (rank 0, potential 0, no supporting set —
// exactly the values the brute kernel computes for it, with nil
// Overlaps standing in for the all-below-ε detail the selection and
// EXPLAIN surfaces never read). Rankings keep full roster order, so
// downstream consumers see the same shape as the brute path.
func (p *Planner) rankIndexed(snap *registry.Snapshot, q query.Query, epsilon float64, selName string) (*Plan, error) {
	pl, err := p.acquire(snap, q, epsilon, selName)
	if err != nil {
		return nil, err
	}
	pl.candArena, err = snap.Index.AppendOverlapCandidates(q.Bounds, epsilon, pl.candArena[:0])
	if err != nil {
		// Dimensionality already validated by acquire; an index probe
		// failure means the snapshot is malformed.
		pl.Release()
		return nil, fmt.Errorf("plan: index probe: %w", err)
	}
	slices.Sort(pl.candArena) // tree order -> roster order for the merge walk

	ci := 0
	for gi := range snap.Nodes {
		g := &snap.Nodes[gi]
		if ci < len(pl.candArena) && pl.candArena[ci] == gi {
			ci++
			pl.appendKernelRow(g, q, epsilon)
			continue
		}
		pl.rankArena = append(pl.rankArena, selection.NodeRank{
			NodeID:       g.NodeID,
			TotalSamples: g.TotalSamples,
			Sizes:        g.Sizes,
		})
	}
	pl.Rankings = pl.rankArena
	if p.reg != nil {
		p.reg.RecordPlanPrune(len(snap.Nodes), len(snap.Nodes)-len(pl.candArena))
	}
	return pl, nil
}

// acquire checks the query against the snapshot, takes a pooled Plan
// and readies its arenas.
func (p *Planner) acquire(snap *registry.Snapshot, q query.Query, epsilon float64, selName string) (*Plan, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("selection: epsilon %v must be > 0", epsilon)
	}
	if q.Dims() != snap.Dims {
		return nil, fmt.Errorf("plan: query %s has %d dims, snapshot has %d", q.ID, q.Dims(), snap.Dims)
	}

	var pl *Plan
	if v := p.pool.Get(); v != nil {
		pl = v.(*Plan)
	} else {
		pl = &Plan{}
	}
	pl.planner = p
	pl.snap = snap
	pl.Query = q
	pl.Epoch = snap.Epoch
	pl.Selector = selName
	pl.Epsilon = epsilon

	// Pre-grow every arena to the snapshot's totals so the fill loops
	// never reallocate (which would leave earlier sub-slices pointing
	// into dead backing arrays).
	if cap(pl.overlapArena) < snap.TotalClusters {
		pl.overlapArena = make([]float64, 0, snap.TotalClusters)
	}
	if cap(pl.supportArena) < snap.TotalClusters {
		pl.supportArena = make([]int, 0, snap.TotalClusters)
	}
	if cap(pl.rankArena) < len(snap.Nodes) {
		pl.rankArena = make([]selection.NodeRank, 0, len(snap.Nodes))
	}
	if cap(pl.ranked) < len(snap.Nodes) {
		pl.ranked = make([]selection.NodeRank, 0, len(snap.Nodes))
	}
	if cap(pl.partArena) < len(snap.Nodes) {
		pl.partArena = make([]selection.Participant, 0, len(snap.Nodes))
	}
	if cap(pl.candArena) < len(snap.Nodes) {
		pl.candArena = make([]int, 0, len(snap.Nodes))
	}
	pl.overlapArena = pl.overlapArena[:0]
	pl.supportArena = pl.supportArena[:0]
	pl.rankArena = pl.rankArena[:0]
	pl.key = ""
	return pl, nil
}

// appendKernelRow scores one node with the flat overlap kernel and
// appends its Eq. 2–4 row to the rank arena.
func (pl *Plan) appendKernelRow(g *registry.NodeGeom, q query.Query, epsilon float64) {
	qmin, qmax := q.Bounds.Min, q.Bounds.Max
	oBase := len(pl.overlapArena)
	pl.overlapArena = geometry.OverlapRatesFlat(pl.overlapArena, qmin, qmax, g.Mins, g.Maxs)
	overlaps := pl.overlapArena[oBase:len(pl.overlapArena)]

	sBase := len(pl.supportArena)
	potential := 0.0
	supportSamples := 0
	for k, h := range overlaps {
		if h >= epsilon {
			pl.supportArena = append(pl.supportArena, k)
			potential += h
			supportSamples += g.Sizes[k]
		}
	}
	supporting := pl.supportArena[sBase:len(pl.supportArena)]
	if len(supporting) == 0 {
		supporting = nil // mirror RankNodes: no supporting clusters => nil
	}
	pl.rankArena = append(pl.rankArena, selection.NodeRank{
		NodeID:            g.NodeID,
		Overlaps:          overlaps,
		Supporting:        supporting,
		Potential:         potential,
		Rank:              potential * float64(len(supporting)) / float64(len(overlaps)),
		SupportingSamples: supportSamples,
		TotalSamples:      g.TotalSamples,
		Sizes:             g.Sizes,
	})
}
