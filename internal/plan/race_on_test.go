//go:build race

package plan

// raceEnabled reports whether the race detector is active. Under
// -race, sync.Pool deliberately drops a fraction of Puts to widen
// interleaving coverage, so steady-state allocation accounting is not
// meaningful and TestPlanZeroAlloc skips itself.
const raceEnabled = true
