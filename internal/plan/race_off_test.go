//go:build !race

package plan

// raceEnabled reports whether the race detector is active. See
// race_on_test.go.
const raceEnabled = false
