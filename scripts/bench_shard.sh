#!/bin/sh
# Runs the sharded-topology serving benchmark (BenchmarkShardServe:
# one leader executing a mixed spanning / shard-local workload through
# the sequential-round pipeline versus a root coordinator fanning the
# same queries out to two regional leaders, with node rounds carrying
# a fixed modeled remote service time) and renders the results as
# BENCH_shard.json at the repo root.
#
#   BENCHTIME=100ms sh scripts/bench_shard.sh   # CI smoke
#   sh scripts/bench_shard.sh                   # local, default 1s/op
#
# The script exits non-zero on the contract regression:
#   - the 2-region topology serves less than 1.6x the single-leader
#     throughput (ns/op ratio single/2region < 1.6): the hierarchical
#     tier no longer overlaps regional training rounds.
set -eu

cd "$(dirname "$0")/.."
benchtime="${BENCHTIME:-1s}"

out=$(go test -run '^$' -bench '^BenchmarkShardServe$' -benchmem -benchtime "$benchtime" ./internal/region/)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk '
  BEGIN { printf "[\n"; bad = 0 }
  $1 ~ /^BenchmarkShardServe/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns_op = ""; bytes_op = ""; allocs_op = ""
    for (i = 3; i <= NF; i++) {
      if ($i == "ns/op")     ns_op = $(i-1)
      if ($i == "B/op")      bytes_op = $(i-1)
      if ($i == "allocs/op") allocs_op = $(i-1)
    }
    if (ns_op == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns_op
    if (bytes_op != "")  printf ", \"bytes_per_op\": %s", bytes_op
    if (allocs_op != "") printf ", \"allocs_per_op\": %s", allocs_op
    printf "}"
    ns[name] = ns_op
  }
  END {
    printf "\n]\n"
    s = "BenchmarkShardServe/topology=single"
    r = "BenchmarkShardServe/topology=2region"
    if (!(s in ns) || !(r in ns)) {
      printf "MISSING CASES: single and 2region topologies did not both run\n" > "/dev/stderr"
      exit 1
    }
    ratio = (ns[s] + 0) / (ns[r] + 0)
    printf "bench_shard: 2-region serves %.2fx single-leader throughput\n", ratio > "/dev/stderr"
    if (ratio < 1.6) {
      printf "THROUGHPUT REGRESSION: 2-region (%s ns/op) is not >=1.6x single-leader (%s ns/op)\n", \
        ns[r], ns[s] > "/dev/stderr"
      exit 1
    }
  }
' > BENCH_shard.json

count=$(grep -c '"name"' BENCH_shard.json)
echo "bench_shard: wrote BENCH_shard.json ($count results, benchtime $benchtime)"
