#!/bin/sh
# Runs the node training-engine microbenchmarks (BenchmarkNodeTrain:
# view vs copy data paths over model family x cluster count x shard
# size, plus BenchmarkNodeTrainClusterAccess) and renders the results
# as BENCH_train.json at the repo root.
#
#   BENCHTIME=100ms sh scripts/bench_train.sh   # CI smoke
#   sh scripts/bench_train.sh                   # local, default 1s/op
#
# The script exits non-zero on either contract regression:
#   - BenchmarkNodeTrainClusterAccess reports a nonzero allocs/op:
#     the LR per-cluster data plane (ClusterView -> XYInto ->
#     PartialFitBatch) is contractually allocation-free at steady
#     state.
#   - the engine (view) path is less than 2x the throughput of the
#     pre-refactor copy path on any LR case with >= 10k samples.
set -eu

cd "$(dirname "$0")/.."
benchtime="${BENCHTIME:-1s}"

out=$(go test -run '^$' -bench '^BenchmarkNodeTrain' -benchmem -benchtime "$benchtime" ./internal/engine/)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk '
  BEGIN { printf "[\n"; bad = 0 }
  $1 ~ /^BenchmarkNodeTrain/ && $4 == "ns/op" {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
      name, $2, $3, $5, $7
    ns[name] = $3
    if (name == "BenchmarkNodeTrainClusterAccess" && $7 + 0 != 0) {
      bad = 1
      printf "\nALLOC REGRESSION: %s reports %s allocs/op, want 0\n", name, $7 > "/dev/stderr"
    }
  }
  END {
    printf "\n]\n"
    for (name in ns) {
      if (name !~ /path=view\/model=lr\//) continue
      if (name !~ /samples=[0-9]*0000$/) continue   # gate only >=10k-sample cases
      peer = name; sub(/path=view/, "path=copy", peer)
      if (!(peer in ns)) continue
      if (ns[name] * 2 > ns[peer]) {
        bad = 1
        printf "THROUGHPUT REGRESSION: %s (%s ns/op) is not >=2x faster than %s (%s ns/op)\n", \
          name, ns[name], peer, ns[peer] > "/dev/stderr"
      }
    }
    exit bad
  }
' > BENCH_train.json

count=$(grep -c '"name"' BENCH_train.json)
echo "bench_train: wrote BENCH_train.json ($count results, benchtime $benchtime)"
