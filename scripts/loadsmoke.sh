#!/bin/sh
# loadsmoke.sh — end-to-end smoke of the serving stack: build
# qens-gateway and qensload, boot a tiny simulated fleet, fire a short
# closed-loop load run, then SIGTERM the gateway and assert it drains
# cleanly; then repeat against a sharded topology (two qens-region
# daemons under a root gateway) and assert the per-region routing
# surface. Used by `make loadsmoke` / `make ci`.
set -eu

ADDR="${QENS_SMOKE_ADDR:-127.0.0.1:18080}"
URL="http://${ADDR}"
SHARD_ADDR="${QENS_SMOKE_SHARD_ADDR:-127.0.0.1:18081}"
SHARD_URL="http://${SHARD_ADDR}"
R0_ADDR="${QENS_SMOKE_R0_ADDR:-127.0.0.1:17101}"
R1_ADDR="${QENS_SMOKE_R1_ADDR:-127.0.0.1:17102}"
BIN="$(mktemp -d)"
GW_PID=""
R0_PID=""
R1_PID=""

cleanup() {
    status=$?
    for pid in "$GW_PID" "$R0_PID" "$R1_PID"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -KILL "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$BIN"
    exit $status
}
trap cleanup EXIT INT TERM

echo "loadsmoke: building binaries"
go build -o "$BIN/qens-gateway" ./cmd/qens-gateway
go build -o "$BIN/qens-region" ./cmd/qens-region
go build -o "$BIN/qensload" ./cmd/qensload

echo "loadsmoke: starting gateway on $ADDR (3 nodes x 200 samples)"
"$BIN/qens-gateway" -addr "$ADDR" -nodes 3 -samples 200 -k 4 -epochs 3 \
    -workers 4 -queue 32 -trace "$BIN/trace.jsonl" &
GW_PID=$!

# qensload polls /v1/stats until the gateway is up (-wait), so no
# separate readiness loop is needed here.
echo "loadsmoke: running closed-loop load"
"$BIN/qensload" -url "$URL" -clients 8 -requests 64 -distinct 6 \
    -topl 2 -timeout-ms 30000 -wait 15s

echo "loadsmoke: checking fleet health endpoint"
fleet_json=$(curl -sf "$URL/v1/fleet")
case "$fleet_json" in
    *'"node_id":"node-0"'*) ;;
    *)
        echo "loadsmoke: FAIL /v1/fleet missing node-0 entry: $fleet_json" >&2
        exit 1
        ;;
esac
case "$fleet_json" in
    *'"score":'*) ;;
    *)
        echo "loadsmoke: FAIL /v1/fleet entries carry no health score: $fleet_json" >&2
        exit 1
        ;;
esac

echo "loadsmoke: checking cross-process trace assembly"
trace_id=$(curl -sf "$URL/v1/traces" \
    | sed -n 's/.*"trace_id":"\([0-9a-f]*\)".*/\1/p' | head -n 1)
if [ -z "$trace_id" ]; then
    echo "loadsmoke: FAIL /v1/traces lists no retained traces" >&2
    exit 1
fi
trace_json=$(curl -sf "$URL/v1/trace/$trace_id")
case "$trace_json" in
    *'"critical_path"'*) ;;
    *)
        echo "loadsmoke: FAIL /v1/trace/$trace_id has no critical-path report" >&2
        exit 1
        ;;
esac
case "$trace_json" in
    *'"name":"node.'*) ;;
    *)
        echo "loadsmoke: FAIL assembled trace $trace_id carries no node-side spans" >&2
        exit 1
        ;;
esac
echo "loadsmoke: trace $trace_id assembled with node spans and critical path"

echo "loadsmoke: draining gateway (SIGTERM)"
kill -TERM "$GW_PID"
i=0
while kill -0 "$GW_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "loadsmoke: FAIL gateway did not exit within 30s of SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
if ! wait "$GW_PID"; then
    echo "loadsmoke: FAIL gateway exited non-zero after SIGTERM" >&2
    exit 1
fi
GW_PID=""

if [ ! -s "$BIN/trace.jsonl" ]; then
    echo "loadsmoke: FAIL trace file empty — spans not flushed on shutdown" >&2
    exit 1
fi
echo "loadsmoke: OK ($(wc -l <"$BIN/trace.jsonl") trace spans flushed)"

# --- Sharded topology: two regional leaders under a root gateway ----

echo "loadsmoke: starting 2 regional leaders (4 nodes x 200 samples)"
"$BIN/qens-region" -addr "$R0_ADDR" -region 0 -regions 2 \
    -nodes 4 -samples 200 -k 3 -epochs 2 >"$BIN/region0.log" 2>&1 &
R0_PID=$!
"$BIN/qens-region" -addr "$R1_ADDR" -region 1 -regions 2 \
    -nodes 4 -samples 200 -k 3 -epochs 2 >"$BIN/region1.log" 2>&1 &
R1_PID=$!

# Wait for both daemons to report their shard before the root dials.
i=0
until grep -q "serving shard" "$BIN/region0.log" 2>/dev/null \
    && grep -q "serving shard" "$BIN/region1.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "loadsmoke: FAIL regional leaders not up within 30s" >&2
        cat "$BIN/region0.log" "$BIN/region1.log" >&2 || true
        exit 1
    fi
    sleep 0.1
done

echo "loadsmoke: starting root gateway on $SHARD_ADDR"
"$BIN/qens-gateway" -addr "$SHARD_ADDR" -region-addrs "$R0_ADDR,$R1_ADDR" \
    -workers 4 -queue 32 &
GW_PID=$!

echo "loadsmoke: running closed-loop load against the sharded topology"
load_out=$("$BIN/qensload" -url "$SHARD_URL" -clients 4 -requests 32 -distinct 6 \
    -topl 2 -timeout-ms 30000 -wait 15s)
printf '%s\n' "$load_out"
case "$load_out" in
    *'routing  region-0'*) ;;
    *)
        echo "loadsmoke: FAIL qensload printed no per-region routing distribution" >&2
        exit 1
        ;;
esac

echo "loadsmoke: checking per-region stats and fleet surfaces"
stats_json=$(curl -sf "$SHARD_URL/v1/stats")
for want in '"router"' '"region_id":"region-0"' '"region_id":"region-1"' '"routed"'; do
    case "$stats_json" in
        *"$want"*) ;;
        *)
            echo "loadsmoke: FAIL /v1/stats missing $want: $stats_json" >&2
            exit 1
            ;;
    esac
done
fleet_json=$(curl -sf "$SHARD_URL/v1/fleet")
for want in '"regions"' '"region_id":"region-0"' '"registry_epoch"' '"score"'; do
    case "$fleet_json" in
        *"$want"*) ;;
        *)
            echo "loadsmoke: FAIL sharded /v1/fleet missing $want: $fleet_json" >&2
            exit 1
            ;;
    esac
done

echo "loadsmoke: draining sharded topology (SIGTERM)"
for pid in "$GW_PID" "$R0_PID" "$R1_PID"; do
    kill -TERM "$pid"
done
i=0
for pid in "$GW_PID" "$R0_PID" "$R1_PID"; do
    while kill -0 "$pid" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "loadsmoke: FAIL sharded topology did not exit within 30s of SIGTERM" >&2
            exit 1
        fi
        sleep 0.1
    done
    if ! wait "$pid"; then
        echo "loadsmoke: FAIL pid $pid exited non-zero after SIGTERM" >&2
        exit 1
    fi
done
GW_PID=""; R0_PID=""; R1_PID=""
echo "loadsmoke: OK (sharded topology served, reported per-region stats, drained cleanly)"
