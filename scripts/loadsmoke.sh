#!/bin/sh
# loadsmoke.sh — end-to-end smoke of the serving stack: build
# qens-gateway and qensload, boot a tiny simulated fleet, fire a short
# closed-loop load run, then SIGTERM the gateway and assert it drains
# cleanly. Used by `make loadsmoke` / `make ci`.
set -eu

ADDR="${QENS_SMOKE_ADDR:-127.0.0.1:18080}"
URL="http://${ADDR}"
BIN="$(mktemp -d)"
GW_PID=""

cleanup() {
    status=$?
    if [ -n "$GW_PID" ] && kill -0 "$GW_PID" 2>/dev/null; then
        kill -KILL "$GW_PID" 2>/dev/null || true
    fi
    rm -rf "$BIN"
    exit $status
}
trap cleanup EXIT INT TERM

echo "loadsmoke: building binaries"
go build -o "$BIN/qens-gateway" ./cmd/qens-gateway
go build -o "$BIN/qensload" ./cmd/qensload

echo "loadsmoke: starting gateway on $ADDR (3 nodes x 200 samples)"
"$BIN/qens-gateway" -addr "$ADDR" -nodes 3 -samples 200 -k 4 -epochs 3 \
    -workers 4 -queue 32 -trace "$BIN/trace.jsonl" &
GW_PID=$!

# qensload polls /v1/stats until the gateway is up (-wait), so no
# separate readiness loop is needed here.
echo "loadsmoke: running closed-loop load"
"$BIN/qensload" -url "$URL" -clients 8 -requests 64 -distinct 6 \
    -topl 2 -timeout-ms 30000 -wait 15s

echo "loadsmoke: draining gateway (SIGTERM)"
kill -TERM "$GW_PID"
i=0
while kill -0 "$GW_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "loadsmoke: FAIL gateway did not exit within 30s of SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
if ! wait "$GW_PID"; then
    echo "loadsmoke: FAIL gateway exited non-zero after SIGTERM" >&2
    exit 1
fi
GW_PID=""

if [ ! -s "$BIN/trace.jsonl" ]; then
    echo "loadsmoke: FAIL trace file empty — spans not flushed on shutdown" >&2
    exit 1
fi
echo "loadsmoke: OK ($(wc -l <"$BIN/trace.jsonl") trace spans flushed)"
