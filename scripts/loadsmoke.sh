#!/bin/sh
# loadsmoke.sh — end-to-end smoke of the serving stack: build
# qens-gateway and qensload, boot a tiny simulated fleet, fire a short
# closed-loop load run, then SIGTERM the gateway and assert it drains
# cleanly; then repeat against a sharded topology (two qens-region
# daemons under a root gateway) and assert the per-region routing
# surface; then a sustained-ingest soak (one qensd streaming with a
# drift schedule, one on wire v1, under closed-loop load) asserting
# autonomous escalation, push-mode freshness with a v1 pull fallback,
# and a flat p99. Used by `make loadsmoke` / `make ci`.
set -eu

ADDR="${QENS_SMOKE_ADDR:-127.0.0.1:18080}"
URL="http://${ADDR}"
SHARD_ADDR="${QENS_SMOKE_SHARD_ADDR:-127.0.0.1:18081}"
SHARD_URL="http://${SHARD_ADDR}"
R0_ADDR="${QENS_SMOKE_R0_ADDR:-127.0.0.1:17101}"
R1_ADDR="${QENS_SMOKE_R1_ADDR:-127.0.0.1:17102}"
QD0_ADDR="${QENS_SMOKE_QD0_ADDR:-127.0.0.1:17201}"
QD0_OBS="${QENS_SMOKE_QD0_OBS:-127.0.0.1:19201}"
QD1_ADDR="${QENS_SMOKE_QD1_ADDR:-127.0.0.1:17202}"
QD2_ADDR="${QENS_SMOKE_QD2_ADDR:-127.0.0.1:17203}"
INGEST_ADDR="${QENS_SMOKE_INGEST_ADDR:-127.0.0.1:18082}"
INGEST_URL="http://${INGEST_ADDR}"
BIN="$(mktemp -d)"
GW_PID=""
R0_PID=""
R1_PID=""
QD0_PID=""
QD1_PID=""
QD2_PID=""

cleanup() {
    status=$?
    for pid in "$GW_PID" "$R0_PID" "$R1_PID" "$QD0_PID" "$QD1_PID" "$QD2_PID"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -KILL "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$BIN"
    exit $status
}
trap cleanup EXIT INT TERM

echo "loadsmoke: building binaries"
go build -o "$BIN/qens-gateway" ./cmd/qens-gateway
go build -o "$BIN/qens-region" ./cmd/qens-region
go build -o "$BIN/qensload" ./cmd/qensload
go build -o "$BIN/qensd" ./cmd/qensd

echo "loadsmoke: starting gateway on $ADDR (3 nodes x 200 samples)"
"$BIN/qens-gateway" -addr "$ADDR" -nodes 3 -samples 200 -k 4 -epochs 3 \
    -workers 4 -queue 32 -trace "$BIN/trace.jsonl" &
GW_PID=$!

# qensload polls /v1/stats until the gateway is up (-wait), so no
# separate readiness loop is needed here.
echo "loadsmoke: running closed-loop load"
"$BIN/qensload" -url "$URL" -clients 8 -requests 64 -distinct 6 \
    -topl 2 -timeout-ms 30000 -wait 15s

echo "loadsmoke: checking fleet health endpoint"
fleet_json=$(curl -sf "$URL/v1/fleet")
case "$fleet_json" in
    *'"node_id":"node-0"'*) ;;
    *)
        echo "loadsmoke: FAIL /v1/fleet missing node-0 entry: $fleet_json" >&2
        exit 1
        ;;
esac
case "$fleet_json" in
    *'"score":'*) ;;
    *)
        echo "loadsmoke: FAIL /v1/fleet entries carry no health score: $fleet_json" >&2
        exit 1
        ;;
esac

echo "loadsmoke: checking cross-process trace assembly"
trace_id=$(curl -sf "$URL/v1/traces" \
    | sed -n 's/.*"trace_id":"\([0-9a-f]*\)".*/\1/p' | head -n 1)
if [ -z "$trace_id" ]; then
    echo "loadsmoke: FAIL /v1/traces lists no retained traces" >&2
    exit 1
fi
trace_json=$(curl -sf "$URL/v1/trace/$trace_id")
case "$trace_json" in
    *'"critical_path"'*) ;;
    *)
        echo "loadsmoke: FAIL /v1/trace/$trace_id has no critical-path report" >&2
        exit 1
        ;;
esac
case "$trace_json" in
    *'"name":"node.'*) ;;
    *)
        echo "loadsmoke: FAIL assembled trace $trace_id carries no node-side spans" >&2
        exit 1
        ;;
esac
echo "loadsmoke: trace $trace_id assembled with node spans and critical path"

echo "loadsmoke: draining gateway (SIGTERM)"
kill -TERM "$GW_PID"
i=0
while kill -0 "$GW_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "loadsmoke: FAIL gateway did not exit within 30s of SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
if ! wait "$GW_PID"; then
    echo "loadsmoke: FAIL gateway exited non-zero after SIGTERM" >&2
    exit 1
fi
GW_PID=""

if [ ! -s "$BIN/trace.jsonl" ]; then
    echo "loadsmoke: FAIL trace file empty — spans not flushed on shutdown" >&2
    exit 1
fi
echo "loadsmoke: OK ($(wc -l <"$BIN/trace.jsonl") trace spans flushed)"

# --- Sharded topology: two regional leaders under a root gateway ----

echo "loadsmoke: starting 2 regional leaders (4 nodes x 200 samples)"
"$BIN/qens-region" -addr "$R0_ADDR" -region 0 -regions 2 \
    -nodes 4 -samples 200 -k 3 -epochs 2 >"$BIN/region0.log" 2>&1 &
R0_PID=$!
"$BIN/qens-region" -addr "$R1_ADDR" -region 1 -regions 2 \
    -nodes 4 -samples 200 -k 3 -epochs 2 >"$BIN/region1.log" 2>&1 &
R1_PID=$!

# Wait for both daemons to report their shard before the root dials.
i=0
until grep -q "serving shard" "$BIN/region0.log" 2>/dev/null \
    && grep -q "serving shard" "$BIN/region1.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "loadsmoke: FAIL regional leaders not up within 30s" >&2
        cat "$BIN/region0.log" "$BIN/region1.log" >&2 || true
        exit 1
    fi
    sleep 0.1
done

echo "loadsmoke: starting root gateway on $SHARD_ADDR"
"$BIN/qens-gateway" -addr "$SHARD_ADDR" -region-addrs "$R0_ADDR,$R1_ADDR" \
    -workers 4 -queue 32 &
GW_PID=$!

echo "loadsmoke: running closed-loop load against the sharded topology"
load_out=$("$BIN/qensload" -url "$SHARD_URL" -clients 4 -requests 32 -distinct 6 \
    -topl 2 -timeout-ms 30000 -wait 15s)
printf '%s\n' "$load_out"
case "$load_out" in
    *'routing  region-0'*) ;;
    *)
        echo "loadsmoke: FAIL qensload printed no per-region routing distribution" >&2
        exit 1
        ;;
esac

echo "loadsmoke: checking per-region stats and fleet surfaces"
stats_json=$(curl -sf "$SHARD_URL/v1/stats")
for want in '"router"' '"region_id":"region-0"' '"region_id":"region-1"' '"routed"'; do
    case "$stats_json" in
        *"$want"*) ;;
        *)
            echo "loadsmoke: FAIL /v1/stats missing $want: $stats_json" >&2
            exit 1
            ;;
    esac
done
fleet_json=$(curl -sf "$SHARD_URL/v1/fleet")
for want in '"regions"' '"region_id":"region-0"' '"registry_epoch"' '"score"'; do
    case "$fleet_json" in
        *"$want"*) ;;
        *)
            echo "loadsmoke: FAIL sharded /v1/fleet missing $want: $fleet_json" >&2
            exit 1
            ;;
    esac
done

echo "loadsmoke: draining sharded topology (SIGTERM)"
for pid in "$GW_PID" "$R0_PID" "$R1_PID"; do
    kill -TERM "$pid"
done
i=0
for pid in "$GW_PID" "$R0_PID" "$R1_PID"; do
    while kill -0 "$pid" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "loadsmoke: FAIL sharded topology did not exit within 30s of SIGTERM" >&2
            exit 1
        fi
        sleep 0.1
    done
    if ! wait "$pid"; then
        echo "loadsmoke: FAIL pid $pid exited non-zero after SIGTERM" >&2
        exit 1
    fi
done
GW_PID=""; R0_PID=""; R1_PID=""
echo "loadsmoke: OK (sharded topology served, reported per-region stats, drained cleanly)"

# --- Sustained-ingest soak: live drift + push under closed-loop load --

echo "loadsmoke: starting 3 qensd daemons (node-0 streaming with drift, node-2 wire v1)"
"$BIN/qensd" -addr "$QD0_ADDR" -synthetic 0 -nodes 3 -samples 200 -k 4 \
    -ingest-rate 400 -ingest-batch 32 -ingest-drift-after 2s -ingest-drift-shift 0.75 \
    -metrics-addr "$QD0_OBS" >"$BIN/qensd0.log" 2>&1 &
QD0_PID=$!
"$BIN/qensd" -addr "$QD1_ADDR" -synthetic 1 -nodes 3 -samples 200 -k 4 \
    >"$BIN/qensd1.log" 2>&1 &
QD1_PID=$!
"$BIN/qensd" -addr "$QD2_ADDR" -synthetic 2 -nodes 3 -samples 200 -k 4 \
    -wire-proto 1 >"$BIN/qensd2.log" 2>&1 &
QD2_PID=$!
i=0
until grep -q "serving" "$BIN/qensd0.log" 2>/dev/null \
    && grep -q "serving" "$BIN/qensd1.log" 2>/dev/null \
    && grep -q "serving" "$BIN/qensd2.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "loadsmoke: FAIL qensd daemons not up within 30s" >&2
        cat "$BIN"/qensd*.log >&2 || true
        exit 1
    fi
    sleep 0.1
done

echo "loadsmoke: starting gateway on $INGEST_ADDR over the remote fleet"
"$BIN/qens-gateway" -addr "$INGEST_ADDR" -addrs "$QD0_ADDR,$QD1_ADDR,$QD2_ADDR" \
    -k 4 -epochs 2 -workers 4 -queue 32 >"$BIN/ingest-gw.log" 2>&1 &
GW_PID=$!

echo "loadsmoke: running pre-drift load burst"
"$BIN/qensload" -url "$INGEST_URL" -clients 4 -requests 32 -distinct 6 \
    -topl 2 -timeout-ms 30000 -wait 15s
p99_pre=$(curl -sf "$INGEST_URL/v1/stats" | sed -n 's/.*"p99_ms":\([0-9.]*\).*/\1/p')

# The v1 daemon must have declined the subscription: 2 of 3 on push.
if ! grep -q "summary push from 2/3 nodes" "$BIN/ingest-gw.log"; then
    echo "loadsmoke: FAIL gateway did not report 2/3 push subscriptions (v1 fallback)" >&2
    cat "$BIN/ingest-gw.log" >&2 || true
    exit 1
fi

echo "loadsmoke: waiting for node-0's drift detector to escalate"
i=0
until curl -sf "http://$QD0_OBS/healthz" | grep -q '"escalations":[1-9]'; do
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "loadsmoke: FAIL drift never escalated to a full re-quantization" >&2
        curl -sf "http://$QD0_OBS/healthz" >&2 || true
        exit 1
    fi
    sleep 0.1
done
echo "loadsmoke: node-0 escalated autonomously"

echo "loadsmoke: running post-drift load burst"
"$BIN/qensload" -url "$INGEST_URL" -clients 4 -requests 32 -distinct 6 \
    -topl 2 -timeout-ms 30000 -wait 15s
p99_post=$(curl -sf "$INGEST_URL/v1/stats" | sed -n 's/.*"p99_ms":\([0-9.]*\).*/\1/p')

health_json=$(curl -sf "$INGEST_URL/healthz")
case "$health_json" in
    *'"summary_mode":"push"'*) ;;
    *)
        echo "loadsmoke: FAIL gateway not in push mode: $health_json" >&2
        exit 1
        ;;
esac
case "$health_json" in
    *'"push_applied":0'*)
        echo "loadsmoke: FAIL drifted advertisement never arrived by push: $health_json" >&2
        exit 1
        ;;
    *'"push_applied":'*) ;;
    *)
        echo "loadsmoke: FAIL /healthz carries no push counters: $health_json" >&2
        exit 1
        ;;
esac

# p99 must stay flat through drift + requantization + pushes: allow a
# generous CI-noise envelope (5x + 250ms) — a refresh stampede or a
# blocked query path blows far past that.
if [ -n "$p99_pre" ] && [ -n "$p99_post" ]; then
    if ! awk -v pre="$p99_pre" -v post="$p99_post" \
        'BEGIN { exit !(post <= pre * 5 + 250) }'; then
        echo "loadsmoke: FAIL p99 not flat through drift: ${p99_pre}ms -> ${p99_post}ms" >&2
        exit 1
    fi
    echo "loadsmoke: p99 flat through drift (${p99_pre}ms -> ${p99_post}ms)"
else
    echo "loadsmoke: FAIL /v1/stats reported no p99 latency" >&2
    exit 1
fi

echo "loadsmoke: draining ingest topology (SIGTERM)"
for pid in "$GW_PID" "$QD0_PID" "$QD1_PID" "$QD2_PID"; do
    kill -TERM "$pid"
done
i=0
for pid in "$GW_PID" "$QD0_PID" "$QD1_PID" "$QD2_PID"; do
    while kill -0 "$pid" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "loadsmoke: FAIL ingest topology did not exit within 30s of SIGTERM" >&2
            exit 1
        fi
        sleep 0.1
    done
    if ! wait "$pid"; then
        echo "loadsmoke: FAIL pid $pid exited non-zero after SIGTERM" >&2
        exit 1
    fi
done
GW_PID=""; QD0_PID=""; QD1_PID=""; QD2_PID=""
echo "loadsmoke: OK (sustained ingest: autonomous escalation, push freshness with v1 pull fallback, p99 flat)"
