#!/bin/sh
# loadsmoke.sh — end-to-end smoke of the serving stack: build
# qens-gateway and qensload, boot a tiny simulated fleet, fire a short
# closed-loop load run, then SIGTERM the gateway and assert it drains
# cleanly. Used by `make loadsmoke` / `make ci`.
set -eu

ADDR="${QENS_SMOKE_ADDR:-127.0.0.1:18080}"
URL="http://${ADDR}"
BIN="$(mktemp -d)"
GW_PID=""

cleanup() {
    status=$?
    if [ -n "$GW_PID" ] && kill -0 "$GW_PID" 2>/dev/null; then
        kill -KILL "$GW_PID" 2>/dev/null || true
    fi
    rm -rf "$BIN"
    exit $status
}
trap cleanup EXIT INT TERM

echo "loadsmoke: building binaries"
go build -o "$BIN/qens-gateway" ./cmd/qens-gateway
go build -o "$BIN/qensload" ./cmd/qensload

echo "loadsmoke: starting gateway on $ADDR (3 nodes x 200 samples)"
"$BIN/qens-gateway" -addr "$ADDR" -nodes 3 -samples 200 -k 4 -epochs 3 \
    -workers 4 -queue 32 -trace "$BIN/trace.jsonl" &
GW_PID=$!

# qensload polls /v1/stats until the gateway is up (-wait), so no
# separate readiness loop is needed here.
echo "loadsmoke: running closed-loop load"
"$BIN/qensload" -url "$URL" -clients 8 -requests 64 -distinct 6 \
    -topl 2 -timeout-ms 30000 -wait 15s

echo "loadsmoke: checking fleet health endpoint"
fleet_json=$(curl -sf "$URL/v1/fleet")
case "$fleet_json" in
    *'"node_id":"node-0"'*) ;;
    *)
        echo "loadsmoke: FAIL /v1/fleet missing node-0 entry: $fleet_json" >&2
        exit 1
        ;;
esac
case "$fleet_json" in
    *'"score":'*) ;;
    *)
        echo "loadsmoke: FAIL /v1/fleet entries carry no health score: $fleet_json" >&2
        exit 1
        ;;
esac

echo "loadsmoke: checking cross-process trace assembly"
trace_id=$(curl -sf "$URL/v1/traces" \
    | sed -n 's/.*"trace_id":"\([0-9a-f]*\)".*/\1/p' | head -n 1)
if [ -z "$trace_id" ]; then
    echo "loadsmoke: FAIL /v1/traces lists no retained traces" >&2
    exit 1
fi
trace_json=$(curl -sf "$URL/v1/trace/$trace_id")
case "$trace_json" in
    *'"critical_path"'*) ;;
    *)
        echo "loadsmoke: FAIL /v1/trace/$trace_id has no critical-path report" >&2
        exit 1
        ;;
esac
case "$trace_json" in
    *'"name":"node.'*) ;;
    *)
        echo "loadsmoke: FAIL assembled trace $trace_id carries no node-side spans" >&2
        exit 1
        ;;
esac
echo "loadsmoke: trace $trace_id assembled with node spans and critical path"

echo "loadsmoke: draining gateway (SIGTERM)"
kill -TERM "$GW_PID"
i=0
while kill -0 "$GW_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "loadsmoke: FAIL gateway did not exit within 30s of SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
if ! wait "$GW_PID"; then
    echo "loadsmoke: FAIL gateway exited non-zero after SIGTERM" >&2
    exit 1
fi
GW_PID=""

if [ ! -s "$BIN/trace.jsonl" ]; then
    echo "loadsmoke: FAIL trace file empty — spans not flushed on shutdown" >&2
    exit 1
fi
echo "loadsmoke: OK ($(wc -l <"$BIN/trace.jsonl") trace spans flushed)"
