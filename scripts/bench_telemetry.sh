#!/bin/sh
# Runs the rolling-window telemetry microbenchmarks
# (BenchmarkRollingObserve: the per-observation write path every
# request on the serving hot path pays; BenchmarkRollingStats: the
# memoized merged read behind /metrics scrapes and /v1/stats) and
# renders the results as BENCH_telemetry.json at the repo root.
#
#   BENCHTIME=100ms sh scripts/bench_telemetry.sh   # CI smoke
#   sh scripts/bench_telemetry.sh                   # local, default 1s/op
#
# The script exits non-zero on any contract regression:
#   - BenchmarkRollingObserve reports a nonzero allocs/op: the rolling
#     write path is contractually wait-free and allocation-free.
#   - BenchmarkRollingStats exceeds 200 ns/op: the memoized read must
#     stay one atomic load on the common path, not a full ring merge.
set -eu

cd "$(dirname "$0")/.."
benchtime="${BENCHTIME:-1s}"

out=$(go test -run '^$' -bench '^BenchmarkRolling(Observe|Stats)$' -benchmem -benchtime "$benchtime" ./internal/telemetry/)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk '
  BEGIN { printf "[\n"; bad = 0 }
  $1 ~ /^BenchmarkRolling/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns_op = ""; bytes_op = ""; allocs_op = ""
    for (i = 3; i <= NF; i++) {
      if ($i == "ns/op")     ns_op = $(i-1)
      if ($i == "B/op")      bytes_op = $(i-1)
      if ($i == "allocs/op") allocs_op = $(i-1)
    }
    if (ns_op == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns_op
    if (bytes_op != "")  printf ", \"bytes_per_op\": %s", bytes_op
    if (allocs_op != "") printf ", \"allocs_per_op\": %s", allocs_op
    printf "}"
    ns[name] = ns_op; allocs[name] = allocs_op
  }
  END {
    printf "\n]\n"
    ob = "BenchmarkRollingObserve"; st = "BenchmarkRollingStats"
    if (!(ob in ns) || !(st in ns)) {
      printf "MISSING CASES: rolling benchmarks did not all run\n" > "/dev/stderr"
      exit 1
    }
    if (allocs[ob] + 0 != 0) {
      bad = 1
      printf "ALLOC REGRESSION: %s reports %s allocs/op, want 0\n", ob, allocs[ob] > "/dev/stderr"
    }
    if (ns[st] + 0 > 200) {
      bad = 1
      printf "READ REGRESSION: %s at %s ns/op exceeds the 200 ns/op budget for the memoized merge\n", \
        st, ns[st] > "/dev/stderr"
    }
    exit bad
  }
' > BENCH_telemetry.json

count=$(grep -c '"name"' BENCH_telemetry.json)
echo "bench_telemetry: wrote BENCH_telemetry.json ($count results, benchtime $benchtime)"
