#!/bin/sh
# Runs the adaptive-serving replay benchmark (BenchmarkReuseReplay:
# one 48-query contained-heavy workload replayed through the original
# exact-only reuse cache versus the adaptive cache with the
# approximate model-answer tier) and renders the results as
# BENCH_reuse.json at the repo root.
#
#   BENCHTIME=1x sh scripts/bench_reuse.sh   # CI smoke
#   sh scripts/bench_reuse.sh                # local, default 5 replays
#
# Two contracts, both enforced (the script exits non-zero on either):
#   - the approximate tier must cut federated training executions by
#     >=30% versus the exact-only cache on the same workload — the
#     headline claim: answerable queries stop paying training RPCs.
#   - served-answer quality must stay bounded: mean held-out MSE under
#     the approximate tier within 2x of the exact-only replay. Cheap
#     answers that are wrong answers do not count.
set -eu

cd "$(dirname "$0")/.."
benchtime="${BENCHTIME:-5x}"

out=$(go test -run '^$' -bench '^BenchmarkReuseReplay$' -benchmem -benchtime "$benchtime" ./internal/federation/)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk '
  BEGIN { printf "[\n"; bad = 0 }
  $1 ~ /^BenchmarkReuseReplay\// {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns_op = ""; tq = ""; m = ""; bytes_op = ""; allocs_op = ""
    for (i = 3; i <= NF; i++) {
      if ($i == "ns/op")           ns_op = $(i-1)
      if ($i == "trained_queries") tq = $(i-1)
      if ($i == "mse")             m = $(i-1)
      if ($i == "B/op")            bytes_op = $(i-1)
      if ($i == "allocs/op")       allocs_op = $(i-1)
    }
    if (ns_op == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns_op
    if (tq != "")        printf ", \"trained_queries\": %s", tq
    if (m != "")         printf ", \"mse\": %s", m
    if (bytes_op != "")  printf ", \"bytes_per_op\": %s", bytes_op
    if (allocs_op != "") printf ", \"allocs_per_op\": %s", allocs_op
    printf "}"
    trained[name] = tq; mse[name] = m
  }
  END {
    printf "\n]\n"
    seed = "BenchmarkReuseReplay/mode=seed"
    apx  = "BenchmarkReuseReplay/mode=approx"
    if (!(seed in trained) || !(apx in trained)) {
      printf "MISSING CASES: seed and approx replay modes did not both run\n" > "/dev/stderr"
      exit 1
    }
    if (trained[seed] + 0 <= 0) {
      printf "BAD BASELINE: seed replay reports %s trained queries\n", trained[seed] > "/dev/stderr"
      exit 1
    }
    cut = 1 - (trained[apx] + 0) / (trained[seed] + 0)
    printf "bench_reuse: approx tier cuts trained queries %.0f%% (%s -> %s per replay)\n", \
      cut * 100, trained[seed], trained[apx] > "/dev/stderr"
    if (cut < 0.30) {
      bad = 1
      printf "REUSE REGRESSION: approx tier cuts training executions only %.0f%% (want >=30%%)\n", \
        cut * 100 > "/dev/stderr"
    }
    if (mse[seed] != "" && mse[apx] != "" && mse[apx] + 0 > (mse[seed] + 0) * 2) {
      bad = 1
      printf "QUALITY REGRESSION: approx replay MSE %s exceeds 2x the seed replay MSE %s\n", \
        mse[apx], mse[seed] > "/dev/stderr"
    }
    exit bad
  }
' > BENCH_reuse.json

count=$(grep -c '"name"' BENCH_reuse.json)
echo "bench_reuse: wrote BENCH_reuse.json ($count results, benchtime $benchtime)"
