#!/bin/sh
# Runs the streaming-ingestion benchmarks and renders the results as
# BENCH_ingest.json at the repo root.
#
#   BENCHTIME=100ms sh scripts/bench_ingest.sh   # CI smoke
#   sh scripts/bench_ingest.sh                   # local, default 1s/op
#
# Two contracts, both enforced (the script exits non-zero on either):
#   - BenchmarkRequantize10k: at 10k samples and 1%-sized mini-batches,
#     one incremental requantization step (absorb + single assignment
#     pass) must be >=3x faster than a full Lloyd re-run. This is the
#     whole premise of ingest-driven freshness: if the incremental path
#     is not materially cheaper, nodes may as well re-quantize fully.
#   - BenchmarkSummaryFreshnessBytes: propagating one epoch bump by
#     server push must cost strictly fewer wire bytes than the
#     request+response of a TTL pull landing at the same staleness.
set -eu

cd "$(dirname "$0")/.."
benchtime="${BENCHTIME:-1s}"

out=$(
	go test -run '^$' -bench '^BenchmarkRequantize10k$' -benchmem -benchtime "$benchtime" ./internal/cluster/
	go test -run '^$' -bench '^BenchmarkSummaryFreshnessBytes$' -benchmem -benchtime "$benchtime" ./internal/transport/
)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk '
  BEGIN { printf "[\n"; bad = 0 }
  $1 ~ /^Benchmark(Requantize10k|SummaryFreshnessBytes)\// {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns_op = ""; wb = ""; bytes_op = ""; allocs_op = ""
    for (i = 3; i <= NF; i++) {
      if ($i == "ns/op")      ns_op = $(i-1)
      if ($i == "wire_bytes") wb = $(i-1)
      if ($i == "B/op")       bytes_op = $(i-1)
      if ($i == "allocs/op")  allocs_op = $(i-1)
    }
    if (ns_op == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns_op
    if (wb != "")        printf ", \"wire_bytes\": %s", wb
    if (bytes_op != "")  printf ", \"bytes_per_op\": %s", bytes_op
    if (allocs_op != "") printf ", \"allocs_per_op\": %s", allocs_op
    printf "}"
    ns[name] = ns_op; bytes[name] = wb
  }
  END {
    printf "\n]\n"
    full = "BenchmarkRequantize10k/mode=full"
    incr = "BenchmarkRequantize10k/mode=incremental"
    push = "BenchmarkSummaryFreshnessBytes/mode=push"
    pull = "BenchmarkSummaryFreshnessBytes/mode=pull"
    if (!(full in ns) || !(incr in ns) || !(push in ns) || !(pull in ns)) {
      printf "MISSING CASES: ingest benchmarks did not all run\n" > "/dev/stderr"
      exit 1
    }
    if (ns[incr] * 3 > ns[full] + 0) {
      bad = 1
      printf "INGEST REGRESSION: incremental requantize (%s ns/op) is not >=3x faster than full Lloyd (%s ns/op)\n", \
        ns[incr], ns[full] > "/dev/stderr"
    }
    if (bytes[push] + 0 >= bytes[pull] + 0) {
      bad = 1
      printf "WIRE REGRESSION: push refresh (%s B) is not below the pull request+response (%s B)\n", \
        bytes[push], bytes[pull] > "/dev/stderr"
    }
    exit bad
  }
' > BENCH_ingest.json

count=$(grep -c '"name"' BENCH_ingest.json)
echo "bench_ingest: wrote BENCH_ingest.json ($count results, benchtime $benchtime)"
