#!/bin/sh
# Runs the planner microbenchmarks (BenchmarkPlan: fleet size N x query
# dims d over the query-driven fast path, plus BenchmarkPlanKey) and
# renders the results as BENCH_plan.json at the repo root.
#
#   BENCHTIME=100ms sh scripts/bench_plan.sh   # CI smoke
#   sh scripts/bench_plan.sh                   # local, default 1s/op
#
# The script exits non-zero if any BenchmarkPlan case reports a nonzero
# allocs/op (the query-driven plan path is contractually allocation-free
# at steady state, see TestPlanZeroAlloc), or if the at-scale row
# BenchmarkPlan/N=10000/d=16 is not sub-millisecond — the R-tree-pruned
# fast path's headline number.
set -eu

cd "$(dirname "$0")/.."
benchtime="${BENCHTIME:-1s}"

out=$(go test -run '^$' -bench '^BenchmarkPlan' -benchmem -benchtime "$benchtime" ./internal/plan/)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk '
  BEGIN { printf "[\n"; bad = 0 }
  $1 ~ /^BenchmarkPlan/ && $4 == "ns/op" {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
      name, $2, $3, $5, $7
    if (name ~ /^BenchmarkPlan\// && $7 + 0 != 0) {
      bad = 1
      printf "\nALLOC REGRESSION: %s reports %s allocs/op, want 0\n", name, $7 > "/dev/stderr"
    }
    if (name ~ /^BenchmarkPlan\/N=10000\/d=16/ && $3 + 0 >= 1000000) {
      bad = 1
      printf "\nLATENCY REGRESSION: %s reports %s ns/op, want < 1000000 (sub-millisecond)\n", name, $3 > "/dev/stderr"
    }
  }
  END { printf "\n]\n"; exit bad }
' > BENCH_plan.json

count=$(grep -c '"name"' BENCH_plan.json)
echo "bench_plan: wrote BENCH_plan.json ($count results, benchtime $benchtime)"
