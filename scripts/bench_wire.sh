#!/bin/sh
# Runs the wire-protocol microbenchmarks (BenchmarkWireEncode /
# BenchmarkWireDecode: v1 JSON vs v2 binary on the leader->node model
# frame, with frame_bytes as a reported metric; BenchmarkWireRPC:
# end-to-end throughput over loopback at 8 concurrent callers on one
# connection, serialized v1 vs multiplexed v2) and renders the results
# as BENCH_wire.json at the repo root.
#
#   BENCHTIME=100ms sh scripts/bench_wire.sh   # CI smoke
#   sh scripts/bench_wire.sh                   # local, default 1s/op
#
# The script exits non-zero on any contract regression:
#   - BenchmarkWireEncode/codec=v2 reports a nonzero allocs/op: the
#     pooled-buffer encode path is contractually allocation-free at
#     steady state.
#   - v2 model-frame encode is less than 2x the throughput of v1.
#   - combined encode+decode is less than 3x faster under v2.
#   - the v2 frame is not at least 2x smaller than the v1 frame.
#   - pipelined v2 RPC throughput at 8 concurrent callers is less
#     than 1.5x serialized v1.
set -eu

cd "$(dirname "$0")/.."
benchtime="${BENCHTIME:-1s}"

out=$(go test -run '^$' -bench '^BenchmarkWire(Encode|Decode|RPC)$' -benchmem -benchtime "$benchtime" ./internal/transport/)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk '
  BEGIN { printf "[\n"; bad = 0 }
  $1 ~ /^BenchmarkWire/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns_op = ""; bytes_op = ""; allocs_op = ""; fb = ""
    for (i = 3; i <= NF; i++) {
      if ($i == "ns/op")       ns_op = $(i-1)
      if ($i == "frame_bytes") fb = $(i-1)
      if ($i == "B/op")        bytes_op = $(i-1)
      if ($i == "allocs/op")   allocs_op = $(i-1)
    }
    if (ns_op == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns_op
    if (fb != "")        printf ", \"frame_bytes\": %s", fb
    if (bytes_op != "")  printf ", \"bytes_per_op\": %s", bytes_op
    if (allocs_op != "") printf ", \"allocs_per_op\": %s", allocs_op
    printf "}"
    ns[name] = ns_op; frame[name] = fb; allocs[name] = allocs_op
  }
  END {
    printf "\n]\n"
    e1 = "BenchmarkWireEncode/codec=v1"; e2 = "BenchmarkWireEncode/codec=v2"
    d1 = "BenchmarkWireDecode/codec=v1"; d2 = "BenchmarkWireDecode/codec=v2"
    r1 = "BenchmarkWireRPC/proto=v1/concurrency=8"
    r2 = "BenchmarkWireRPC/proto=v2/concurrency=8"
    if (!(e1 in ns) || !(e2 in ns) || !(d1 in ns) || !(d2 in ns)) {
      printf "MISSING CASES: encode/decode benchmarks did not all run\n" > "/dev/stderr"
      exit 1
    }
    if (allocs[e2] + 0 != 0) {
      bad = 1
      printf "ALLOC REGRESSION: %s reports %s allocs/op, want 0\n", e2, allocs[e2] > "/dev/stderr"
    }
    if (ns[e2] * 2 > ns[e1] + 0) {
      bad = 1
      printf "THROUGHPUT REGRESSION: v2 encode (%s ns/op) is not >=2x faster than v1 (%s ns/op)\n", \
        ns[e2], ns[e1] > "/dev/stderr"
    }
    if ((ns[e2] + ns[d2]) * 3 > ns[e1] + ns[d1]) {
      bad = 1
      printf "THROUGHPUT REGRESSION: v2 encode+decode (%s ns/op) is not >=3x faster than v1 (%s ns/op)\n", \
        ns[e2] + ns[d2], ns[e1] + ns[d1] > "/dev/stderr"
    }
    if (frame[e2] != "" && frame[e1] != "" && frame[e2] * 2 > frame[e1] + 0) {
      bad = 1
      printf "WIRE-SIZE REGRESSION: v2 frame (%s B) is not >=2x smaller than v1 (%s B)\n", \
        frame[e2], frame[e1] > "/dev/stderr"
    }
    if ((r1 in ns) && (r2 in ns) && ns[r2] * 1.5 > ns[r1] + 0) {
      bad = 1
      printf "RPC REGRESSION: pipelined v2 (%s ns/op) is not >=1.5x faster than serialized v1 (%s ns/op)\n", \
        ns[r2], ns[r1] > "/dev/stderr"
    }
    exit bad
  }
' > BENCH_wire.json

count=$(grep -c '"name"' BENCH_wire.json)
echo "bench_wire: wrote BENCH_wire.json ($count results, benchtime $benchtime)"
