module qens

go 1.22
